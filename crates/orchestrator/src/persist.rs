//! JSON encoding of element summaries for the persistent cache tier.
//!
//! Symbolic terms form DAGs (subterms are shared through `Arc`), so a
//! summary is serialised as a flat **term table** — every distinct node once,
//! children referenced by index — plus segments that refer to constraint and
//! packet-transform terms by table index. Decoding rebuilds the table bottom-
//! up, restoring the sharing. Terms are rebuilt *verbatim* (no re-running of
//! the smart constructors), so a decoded summary is structurally identical
//! to the one that was encoded and composition over it produces the same
//! verdicts.

use crate::json::Json;
use dataplane_ir::{BinOp, BitVec, CastKind, DsId, UnOp};
use dataplane_symbex::term::Term;
use dataplane_symbex::{
    CrashKind, DsReadRecord, DsWriteRecord, Exploration, Segment, SegmentOutcome, SymPacket,
    TermRef, VarId,
};
use dataplane_verifier::ElementSummary;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistError(pub String);

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "summary decode error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn err(message: impl Into<String>) -> PersistError {
    PersistError(message.into())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Assigns table indexes to term nodes by pointer identity.
#[derive(Default)]
struct TermTable {
    ids: HashMap<*const Term, usize>,
    nodes: Vec<Json>,
}

impl TermTable {
    /// Intern `term` (and, first, its children), returning its table index.
    fn intern(&mut self, term: &TermRef) -> usize {
        let ptr = Arc::as_ptr(term);
        if let Some(&id) = self.ids.get(&ptr) {
            return id;
        }
        let node = match term.as_ref() {
            Term::Const(v) => Json::obj([
                ("t", Json::str("const")),
                ("w", Json::int(v.width())),
                ("v", Json::int(v.as_u64())),
            ]),
            Term::PacketByte(i) => Json::obj([("t", Json::str("pb")), ("i", Json::int(*i))]),
            Term::PacketLen => Json::obj([("t", Json::str("plen"))]),
            Term::PacketByteAt { index } => {
                let ix = self.intern(index);
                Json::obj([("t", Json::str("pba")), ("ix", Json::int(ix as u64))])
            }
            Term::DsRead {
                ds,
                key,
                seq,
                width,
            } => {
                let k = self.intern(key);
                Json::obj([
                    ("t", Json::str("dsr")),
                    ("ds", Json::int(ds.0)),
                    ("k", Json::int(k as u64)),
                    ("s", Json::int(*seq)),
                    ("w", Json::int(*width)),
                ])
            }
            Term::Var { id, width } => Json::obj([
                ("t", Json::str("var")),
                ("id", Json::int(id.0)),
                ("w", Json::int(*width)),
            ]),
            Term::Unary { op, a } => {
                let a = self.intern(a);
                Json::obj([
                    ("t", Json::str("un")),
                    ("op", Json::str(unop_name(*op))),
                    ("a", Json::int(a as u64)),
                ])
            }
            Term::Binary { op, a, b } => {
                let a = self.intern(a);
                let b = self.intern(b);
                Json::obj([
                    ("t", Json::str("bin")),
                    ("op", Json::str(binop_name(*op))),
                    ("a", Json::int(a as u64)),
                    ("b", Json::int(b as u64)),
                ])
            }
            Term::Select { c, t, e } => {
                let c = self.intern(c);
                let t = self.intern(t);
                let e = self.intern(e);
                Json::obj([
                    ("t", Json::str("sel")),
                    ("c", Json::int(c as u64)),
                    ("tt", Json::int(t as u64)),
                    ("e", Json::int(e as u64)),
                ])
            }
            Term::Cast { kind, width, a } => {
                let a = self.intern(a);
                Json::obj([
                    ("t", Json::str("cast")),
                    ("kind", Json::str(cast_name(*kind))),
                    ("w", Json::int(*width)),
                    ("a", Json::int(a as u64)),
                ])
            }
        };
        let id = self.nodes.len();
        self.nodes.push(node);
        self.ids.insert(ptr, id);
        id
    }
}

/// The current on-disk format version. Version 2 replaced the boolean
/// `clobbered` flag of a packet transform with an optional clobber *range*;
/// version-1 files fail to decode and are recomputed (the cache treats any
/// decode failure as a miss).
pub const SUMMARY_FORMAT: u64 = 2;

/// Encode a summary to its JSON document.
pub fn summary_to_json(summary: &ElementSummary) -> Json {
    let mut table = TermTable::default();
    let segments: Vec<Json> = summary
        .exploration
        .segments
        .iter()
        .map(|segment| encode_segment(segment, &mut table))
        .collect();
    Json::obj([
        ("format", Json::int(SUMMARY_FORMAT)),
        ("type_name", Json::str(&summary.type_name)),
        ("config_key", Json::str(&summary.config_key)),
        (
            "explore_micros",
            Json::int(summary.explore_time.as_micros().min(u128::from(u64::MAX)) as u64),
        ),
        ("branches", Json::int(summary.exploration.branches_expanded)),
        ("terms", Json::Arr(table.nodes)),
        ("segments", Json::Arr(segments)),
    ])
}

fn encode_segment(segment: &Segment, table: &mut TermTable) -> Json {
    let constraint: Vec<Json> = segment
        .constraint
        .iter()
        .map(|t| Json::int(table.intern(t) as u64))
        .collect();
    let (base, len_delta, writes, clobber) = segment.packet.parts();
    let writes: Vec<Json> = writes
        .into_iter()
        .map(|(i, t)| Json::Arr(vec![Json::int(i), Json::int(table.intern(&t) as u64)]))
        .collect();
    let ds_reads: Vec<Json> = segment
        .ds_reads
        .iter()
        .map(|r| {
            Json::obj([
                ("ds", Json::int(r.ds.0)),
                ("k", Json::int(table.intern(&r.key) as u64)),
                ("s", Json::int(r.seq)),
                ("v", Json::int(table.intern(&r.value) as u64)),
            ])
        })
        .collect();
    let ds_writes: Vec<Json> = segment
        .ds_writes
        .iter()
        .map(|w| {
            Json::obj([
                ("ds", Json::int(w.ds.0)),
                ("k", Json::int(table.intern(&w.key) as u64)),
                ("v", Json::int(table.intern(&w.value) as u64)),
            ])
        })
        .collect();
    Json::obj([
        ("constraint", Json::Arr(constraint)),
        ("outcome", encode_outcome(&segment.outcome)),
        (
            "packet",
            Json::obj([
                ("base", Json::int(base)),
                ("delta", Json::int(len_delta)),
                ("writes", Json::Arr(writes)),
                (
                    "clobber",
                    match clobber {
                        Some((lo, hi)) => Json::Arr(vec![Json::int(lo), Json::int(hi)]),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
        ("ds_reads", Json::Arr(ds_reads)),
        ("ds_writes", Json::Arr(ds_writes)),
        ("instructions", Json::int(segment.instructions)),
        ("approximate", Json::Bool(segment.approximate)),
    ])
}

fn encode_outcome(outcome: &SegmentOutcome) -> Json {
    match outcome {
        SegmentOutcome::Emitted(port) => {
            Json::obj([("k", Json::str("emit")), ("port", Json::int(*port))])
        }
        SegmentOutcome::Dropped => Json::obj([("k", Json::str("drop"))]),
        SegmentOutcome::Crashed(kind) => {
            let (name, message) = match kind {
                CrashKind::AssertionFailed(m) => ("assert", Some(m.clone())),
                CrashKind::Aborted(m) => ("abort", Some(m.clone())),
                CrashKind::PacketOutOfBounds => ("oob", None),
                CrashKind::DsKeyOutOfRange(m) => ("dskey", Some(m.clone())),
                CrashKind::DivisionByZero => ("div0", None),
                CrashKind::LoopBoundExceeded => ("loop", None),
                CrashKind::StripUnderflow => ("strip", None),
            };
            let mut pairs = vec![("k", Json::str("crash")), ("kind", Json::str(name))];
            if let Some(m) = message {
                pairs.push(("msg", Json::Str(m)));
            }
            Json::obj(pairs)
        }
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "Add",
        BinOp::Sub => "Sub",
        BinOp::Mul => "Mul",
        BinOp::UDiv => "UDiv",
        BinOp::URem => "URem",
        BinOp::And => "And",
        BinOp::Or => "Or",
        BinOp::Xor => "Xor",
        BinOp::Shl => "Shl",
        BinOp::LShr => "LShr",
        BinOp::AShr => "AShr",
        BinOp::Eq => "Eq",
        BinOp::Ne => "Ne",
        BinOp::ULt => "ULt",
        BinOp::ULe => "ULe",
        BinOp::UGt => "UGt",
        BinOp::UGe => "UGe",
        BinOp::SLt => "SLt",
        BinOp::SLe => "SLe",
        BinOp::BoolAnd => "BoolAnd",
        BinOp::BoolOr => "BoolOr",
    }
}

fn binop_from(name: &str) -> Result<BinOp, PersistError> {
    Ok(match name {
        "Add" => BinOp::Add,
        "Sub" => BinOp::Sub,
        "Mul" => BinOp::Mul,
        "UDiv" => BinOp::UDiv,
        "URem" => BinOp::URem,
        "And" => BinOp::And,
        "Or" => BinOp::Or,
        "Xor" => BinOp::Xor,
        "Shl" => BinOp::Shl,
        "LShr" => BinOp::LShr,
        "AShr" => BinOp::AShr,
        "Eq" => BinOp::Eq,
        "Ne" => BinOp::Ne,
        "ULt" => BinOp::ULt,
        "ULe" => BinOp::ULe,
        "UGt" => BinOp::UGt,
        "UGe" => BinOp::UGe,
        "SLt" => BinOp::SLt,
        "SLe" => BinOp::SLe,
        "BoolAnd" => BinOp::BoolAnd,
        "BoolOr" => BinOp::BoolOr,
        other => return Err(err(format!("unknown binop '{other}'"))),
    })
}

fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "Not",
        UnOp::Neg => "Neg",
        UnOp::LogicalNot => "LogicalNot",
    }
}

fn unop_from(name: &str) -> Result<UnOp, PersistError> {
    Ok(match name {
        "Not" => UnOp::Not,
        "Neg" => UnOp::Neg,
        "LogicalNot" => UnOp::LogicalNot,
        other => return Err(err(format!("unknown unop '{other}'"))),
    })
}

fn cast_name(kind: CastKind) -> &'static str {
    match kind {
        CastKind::ZExt => "ZExt",
        CastKind::SExt => "SExt",
        CastKind::Trunc => "Trunc",
        CastKind::Resize => "Resize",
    }
}

fn cast_from(name: &str) -> Result<CastKind, PersistError> {
    Ok(match name {
        "ZExt" => CastKind::ZExt,
        "SExt" => CastKind::SExt,
        "Trunc" => CastKind::Trunc,
        "Resize" => CastKind::Resize,
        other => return Err(err(format!("unknown cast '{other}'"))),
    })
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn get_u64(json: &Json, key: &str) -> Result<u64, PersistError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing integer field '{key}'")))
}

/// A bit width: must be in `1..=64` (the `BitVec` invariant) — a corrupt
/// cache file must surface as a decode error, never as a panic or a
/// silently truncated width.
fn get_width(json: &Json, key: &str) -> Result<u8, PersistError> {
    let v = get_u64(json, key)?;
    if (1..=64).contains(&v) {
        Ok(v as u8)
    } else {
        Err(err(format!("bit width {v} out of range 1..=64")))
    }
}

fn get_u32(json: &Json, key: &str) -> Result<u32, PersistError> {
    let v = get_u64(json, key)?;
    u32::try_from(v).map_err(|_| err(format!("field '{key}' value {v} exceeds u32")))
}

fn get_u8(json: &Json, key: &str) -> Result<u8, PersistError> {
    let v = get_u64(json, key)?;
    u8::try_from(v).map_err(|_| err(format!("field '{key}' value {v} exceeds u8")))
}

fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, PersistError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(format!("missing string field '{key}'")))
}

fn get_arr<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], PersistError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| err(format!("missing array field '{key}'")))
}

fn term_at(table: &[TermRef], json: &Json, key: &str) -> Result<TermRef, PersistError> {
    let id = get_u64(json, key)? as usize;
    table
        .get(id)
        .cloned()
        .ok_or_else(|| err(format!("term id {id} out of range")))
}

fn decode_terms(nodes: &[Json]) -> Result<Vec<TermRef>, PersistError> {
    let mut table: Vec<TermRef> = Vec::with_capacity(nodes.len());
    for node in nodes {
        let term = match get_str(node, "t")? {
            "const" => Term::Const(BitVec::new(get_width(node, "w")?, get_u64(node, "v")?)),
            "pb" => Term::PacketByte(
                node.get("i")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| err("missing packet byte index"))?,
            ),
            "plen" => Term::PacketLen,
            "pba" => Term::PacketByteAt {
                index: term_at(&table, node, "ix")?,
            },
            "dsr" => Term::DsRead {
                ds: DsId(get_u32(node, "ds")?),
                key: term_at(&table, node, "k")?,
                seq: get_u32(node, "s")?,
                width: get_width(node, "w")?,
            },
            "var" => Term::Var {
                id: VarId(get_u32(node, "id")?),
                width: get_width(node, "w")?,
            },
            "un" => Term::Unary {
                op: unop_from(get_str(node, "op")?)?,
                a: term_at(&table, node, "a")?,
            },
            "bin" => Term::Binary {
                op: binop_from(get_str(node, "op")?)?,
                a: term_at(&table, node, "a")?,
                b: term_at(&table, node, "b")?,
            },
            "sel" => Term::Select {
                c: term_at(&table, node, "c")?,
                t: term_at(&table, node, "tt")?,
                e: term_at(&table, node, "e")?,
            },
            "cast" => Term::Cast {
                kind: cast_from(get_str(node, "kind")?)?,
                width: get_width(node, "w")?,
                a: term_at(&table, node, "a")?,
            },
            other => return Err(err(format!("unknown term tag '{other}'"))),
        };
        table.push(Arc::new(term));
    }
    Ok(table)
}

fn decode_outcome(json: &Json) -> Result<SegmentOutcome, PersistError> {
    Ok(match get_str(json, "k")? {
        "emit" => SegmentOutcome::Emitted(get_u8(json, "port")?),
        "drop" => SegmentOutcome::Dropped,
        "crash" => {
            let msg = || {
                json.get("msg")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            SegmentOutcome::Crashed(match get_str(json, "kind")? {
                "assert" => CrashKind::AssertionFailed(msg()),
                "abort" => CrashKind::Aborted(msg()),
                "oob" => CrashKind::PacketOutOfBounds,
                "dskey" => CrashKind::DsKeyOutOfRange(msg()),
                "div0" => CrashKind::DivisionByZero,
                "loop" => CrashKind::LoopBoundExceeded,
                "strip" => CrashKind::StripUnderflow,
                other => return Err(err(format!("unknown crash kind '{other}'"))),
            })
        }
        other => return Err(err(format!("unknown outcome '{other}'"))),
    })
}

fn decode_segment(json: &Json, table: &[TermRef]) -> Result<Segment, PersistError> {
    let constraint = get_arr(json, "constraint")?
        .iter()
        .map(|id| {
            let id = id.as_u64().ok_or_else(|| err("bad constraint id"))? as usize;
            table
                .get(id)
                .cloned()
                .ok_or_else(|| err(format!("constraint term {id} out of range")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let packet_json = json
        .get("packet")
        .ok_or_else(|| err("missing packet transform"))?;
    let writes = get_arr(packet_json, "writes")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().ok_or_else(|| err("bad packet write"))?;
            let (i, id) = match pair {
                [i, id] => (
                    i.as_i64().ok_or_else(|| err("bad write offset"))?,
                    id.as_u64().ok_or_else(|| err("bad write term id"))? as usize,
                ),
                _ => return Err(err("packet write must be a pair")),
            };
            let term = table
                .get(id)
                .cloned()
                .ok_or_else(|| err(format!("write term {id} out of range")))?;
            Ok((i, term))
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    let clobber = match packet_json.get("clobber") {
        Some(Json::Null) | None => None,
        Some(range) => {
            let pair = range.as_arr().ok_or_else(|| err("bad clobber range"))?;
            match pair {
                [lo, hi] => Some((
                    lo.as_i64().ok_or_else(|| err("bad clobber lower bound"))?,
                    hi.as_i64().ok_or_else(|| err("bad clobber upper bound"))?,
                )),
                _ => return Err(err("clobber range must be a pair")),
            }
        }
    };
    let packet = SymPacket::from_parts(
        packet_json
            .get("base")
            .and_then(Json::as_i64)
            .ok_or_else(|| err("missing packet base"))?,
        packet_json
            .get("delta")
            .and_then(Json::as_i64)
            .ok_or_else(|| err("missing packet delta"))?,
        writes,
        clobber,
    );
    let ds_reads = get_arr(json, "ds_reads")?
        .iter()
        .map(|r| {
            Ok(DsReadRecord {
                ds: DsId(get_u32(r, "ds")?),
                key: term_at(table, r, "k")?,
                seq: get_u32(r, "s")?,
                value: term_at(table, r, "v")?,
            })
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    let ds_writes = get_arr(json, "ds_writes")?
        .iter()
        .map(|w| {
            Ok(DsWriteRecord {
                ds: DsId(get_u32(w, "ds")?),
                key: term_at(table, w, "k")?,
                value: term_at(table, w, "v")?,
            })
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    Ok(Segment {
        constraint,
        outcome: decode_outcome(json.get("outcome").ok_or_else(|| err("missing outcome"))?)?,
        packet,
        ds_reads,
        ds_writes,
        instructions: get_u64(json, "instructions")?,
        approximate: json
            .get("approximate")
            .and_then(Json::as_bool)
            .ok_or_else(|| err("missing approximate flag"))?,
    })
}

/// Decode a summary from its JSON document.
pub fn summary_from_json(json: &Json) -> Result<ElementSummary, PersistError> {
    let format = get_u64(json, "format")?;
    if format != SUMMARY_FORMAT {
        return Err(err(format!("unsupported summary format {format}")));
    }
    let table = decode_terms(get_arr(json, "terms")?)?;
    let segments = get_arr(json, "segments")?
        .iter()
        .map(|s| decode_segment(s, &table))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ElementSummary {
        type_name: get_str(json, "type_name")?.to_string(),
        config_key: get_str(json, "config_key")?.to_string(),
        exploration: Exploration {
            segments,
            branches_expanded: get_u64(json, "branches")?,
        },
        explore_time: Duration::from_micros(get_u64(json, "explore_micros")?),
    })
}

// ---------------------------------------------------------------------------
// The cache-directory advisory lock
// ---------------------------------------------------------------------------

/// An advisory cross-process lock over a cache directory, closing the race
/// between a peer's summary-file rename and its `manifest.json` rewrite
/// (previously a process sampling the directory exactly between the two
/// could see — and destroy — a file no manifest vouched for yet).
///
/// Implemented as an atomically created lock file (`O_EXCL` semantics via
/// `create_new`), which is the only primitive available without platform
/// APIs. The lock is **best-effort**: acquisition times out (callers then
/// proceed under the pre-existing merge-on-demand protocol, which at worst
/// recomputes a summary) and a lock file older than the staleness bound is
/// broken, so a crashed holder cannot wedge the directory.
#[derive(Debug)]
pub struct DirLock {
    path: std::path::PathBuf,
}

/// File name of the advisory lock. Starts with a dot, so manifest
/// validation can never name it (eviction deletes only manifest-named
/// files) and the summary reader never opens it.
pub const LOCK_FILE: &str = ".dirlock";

impl DirLock {
    /// Acquire the lock for `dir` with default bounds: wait up to 500 ms,
    /// break lock files older than 5 s.
    pub fn acquire(dir: &std::path::Path) -> Option<DirLock> {
        DirLock::acquire_with(
            dir,
            std::time::Duration::from_millis(500),
            std::time::Duration::from_secs(5),
        )
    }

    /// Acquire with explicit bounds (tests shrink them).
    pub fn acquire_with(
        dir: &std::path::Path,
        timeout: std::time::Duration,
        stale_after: std::time::Duration,
    ) -> Option<DirLock> {
        let path = dir.join(LOCK_FILE);
        let start = std::time::Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    use std::io::Write;
                    // Contents are diagnostic only; the file's existence is
                    // the lock.
                    let _ = write!(file, "{}", std::process::id());
                    return Some(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Break a stale lock (crashed or wedged holder) by
                    // *renaming* it to a unique grave name first: rename is
                    // atomic, so of several processes that all judged the
                    // same lock stale only one wins the break — a plain
                    // remove here could delete a peer's freshly created
                    // live lock and reopen the race this type closes.
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|modified| {
                            std::time::SystemTime::now().duration_since(modified).ok()
                        })
                        .is_some_and(|age| age > stale_after);
                    if stale {
                        let grave = dir.join(format!(".dirlock-stale-{}", std::process::id()));
                        if std::fs::rename(&path, &grave).is_ok() {
                            // Re-check age *after* the atomic rename: if the
                            // grave turns out fresh, a peer broke the stale
                            // lock and re-acquired between our stat and our
                            // rename — restore its lock (hard_link never
                            // clobbers a newer one) and wait like any other
                            // contender.
                            let grave_fresh = std::fs::metadata(&grave)
                                .and_then(|m| m.modified())
                                .ok()
                                .and_then(|modified| {
                                    std::time::SystemTime::now().duration_since(modified).ok()
                                })
                                .is_some_and(|age| age <= stale_after);
                            if grave_fresh {
                                let _ = std::fs::hard_link(&grave, &path);
                                let _ = std::fs::remove_file(&grave);
                                if start.elapsed() > timeout {
                                    return None;
                                }
                                std::thread::sleep(std::time::Duration::from_millis(2));
                                continue;
                            }
                            let _ = std::fs::remove_file(&grave);
                        }
                        continue;
                    }
                    if start.elapsed() > timeout {
                        return None;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                // The directory vanished or permissions changed: the write
                // pair will fail on its own; do not spin here.
                Err(_) => return None,
            }
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------------
// The cache-directory manifest
// ---------------------------------------------------------------------------

/// One persisted summary file as the cache manifest records it. The manifest
/// is the directory's source of truth: a summary file whose content hash does
/// not match its manifest checksum (or that the manifest does not know at
/// all) is treated as corrupt/stale and recomputed instead of trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name within the cache directory (`<fingerprint>.json`).
    pub file: String,
    /// Size of the file in bytes (what eviction sums).
    pub bytes: u64,
    /// Content hash (hex [`crate::fingerprint::Fingerprint`]) of the file's
    /// exact text.
    pub checksum: String,
}

/// Encode a manifest. Entries are stored least-recently-used first, which is
/// the order eviction consumes them in.
pub fn manifest_to_json(entries: &[ManifestEntry]) -> Json {
    Json::obj([
        ("format", Json::int(1)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("file", Json::str(&e.file)),
                            ("bytes", Json::int(e.bytes)),
                            ("checksum", Json::str(&e.checksum)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode a manifest document. File names are validated here — they are
/// later joined onto the cache directory and *deleted* during eviction, so a
/// tampered manifest must not be able to name a path outside the directory
/// (no separators, no leading dot, `.json` suffix only).
pub fn manifest_from_json(json: &Json) -> Result<Vec<ManifestEntry>, PersistError> {
    if get_u64(json, "format")? != 1 {
        return Err(err("unsupported manifest format"));
    }
    get_arr(json, "entries")?
        .iter()
        .map(|e| {
            let file = get_str(e, "file")?;
            let safe = file.ends_with(".json")
                && !file.starts_with('.')
                && file != crate::cache::MANIFEST_FILE
                && file
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_');
            if !safe {
                return Err(err(format!("unsafe manifest file name '{file}'")));
            }
            Ok(ManifestEntry {
                file: file.to_string(),
                bytes: get_u64(e, "bytes")?,
                checksum: get_str(e, "checksum")?.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::{CheckIPHeader, IPLookup, IPOptions, Nat, NetFlow};

    #[test]
    fn dir_lock_is_mutually_exclusive_and_breaks_stale_holders() {
        let dir = std::env::temp_dir().join(format!("vericlick-dirlock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let short = std::time::Duration::from_millis(30);
        let long = std::time::Duration::from_secs(60);

        let lock = DirLock::acquire_with(&dir, short, long).expect("first acquire");
        assert!(
            DirLock::acquire_with(&dir, short, long).is_none(),
            "second acquire must time out while held"
        );
        drop(lock);
        assert!(
            DirLock::acquire_with(&dir, short, long).is_some(),
            "released lock must be acquirable"
        );

        // A stale lock file (e.g. a crashed holder) is broken, not waited on.
        std::fs::write(dir.join(LOCK_FILE), "stale").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            DirLock::acquire_with(&dir, short, std::time::Duration::from_millis(10)).is_some(),
            "stale lock must be broken"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_round_trips_and_rejects_unsafe_names() {
        let entries = vec![ManifestEntry {
            file: "ab12cd.json".into(),
            bytes: 42,
            checksum: "ff00".into(),
        }];
        let text = manifest_to_json(&entries).to_text();
        let decoded = manifest_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded, entries);
        // Eviction deletes manifest-named files, so traversal or
        // non-summary names must never decode.
        for name in [
            "../../etc/passwd.json",
            "a/b.json",
            "..",
            ".hidden.json",
            "manifest.json",
            "plain.txt",
            "x\\y.json",
            "",
        ] {
            let doc = manifest_to_json(&[ManifestEntry {
                file: name.into(),
                bytes: 1,
                checksum: "0".into(),
            }]);
            assert!(
                manifest_from_json(&doc).is_err(),
                "unsafe name '{name}' accepted"
            );
        }
    }
    use dataplane_pipeline::Element;
    use dataplane_symbex::{explore, EngineConfig};
    use std::net::Ipv4Addr;
    use std::time::Instant;

    fn summary_of(element: &dyn Element) -> ElementSummary {
        let program = element.model();
        let start = Instant::now();
        let exploration = explore(&program, &EngineConfig::decomposed()).unwrap();
        ElementSummary {
            type_name: element.type_name().to_string(),
            config_key: element.config_key(),
            exploration,
            explore_time: start.elapsed(),
        }
    }

    /// Structural equality of two segments (Segment itself does not derive
    /// PartialEq because SymPacket does not).
    fn assert_segments_equal(a: &Segment, b: &Segment) {
        assert_eq!(a.constraint, b.constraint);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.packet.parts(), b.packet.parts());
        assert_eq!(a.ds_reads, b.ds_reads);
        assert_eq!(a.ds_writes, b.ds_writes);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.approximate, b.approximate);
    }

    #[test]
    fn real_element_summaries_round_trip() {
        // Cover the interesting encodings: loops + packet rewrites
        // (IPOptions), data-structure traffic (IPLookup, NetFlow, Nat), and
        // crash segments (CheckIPHeader's suspect paths).
        let elements: Vec<Box<dyn Element>> = vec![
            Box::new(CheckIPHeader::new()),
            Box::new(IPOptions::new(Ipv4Addr::new(10, 255, 255, 254))),
            Box::new(IPLookup::two_port_default()),
            Box::new(NetFlow::new()),
            Box::new(Nat::with_defaults()),
        ];
        for element in &elements {
            let summary = summary_of(element.as_ref());
            let json = summary_to_json(&summary);
            let text = json.to_text();
            let decoded = summary_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(decoded.type_name, summary.type_name);
            assert_eq!(decoded.config_key, summary.config_key);
            assert_eq!(
                decoded.exploration.branches_expanded,
                summary.exploration.branches_expanded
            );
            assert_eq!(
                decoded.exploration.segments.len(),
                summary.exploration.segments.len(),
                "{}",
                summary.type_name
            );
            for (a, b) in decoded
                .exploration
                .segments
                .iter()
                .zip(summary.exploration.segments.iter())
            {
                assert_segments_equal(a, b);
            }
            // Encoding the decoded summary again is byte-stable.
            assert_eq!(summary_to_json(&decoded).to_text(), text);
        }
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(summary_from_json(&Json::Null).is_err());
        assert!(summary_from_json(&Json::obj([("format", Json::int(99))])).is_err());
        let missing_terms = Json::obj([
            ("format", Json::int(SUMMARY_FORMAT)),
            ("type_name", Json::str("X")),
            ("config_key", Json::str("")),
            ("explore_micros", Json::int(1)),
            ("branches", Json::int(0)),
            ("terms", Json::Arr(vec![])),
            (
                "segments",
                Json::Arr(vec![Json::obj([("constraint", Json::Arr(vec![]))])]),
            ),
        ]);
        assert!(summary_from_json(&missing_terms).is_err());
        // A term referencing a forward (not yet decoded) id is rejected.
        let forward_ref = Json::obj([
            ("format", Json::int(SUMMARY_FORMAT)),
            ("type_name", Json::str("X")),
            ("config_key", Json::str("")),
            ("explore_micros", Json::int(1)),
            ("branches", Json::int(0)),
            (
                "terms",
                Json::Arr(vec![Json::obj([
                    ("t", Json::str("un")),
                    ("op", Json::str("Not")),
                    ("a", Json::int(5)),
                ])]),
            ),
            ("segments", Json::Arr(vec![])),
        ]);
        assert!(summary_from_json(&forward_ref).is_err());
    }

    #[test]
    fn decode_rejects_out_of_range_scalars() {
        // Widths outside 1..=64 (the BitVec invariant) and oversized ports
        // must surface as decode errors, never as panics or silent
        // truncation (the cache treats a decode error as a recomputable
        // miss; a worker panic would abort the whole run).
        let doc_with_term = |term: Json| {
            Json::obj([
                ("format", Json::int(SUMMARY_FORMAT)),
                ("type_name", Json::str("X")),
                ("config_key", Json::str("")),
                ("explore_micros", Json::int(1)),
                ("branches", Json::int(0)),
                ("terms", Json::Arr(vec![term])),
                ("segments", Json::Arr(vec![])),
            ])
        };
        for width in [0u64, 65, 300, u64::from(u32::MAX)] {
            let doc = doc_with_term(Json::obj([
                ("t", Json::str("const")),
                ("w", Json::int(width)),
                ("v", Json::int(0)),
            ]));
            let error = summary_from_json(&doc).expect_err("width must be rejected");
            assert!(error.0.contains("width"), "{error}");
        }
        let doc = doc_with_term(Json::obj([
            ("t", Json::str("var")),
            ("id", Json::int(u64::MAX)),
            ("w", Json::int(8)),
        ]));
        assert!(summary_from_json(&doc).is_err(), "u32 overflow accepted");
    }
}

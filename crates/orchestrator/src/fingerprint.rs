//! Content-addressed identities for element summaries.
//!
//! A summary is fully determined by the element's verification-relevant
//! behaviour (its IR model, configuration, and initial table contents — the
//! [`dataplane_pipeline::Element::fingerprint_material`] text) plus the
//! engine configuration it was explored under. Hashing that material gives a
//! stable 128-bit key: equal keys mean the cached summary can be reused,
//! changed element code or configuration changes the key and forces a fresh
//! exploration — which is exactly what makes incremental re-verification
//! sound.

use dataplane_pipeline::Element;
use dataplane_symbex::{EngineConfig, LoopMode};
use std::fmt;

/// A 128-bit content hash (two independent 64-bit FNV-1a streams).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl Fingerprint {
    /// Parse the hex form produced by `Display` (used to map persisted cache
    /// file names back to keys).
    pub fn parse(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&text[..16], 16).ok()?;
        let lo = u64::from_str_radix(&text[16..], 16).ok()?;
        Some(Fingerprint(hi, lo))
    }
}

const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: impl Iterator<Item = u8> + Clone, basis: u64) -> u64 {
    let mut hash = basis;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hash arbitrary material into a fingerprint.
pub fn fingerprint_bytes(material: &str) -> Fingerprint {
    // Two streams with different bases; a collision must defeat both.
    Fingerprint(
        fnv1a(material.bytes(), 0xcbf2_9ce4_8422_2325),
        fnv1a(material.bytes(), 0x6c62_272e_07bb_0142),
    )
}

/// Canonical text for an engine configuration (part of the summary
/// identity: the same element explored under a different loop mode or budget
/// may produce different segments).
pub fn engine_key(config: &EngineConfig) -> String {
    format!(
        "segments={};branches={};loops={}",
        config.max_segments,
        config.max_branches,
        match config.loop_mode {
            LoopMode::Unroll => "unroll",
            LoopMode::Decompose => "decompose",
        }
    )
}

/// The content-addressed identity of `element`'s summary under `config`.
pub fn element_fingerprint(element: &dyn Element, config: &EngineConfig) -> Fingerprint {
    let material = format!(
        "{}\u{1e}{}",
        element.fingerprint_material(),
        engine_key(config)
    );
    fingerprint_bytes(&material)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::{DecTTL, IPLookup, Route};
    use std::net::Ipv4Addr;

    #[test]
    fn display_and_parse_round_trip() {
        let fp = fingerprint_bytes("hello");
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(Fingerprint::parse(&text), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse(&"0".repeat(31)), None);
    }

    #[test]
    fn equal_material_equal_hash() {
        assert_eq!(fingerprint_bytes("abc"), fingerprint_bytes("abc"));
        assert_ne!(fingerprint_bytes("abc"), fingerprint_bytes("abd"));
        assert_ne!(fingerprint_bytes(""), fingerprint_bytes("\u{0}"));
    }

    #[test]
    fn elements_hash_by_behaviour() {
        let config = EngineConfig::decomposed();
        // Same type and configuration: same fingerprint.
        assert_eq!(
            element_fingerprint(&DecTTL::new(), &config),
            element_fingerprint(&DecTTL::new(), &config)
        );
        // Different element type: different fingerprint.
        assert_ne!(
            element_fingerprint(&DecTTL::new(), &config),
            element_fingerprint(&IPLookup::two_port_default(), &config)
        );
        // Same type, different configuration: different fingerprint.
        assert_ne!(
            element_fingerprint(&IPLookup::two_port_default(), &config),
            element_fingerprint(
                &IPLookup::new(vec![Route::new(Ipv4Addr::new(10, 0, 0, 0), 8, 0)]),
                &config
            )
        );
        // Same element, different engine configuration: different fingerprint.
        assert_ne!(
            element_fingerprint(&DecTTL::new(), &EngineConfig::decomposed()),
            element_fingerprint(&DecTTL::new(), &EngineConfig::monolithic(10, 10))
        );
    }
}

//! The front door: one typed, serialisable request/response API over every
//! way this crate verifies dataplanes.
//!
//! [`VerifyService`] owns what the deprecated `Orchestrator` builder used to
//! configure — the summary store, the worker-thread budget, the verifier
//! options — and serves [`VerifyRequest`]s:
//!
//! * [`VerifyRequest::Single`] — one pipeline × one property,
//! * [`VerifyRequest::Matrix`] — a batch of scenarios on the shared
//!   scheduler,
//! * [`VerifyRequest::Diff`] — incremental re-verification of a config
//!   edit,
//! * [`VerifyRequest::Watch`] — diff against the service's *rolling
//!   baseline*: the first watch request verifies everything and records the
//!   configs; every subsequent one re-verifies only what changed since the
//!   last and rolls the baseline forward.
//!
//! Requests and responses are plain data; requests serialise through
//! [`crate::wire`], so the same API shape works in-process, across a pipe,
//! or over a socket.
//!
//! ## The plan/execute split
//!
//! [`VerifyService::plan_request`] turns a request into a first-class
//! [`PlanSpec`] — scenarios as config text, one [`crate::wire::JobSpec`]
//! per distinct element behaviour, dependency edges, fingerprints — which
//! round-trips through JSON. [`VerifyService::execute_plan`] runs one,
//! computing the missing element summaries through any [`Executor`]
//! (in-process pool, or subprocess workers over stdio) and composing on the
//! shared scheduler. A plan serialised by one process and executed by
//! another produces a byte-identical deterministic report — the remote
//! worker path, proven end to end by the `plan`/`exec-plan` round-trip
//! tests and CI smoke.

use crate::cache::{CacheStats, SummaryStore};
use crate::diff::{
    config_scenarios, default_properties, DiffEntry, DiffKind, DiffReport, NamedConfig,
};
use crate::exec::{ExecError, Executor, InProcessExecutor};
use crate::executor::{Latch, Pool, ThreadBudget};
use crate::json::Json;
use crate::matrix::{preset_pipelines, preset_properties, MatrixReport};
use crate::orchestrator::{
    parallel_composition, plan, BudgetedComposition, CompositionMode, ProgressEvent, Scenario,
    ScenarioReport,
};
use crate::wire::{
    self, BoundSpec, ComposeJob, ComposeShardJob, DiffMeta, ExploreJob, PlanSpec, ScenarioSpec,
    WireError,
};
use dataplane_pipeline::diff::diff_pipelines;
use dataplane_pipeline::{parse_config, ConfigError, Pipeline};
use dataplane_symbex::{explore_with_cancel, CancelToken, EngineConfig};
use dataplane_verifier::{
    ElementSummary, InstructionBoundReport, ParallelComposition, Property, Report, Verdict,
    Verifier, VerifierOptions,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

type ProgressFn = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// `--compose-shard auto`'s fleet-wide shard target per live capacity
/// slot: enough over-decomposition that the pull queue load-balances and
/// a straggler costs at most ~1/4 of a slot's share, without drowning the
/// wire in per-job overhead (stealing splits whatever this still gets
/// wrong).
const AUTO_SHARDS_PER_SLOT: usize = 4;

/// Which properties a diff/watch request verifies for each named config.
/// Serialisable, unlike the old `&dyn Fn(&str) -> Vec<Property>` parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertySelect {
    /// Crash freedom and bounded per-packet execution — the classes
    /// checkable for any config without per-pipeline knowledge.
    Default,
    /// The preset property table ([`preset_properties`]) for configs named
    /// like a preset pipeline (including reachability); [`Self::Default`]
    /// classes for everything else.
    Preset,
    /// Exactly these properties, for every config.
    Explicit(Vec<Property>),
}

impl PropertySelect {
    /// The properties to verify for the config named `name`.
    pub fn properties_for(&self, name: &str) -> Vec<Property> {
        match self {
            PropertySelect::Default => default_properties(name),
            PropertySelect::Preset => {
                if preset_pipelines().iter().any(|(preset, _)| *preset == name) {
                    preset_properties(name)
                } else {
                    default_properties(name)
                }
            }
            PropertySelect::Explicit(properties) => properties.clone(),
        }
    }
}

/// A verification request — the one front door.
///
/// Serialisable via [`VerifyRequest::to_json`] (pipelines travel as config
/// text), so the same request type is the in-process API and the wire API.
pub enum VerifyRequest {
    /// Verify one pipeline against one property.
    Single {
        /// Label used in reports.
        name: String,
        /// The pipeline (consumed by the run).
        pipeline: Pipeline,
        /// The property to check.
        property: Property,
    },
    /// Verify a batch of scenarios on the shared scheduler.
    Matrix {
        /// The scenarios, each owning its pipeline.
        scenarios: Vec<Scenario>,
    },
    /// Re-verify only what changed between two config sets.
    Diff {
        /// The baseline configs.
        old: Vec<NamedConfig>,
        /// The edited configs.
        new: Vec<NamedConfig>,
        /// Which properties to verify per config.
        properties: PropertySelect,
    },
    /// Diff against the service's rolling baseline (see the module docs);
    /// the incremental shape a file-watcher loop submits on every change.
    Watch {
        /// The current configs.
        configs: Vec<NamedConfig>,
        /// Which properties to verify per config.
        properties: PropertySelect,
    },
    /// Establish the pipeline's per-packet instruction bound and witness
    /// packet ([`Verifier::max_instructions`]) — the paper's second
    /// experiment, as a typed request so the bound analysis rides the
    /// plan/execute split (its element explorations run through any
    /// [`Executor`]).
    Bound {
        /// Label used in reports.
        name: String,
        /// The pipeline to bound.
        pipeline: Pipeline,
    },
    /// Differentially test the scenarios' verdicts against the concrete
    /// model interpreter: verify the matrix, replay every `Violated`
    /// counterexample, and fuzz every `Proven` scenario with `packets`
    /// seeded packets (see [`crate::conformance`]).
    Conformance {
        /// The scenarios, each owning its pipeline.
        scenarios: Vec<Scenario>,
        /// Base seed of the fuzz streams (fixed seed ⇒ byte-identical
        /// deterministic report).
        seed: u64,
        /// Total fuzz packets, split across the proven scenarios.
        packets: u64,
    },
}

impl VerifyRequest {
    /// The request kind's wire name.
    pub fn kind(&self) -> &'static str {
        match self {
            VerifyRequest::Single { .. } => "single",
            VerifyRequest::Matrix { .. } => "matrix",
            VerifyRequest::Diff { .. } => "diff",
            VerifyRequest::Watch { .. } => "watch",
            VerifyRequest::Bound { .. } => "bound",
            VerifyRequest::Conformance { .. } => "conformance",
        }
    }

    /// Serialise (see [`crate::wire::request_to_json`]).
    pub fn to_json(&self) -> Result<Json, WireError> {
        wire::request_to_json(self)
    }

    /// Deserialise (see [`crate::wire::request_from_json`]).
    pub fn from_json(json: &Json) -> Result<VerifyRequest, WireError> {
        wire::request_from_json(json)
    }
}

/// The named result of a [`VerifyRequest::Bound`] analysis.
pub struct BoundOutcome {
    /// The pipeline's label.
    pub pipeline_name: String,
    /// The instruction-bound analysis result.
    pub report: InstructionBoundReport,
}

/// What a served request produced.
pub enum VerifyOutcome {
    /// The report of a [`VerifyRequest::Single`] run.
    Single(Box<ScenarioReport>),
    /// The matrix of a [`VerifyRequest::Matrix`] run (also the first
    /// [`VerifyRequest::Watch`] call, which establishes the baseline).
    Matrix(MatrixReport),
    /// The incremental report of a [`VerifyRequest::Diff`] or follow-up
    /// [`VerifyRequest::Watch`] run.
    Diff(DiffReport),
    /// The instruction bound of a [`VerifyRequest::Bound`] analysis.
    Bound(Box<BoundOutcome>),
    /// The replay + fuzz result of a [`VerifyRequest::Conformance`] run.
    Conformance(Box<crate::conformance::ConformanceReport>),
}

/// The front door's response: the outcome plus which request shape produced
/// it.
pub struct VerifyResponse {
    /// The served request's kind (`"single"`, `"matrix"`, ...).
    pub request: &'static str,
    /// What the run produced.
    pub outcome: VerifyOutcome,
}

impl VerifyResponse {
    /// The matrix report of whatever ran: the outcome itself for matrix
    /// runs, the re-verification matrix for diff runs, a one-scenario view
    /// for single runs.
    pub fn matrix(&self) -> Option<&MatrixReport> {
        match &self.outcome {
            VerifyOutcome::Single(_) | VerifyOutcome::Bound(_) | VerifyOutcome::Conformance(_) => {
                None
            }
            VerifyOutcome::Matrix(m) => Some(m),
            VerifyOutcome::Diff(d) => Some(&d.matrix),
        }
    }

    /// The single report, if this response answered a `Single` request.
    pub fn report(&self) -> Option<&Report> {
        match &self.outcome {
            VerifyOutcome::Single(s) => Some(&s.report),
            _ => None,
        }
    }

    /// `(proven, violated, unknown)` counts across every scenario that ran.
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        match &self.outcome {
            VerifyOutcome::Single(s) => match s.report.verdict {
                Verdict::Proven => (1, 0, 0),
                Verdict::Violated => (0, 1, 0),
                Verdict::Unknown => (0, 0, 1),
            },
            VerifyOutcome::Matrix(m) => m.verdict_counts(),
            VerifyOutcome::Diff(d) => d.matrix.verdict_counts(),
            // Bound analyses and conformance runs carry no verdicts of
            // their own (conformance *consumes* a matrix's verdicts).
            VerifyOutcome::Bound(_) | VerifyOutcome::Conformance(_) => (0, 0, 0),
        }
    }

    /// The machine-readable (operational) document: schema-versioned, with
    /// timings and cache statistics.
    pub fn to_json(&self) -> Json {
        match &self.outcome {
            VerifyOutcome::Single(s) => Json::obj([
                ("schema", Json::int(wire::REPORT_SCHEMA)),
                ("kind", Json::str("single")),
                ("pipeline", Json::str(&s.pipeline_name)),
                ("report", wire::report_to_json(&s.report)),
                (
                    "elapsed_micros",
                    Json::int(s.report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
                ),
            ]),
            VerifyOutcome::Matrix(m) => m.to_json(),
            VerifyOutcome::Diff(d) => d.to_json(),
            VerifyOutcome::Bound(b) => Json::obj([
                ("schema", Json::int(wire::REPORT_SCHEMA)),
                ("kind", Json::str("bound")),
                ("pipeline", Json::str(&b.pipeline_name)),
                ("report", wire::bound_report_to_json(&b.report)),
                (
                    "elapsed_micros",
                    Json::int(b.report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
                ),
            ]),
            VerifyOutcome::Conformance(c) => c.to_json(),
        }
    }

    /// The deterministic document: verdicts, counterexamples, unproven
    /// paths, and work statistics only — byte-identical across runs,
    /// processes, schedulers, and cache temperatures.
    pub fn deterministic_json(&self) -> Json {
        match &self.outcome {
            VerifyOutcome::Single(s) => Json::obj([
                ("schema", Json::int(wire::REPORT_SCHEMA)),
                ("kind", Json::str("single")),
                ("pipeline", Json::str(&s.pipeline_name)),
                ("report", wire::report_to_json(&s.report)),
            ]),
            VerifyOutcome::Matrix(m) => m.deterministic_json(),
            VerifyOutcome::Diff(d) => d.deterministic_json(),
            VerifyOutcome::Bound(b) => Json::obj([
                ("schema", Json::int(wire::REPORT_SCHEMA)),
                ("kind", Json::str("bound")),
                ("pipeline", Json::str(&b.pipeline_name)),
                ("report", wire::bound_report_to_json(&b.report)),
            ]),
            VerifyOutcome::Conformance(c) => c.deterministic_json(),
        }
    }
}

impl fmt::Display for VerifyResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            VerifyOutcome::Single(s) => write!(f, "{}", s.report),
            VerifyOutcome::Matrix(m) => write!(f, "{m}"),
            VerifyOutcome::Diff(d) => write!(f, "{d}"),
            VerifyOutcome::Bound(b) => write!(f, "{}: {}", b.pipeline_name, b.report),
            VerifyOutcome::Conformance(c) => write!(f, "{c}"),
        }
    }
}

/// A front-door failure.
#[derive(Debug)]
pub enum ServiceError {
    /// A config string does not parse.
    Config(ConfigError),
    /// A request, plan, or pipeline does not (de)serialise.
    Wire(WireError),
    /// Plan execution failed (worker spawn, protocol, job).
    Exec(ExecError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "service: {e}"),
            ServiceError::Wire(e) => write!(f, "service: {e}"),
            ServiceError::Exec(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

/// How each scenario's Step-2 enumeration splits into wire shards when a
/// plan executes on a fleet with a remote shard path. Whatever the mode,
/// the fold replays the sequential enumeration, so deterministic reports
/// are byte-identical across all of them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ComposeShardMode {
    /// Whole compositions as single [`ComposeJob`]s (the pre-sharding
    /// wire shape).
    Off,
    /// A fixed per-scenario target shard count.
    Fixed(usize),
    /// Derive the shard count per request from the executor's live fleet
    /// capacity, and place the cuts by calibrated outline weights (the
    /// warm store's observed per-element solver costs) instead of raw
    /// unit counts.
    #[default]
    Auto,
}

impl ComposeShardMode {
    /// Parse the `--compose-shard` argument: `auto`, `off` (or `0`), or a
    /// fixed per-scenario shard count.
    pub fn parse(text: &str) -> Option<ComposeShardMode> {
        match text {
            "auto" => Some(ComposeShardMode::Auto),
            "off" => Some(ComposeShardMode::Off),
            n => n.parse().ok().map(|n: usize| {
                if n == 0 {
                    ComposeShardMode::Off
                } else {
                    ComposeShardMode::Fixed(n)
                }
            }),
        }
    }
}

impl std::fmt::Display for ComposeShardMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeShardMode::Off => f.write_str("off"),
            ComposeShardMode::Fixed(n) => write!(f, "{n}"),
            ComposeShardMode::Auto => f.write_str("auto"),
        }
    }
}

/// The verification service: the owner of the summary store, the shared
/// scheduler's thread budget, and the verifier options — serving typed
/// [`VerifyRequest`]s (see the module docs).
pub struct VerifyService {
    options: VerifierOptions,
    threads: usize,
    store: Arc<SummaryStore>,
    progress: Option<ProgressFn>,
    budget: Arc<ThreadBudget>,
    compose_mode: CompositionMode,
    compose_shard: ComposeShardMode,
    /// The rolling baseline of [`VerifyRequest::Watch`]: the configs the
    /// last watch call verified.
    baseline: Mutex<Option<Vec<NamedConfig>>>,
}

impl Default for VerifyService {
    fn default() -> Self {
        VerifyService::new()
    }
}

impl VerifyService {
    /// A service with default verifier options, an in-memory store, one
    /// worker per available core, and the shared scheduler dispatching both
    /// scenario- and check-level work.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        VerifyService {
            options: VerifierOptions::default(),
            threads,
            store: Arc::new(SummaryStore::in_memory()),
            progress: None,
            budget: ThreadBudget::new(threads),
            compose_mode: CompositionMode::SharedPool,
            compose_shard: ComposeShardMode::Auto,
            baseline: Mutex::new(None),
        }
    }

    /// Replace the summary store (e.g. with a persistent one).
    pub fn with_store(mut self, store: Arc<SummaryStore>) -> Self {
        self.store = store;
        self
    }

    /// Set the worker-thread count — which is also the pool-wide bound on
    /// live solver threads (0 keeps the auto-detected value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        if threads > 0 {
            self.threads = threads;
            self.budget = ThreadBudget::new(threads);
        }
        self
    }

    /// Replace the verifier options (engine budgets, solver budgets,
    /// escalation ladder). An explicit `options.parallel` executor takes
    /// precedence over the service's composition mode.
    pub fn with_options(mut self, options: VerifierOptions) -> Self {
        self.options = options;
        self
    }

    /// Choose how each composition's Step-2 work is dispatched (the default
    /// is [`CompositionMode::SharedPool`]).
    pub fn with_composition_mode(mut self, mode: CompositionMode) -> Self {
        self.compose_mode = mode;
        self
    }

    /// Split each scenario's Step-2 suspect×prefix enumeration into about
    /// `shards` contiguous wire shards when executing plans on a fleet with
    /// a remote shard path (0 = whole compositions as single
    /// [`ComposeJob`]s). Shorthand for [`VerifyService::with_compose_shard_mode`]
    /// with [`ComposeShardMode::Fixed`] / [`ComposeShardMode::Off`].
    pub fn with_compose_shard(self, shards: usize) -> Self {
        self.with_compose_shard_mode(if shards == 0 {
            ComposeShardMode::Off
        } else {
            ComposeShardMode::Fixed(shards)
        })
    }

    /// Choose how Step-2 work shards onto a fleet (the default is
    /// [`ComposeShardMode::Auto`]: per-request counts from live fleet
    /// capacity, cuts placed by calibrated weights).
    pub fn with_compose_shard_mode(mut self, mode: ComposeShardMode) -> Self {
        self.compose_shard = mode;
        self
    }

    /// The configured compose-shard mode.
    pub fn compose_shard(&self) -> ComposeShardMode {
        self.compose_shard
    }

    /// Stream progress events to `observer`.
    pub fn with_progress(
        mut self,
        observer: impl Fn(&ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(observer));
        self
    }

    /// The shared summary store.
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured verifier options.
    pub fn options(&self) -> &VerifierOptions {
        &self.options
    }

    /// The shared thread budget (exposes the live-thread high-water mark).
    pub fn thread_budget(&self) -> &Arc<ThreadBudget> {
        &self.budget
    }

    fn emit(&self, event: ProgressEvent) {
        if let Some(observer) = &self.progress {
            observer(&event);
        }
    }

    // -----------------------------------------------------------------------
    // Serving
    // -----------------------------------------------------------------------

    /// Serve one request (see [`VerifyRequest`] for the shapes).
    pub fn serve(&self, request: VerifyRequest) -> Result<VerifyResponse, ServiceError> {
        let kind = request.kind();
        let outcome = match request {
            VerifyRequest::Single {
                name,
                pipeline,
                property,
            } => {
                let mut matrix = self.run_matrix(vec![Scenario::new(name, pipeline, property)]);
                VerifyOutcome::Single(Box::new(matrix.scenarios.remove(0)))
            }
            VerifyRequest::Matrix { scenarios } => {
                VerifyOutcome::Matrix(self.run_matrix(scenarios))
            }
            VerifyRequest::Diff {
                old,
                new,
                properties,
            } => VerifyOutcome::Diff(
                self.verify_diff(&old, &new, &|name| properties.properties_for(name))?,
            ),
            VerifyRequest::Watch {
                configs,
                properties,
            } => {
                let previous = self.baseline.lock().expect("watch baseline").clone();
                let outcome = match previous {
                    // First watch call: verify everything, establish the
                    // baseline.
                    None => {
                        let scenarios =
                            config_scenarios(&configs, &|name| properties.properties_for(name))?;
                        VerifyOutcome::Matrix(self.run_matrix(scenarios))
                    }
                    // Every later call: re-verify only what changed since
                    // the previous configs.
                    Some(old) => VerifyOutcome::Diff(self.verify_diff(
                        &old,
                        &configs,
                        &|name| properties.properties_for(name),
                    )?),
                };
                // Roll the baseline forward only after the tick verified:
                // a tick that errors (e.g. a config syntax error) must not
                // become the baseline, or the eventual fix would diff as
                // `Identical` against it and skip verification of the edit.
                *self.baseline.lock().expect("watch baseline") = Some(configs);
                outcome
            }
            VerifyRequest::Conformance {
                scenarios,
                seed,
                packets,
            } => VerifyOutcome::Conformance(Box::new(
                self.run_conformance(scenarios, seed, packets, None)?,
            )),
            request @ VerifyRequest::Bound { .. } => {
                // Serve through the same plan/execute machinery the remote
                // path uses: element explorations on the in-process pool,
                // the bound analysis decided from the warmed store.
                let plan = self.plan_request(&request)?;
                self.execute_plan(&plan, &InProcessExecutor::new(self.threads))?
                    .outcome
            }
        };
        Ok(VerifyResponse {
            request: kind,
            outcome,
        })
    }

    /// Serve one request, running its jobs on `executor` where the
    /// request has a plannable form — the daemon's serving path, where
    /// the executor is the fleet of currently joined socket workers.
    ///
    /// With `None` this is exactly [`VerifyService::serve`]. With an
    /// executor, plannable requests (single, matrix, diff, bound, watch)
    /// go through [`VerifyService::plan_request`] /
    /// [`VerifyService::execute_plan`] — a `Watch` additionally rolls the
    /// service's baseline forward after the tick, exactly as `serve`
    /// would — and a conformance request fuzzes its shards on the
    /// executor. Deterministic report content is byte-identical to
    /// serving in-process either way.
    pub fn serve_with(
        &self,
        request: VerifyRequest,
        executor: Option<&dyn Executor>,
    ) -> Result<VerifyResponse, ServiceError> {
        let Some(executor) = executor else {
            return self.serve(request);
        };
        let kind = request.kind();
        let mut response = match request {
            VerifyRequest::Conformance {
                scenarios,
                seed,
                packets,
            } => VerifyResponse {
                request: kind,
                outcome: VerifyOutcome::Conformance(Box::new(self.run_conformance(
                    scenarios,
                    seed,
                    packets,
                    Some(executor),
                )?)),
            },
            VerifyRequest::Watch {
                configs,
                properties,
            } => {
                let plan = self.plan_request(&VerifyRequest::Watch {
                    configs: configs.clone(),
                    properties,
                })?;
                let response = self.execute_plan(&plan, executor)?;
                // Roll the baseline exactly as `serve` would (see there
                // for why this happens only after a successful tick).
                *self.baseline.lock().expect("watch baseline") = Some(configs);
                response
            }
            request => {
                let plan = self.plan_request(&request)?;
                self.execute_plan(&plan, executor)?
            }
        };
        // `execute_plan` reports as "exec-plan"; keep the caller's kind.
        response.request = kind;
        Ok(response)
    }

    /// Verify one pipeline against one property. Equivalent to (and
    /// verdict-identical with) `Verifier::verify`, with element
    /// explorations on the shared pool and summaries served from the store.
    pub fn verify(&self, pipeline: Pipeline, property: Property) -> Report {
        let name = format!("pipeline[{}]", pipeline.len());
        let mut matrix = self.run_matrix(vec![Scenario::new(name, pipeline, property)]);
        matrix.scenarios.remove(0).report
    }

    /// The verifier options a composition job runs with: `base`, with
    /// Step-2 dispatch wired per the composition mode unless the caller
    /// installed an explicit executor.
    fn composition_options(&self, base: &VerifierOptions) -> VerifierOptions {
        let mut options = base.clone();
        if !options.parallel.is_parallel() {
            options.parallel = match self.compose_mode {
                CompositionMode::SharedPool => ParallelComposition::over(Arc::new(
                    BudgetedComposition::shared(self.budget.clone()),
                )),
                CompositionMode::Scoped(threads) => parallel_composition(threads),
                CompositionMode::Sequential => ParallelComposition::sequential(),
            };
        }
        options
    }

    /// Run a batch of scenarios on the shared scheduler with the service's
    /// options.
    pub fn run_matrix(&self, scenarios: Vec<Scenario>) -> MatrixReport {
        let options = self.options.clone();
        self.run_matrix_with(scenarios, &options)
    }

    /// Run a batch of scenarios on the shared scheduler: plan, spawn Step-1
    /// explore tasks, and let each completed dependency set dynamically
    /// spawn its composition task onto the *same* pool — whose idle workers
    /// in turn serve as Step-2 walk helpers, so every kind of work competes
    /// for one thread budget.
    fn run_matrix_with(
        &self,
        scenarios: Vec<Scenario>,
        base_options: &VerifierOptions,
    ) -> MatrixReport {
        let started = Instant::now();
        let stats_before = self.store.stats();
        self.budget.reset_peak();
        let job_plan = plan(&scenarios, base_options, &self.store);
        self.emit(ProgressEvent::Planned {
            explore_jobs: job_plan.explore.len(),
            cached: job_plan.cached,
            scenarios: scenarios.len(),
        });

        let explore_jobs = job_plan.explore.len();
        let cached_jobs = job_plan.cached;
        let options = self.composition_options(base_options);
        let cancel = CancelToken::new();
        let mut slots: Vec<Arc<Mutex<Option<ScenarioReport>>>> = Vec::new();

        Pool::run(self.threads, self.budget.clone(), |pool| {
            // Composition tasks, latched on their element explorations.
            // `dependents[j]` collects the latches explore job `j` must
            // signal when it completes.
            let mut dependents: Vec<Vec<Arc<Latch<'_>>>> = vec![Vec::new(); explore_jobs];
            for (scenario, (deps, fingerprints)) in scenarios.into_iter().zip(
                job_plan
                    .scenario_deps
                    .into_iter()
                    .zip(job_plan.element_fingerprints),
            ) {
                let slot = Arc::new(Mutex::new(None));
                slots.push(slot.clone());
                let store = self.store.clone();
                let progress = self.progress.clone();
                let options = options.clone();
                let job = Box::new(move |_: &Pool<'_>| {
                    let label = scenario.label();
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ComposeStarted {
                            scenario: label.clone(),
                        });
                    }
                    let start = Instant::now();
                    let mut verifier = Verifier::with_options(options);
                    verifier.seed_summaries(fingerprints.iter().filter_map(|fp| store.get(*fp)));
                    let report = verifier.verify(&scenario.pipeline, &scenario.property);
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ComposeFinished {
                            scenario: label,
                            verdict: report.verdict.clone(),
                            elapsed: start.elapsed(),
                        });
                    }
                    *slot.lock().expect("report slot") = Some(ScenarioReport {
                        pipeline_name: scenario.pipeline_name,
                        report,
                    });
                });
                if deps.is_empty() {
                    pool.spawn(job);
                } else {
                    let latch = Latch::new(deps.len(), job);
                    for dep in deps {
                        dependents[dep].push(latch.clone());
                    }
                }
            }

            // Step-1 tasks: explore one element behaviour each, publish to
            // the shared store, then release whatever compositions were
            // waiting on it.
            for (idx, spec) in job_plan.explore.into_iter().enumerate() {
                let store = self.store.clone();
                let progress = self.progress.clone();
                let engine = base_options.engine.clone();
                let cancel = cancel.clone();
                let latches = std::mem::take(&mut dependents[idx]);
                pool.spawn(Box::new(move |pool| {
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ExploreStarted {
                            type_name: spec.type_name.clone(),
                        });
                    }
                    let start = Instant::now();
                    let result = explore_with_cancel(&spec.program, &engine, &cancel);
                    let elapsed = start.elapsed();
                    let ok = result.is_ok();
                    if let Ok(exploration) = result {
                        store.insert(
                            spec.fingerprint,
                            Arc::new(ElementSummary {
                                type_name: spec.type_name.clone(),
                                config_key: spec.config_key.clone(),
                                exploration,
                                explore_time: elapsed,
                            }),
                        );
                    }
                    // A budget-exceeded exploration publishes nothing; the
                    // composition job then explores inline and reports the
                    // failure exactly as the sequential verifier does.
                    if let Some(observer) = &progress {
                        observer(&ProgressEvent::ExploreFinished {
                            type_name: spec.type_name.clone(),
                            elapsed,
                            ok,
                        });
                    }
                    for latch in &latches {
                        latch.ready(pool);
                    }
                }));
            }
        });

        let scenario_reports: Vec<ScenarioReport> = slots
            .into_iter()
            .map(|slot| {
                slot.lock()
                    .expect("report slot")
                    .take()
                    .expect("every composition job ran")
            })
            .collect();
        let stats_after = self.store.stats();
        MatrixReport {
            scenarios: scenario_reports,
            explore_jobs,
            cached_jobs,
            threads: self.threads,
            peak_live_threads: self.budget.peak_in_use(),
            cache: CacheStats::delta(&stats_before, &stats_after),
            stats: None,
            elapsed: started.elapsed(),
        }
    }

    /// Incrementally re-verify `new` against `old`: only scenarios of
    /// configs whose element set or wiring changed are re-run. For the
    /// composition-only guarantee on wiring-only diffs the summary store
    /// must be warm with the old configs' element behaviours — run the old
    /// configs first (same process, or a persistent store).
    pub fn verify_diff(
        &self,
        old: &[NamedConfig],
        new: &[NamedConfig],
        properties: &dyn Fn(&str) -> Vec<Property>,
    ) -> Result<DiffReport, ConfigError> {
        let (scenarios, meta) = diff_scenarios(old, new, properties)?;
        let matrix = self.run_matrix(scenarios);
        Ok(DiffReport {
            entries: meta.entries,
            removed_configs: meta.removed_configs,
            skipped_scenarios: meta.skipped_scenarios,
            matrix,
        })
    }

    /// Differentially test the scenarios' verdicts against the concrete
    /// model interpreter (see [`crate::conformance`]): run the matrix on
    /// the shared scheduler, replay every `Violated` counterexample on a
    /// fresh model runtime, and fuzz every `Proven` scenario with
    /// `packets` seeded packets split into [`crate::wire::FuzzJob`]
    /// shards. The shards run through `executor` when it has a remote
    /// fuzz path (a [`crate::exec::WorkerFleet`]) and on the in-process
    /// pool otherwise — the deterministic report is byte-identical either
    /// way under a fixed seed.
    pub fn run_conformance(
        &self,
        scenarios: Vec<Scenario>,
        seed: u64,
        packets: u64,
        executor: Option<&dyn Executor>,
    ) -> Result<crate::conformance::ConformanceReport, ServiceError> {
        use crate::conformance as conf;
        let started = Instant::now();
        // Render the wire specs before the matrix run consumes the
        // scenarios — fuzz shards travel as config text, and replay
        // rebuilds each violated pipeline from the same text the shards
        // see.
        let specs = scenarios
            .iter()
            .map(ScenarioSpec::from_scenario)
            .collect::<Result<Vec<_>, _>>()?;
        let matrix = self.run_matrix(scenarios);

        let mut replay = Vec::new();
        let mut proven_specs = Vec::new();
        for (spec, scenario_report) in specs.iter().zip(&matrix.scenarios) {
            match scenario_report.report.verdict {
                Verdict::Violated => {
                    let pipeline = parse_config(&spec.config)?;
                    replay.extend(conf::replay_report(
                        &pipeline,
                        &scenario_report.pipeline_name,
                        &scenario_report.report,
                    ));
                }
                Verdict::Proven => proven_specs.push(spec.clone()),
                // An Unknown verdict claims nothing — there is no verdict
                // for concrete execution to contradict.
                Verdict::Unknown => {}
            }
        }

        let jobs = conf::plan_fuzz_shards(&proven_specs, seed, packets);
        let shards = match executor.and_then(|e| e.fuzz_jobs(&jobs, &self.options)) {
            Some(result) => result?,
            None => conf::run_fuzz_jobs(&jobs, &self.options, self.threads)?,
        };
        Ok(conf::ConformanceReport {
            seed,
            packets_requested: packets,
            replay,
            fuzz: conf::fold_fuzz_shards(shards),
            threads: self.threads,
            elapsed: started.elapsed(),
        })
    }

    // -----------------------------------------------------------------------
    // The plan/execute split
    // -----------------------------------------------------------------------

    /// Turn a request into a serialisable [`PlanSpec`] without running
    /// anything: scenarios as config text, one job per distinct element
    /// behaviour (regardless of this service's store temperature — the
    /// *executing* process skips what its own store holds), dependency
    /// edges, fingerprints.
    ///
    /// A `Watch` request plans like its serve would run: a full matrix when
    /// no baseline is recorded, a diff against the rolling baseline
    /// otherwise (planning does **not** roll the baseline forward — only
    /// serving does).
    pub fn plan_request(&self, request: &VerifyRequest) -> Result<PlanSpec, ServiceError> {
        match request {
            VerifyRequest::Single {
                name,
                pipeline,
                property,
            } => {
                let spec = ScenarioSpec {
                    name: name.clone(),
                    config: dataplane_pipeline::write_config(pipeline).map_err(WireError::Write)?,
                    property: property.clone(),
                };
                self.plan_scenario_specs(vec![spec], None)
            }
            VerifyRequest::Matrix { scenarios } => {
                let specs = scenarios
                    .iter()
                    .map(ScenarioSpec::from_scenario)
                    .collect::<Result<Vec<_>, _>>()?;
                self.plan_scenario_specs(specs, None)
            }
            VerifyRequest::Diff {
                old,
                new,
                properties,
            } => {
                let (scenarios, meta) =
                    diff_scenarios(old, new, &|name| properties.properties_for(name))?;
                let specs = scenarios
                    .iter()
                    .map(ScenarioSpec::from_scenario)
                    .collect::<Result<Vec<_>, _>>()?;
                self.plan_scenario_specs(specs, Some(meta))
            }
            VerifyRequest::Watch {
                configs,
                properties,
            } => {
                let baseline = self.baseline.lock().expect("watch baseline").clone();
                match baseline {
                    None => {
                        let scenarios =
                            config_scenarios(configs, &|name| properties.properties_for(name))?;
                        let specs = scenarios
                            .iter()
                            .map(ScenarioSpec::from_scenario)
                            .collect::<Result<Vec<_>, _>>()?;
                        self.plan_scenario_specs(specs, None)
                    }
                    Some(old) => {
                        let (scenarios, meta) =
                            diff_scenarios(&old, configs, &|name| properties.properties_for(name))?;
                        let specs = scenarios
                            .iter()
                            .map(ScenarioSpec::from_scenario)
                            .collect::<Result<Vec<_>, _>>()?;
                        self.plan_scenario_specs(specs, Some(meta))
                    }
                }
            }
            VerifyRequest::Bound { name, pipeline } => {
                let config =
                    dataplane_pipeline::write_config(pipeline).map_err(WireError::Write)?;
                let parsed = parse_config(&config)?;
                let mut table = JobTable::new(&self.options.engine);
                let fingerprints = table.add_pipeline(&parsed);
                Ok(PlanSpec {
                    options: self.options.clone(),
                    scenarios: Vec::new(),
                    jobs: table.jobs,
                    scenario_jobs: Vec::new(),
                    element_fingerprints: Vec::new(),
                    diff: None,
                    bound: Some(BoundSpec {
                        name: name.clone(),
                        config,
                        fingerprints,
                    }),
                })
            }
            VerifyRequest::Conformance { .. } => Err(ServiceError::Wire(wire::malformed(
                "conformance requests are served directly (their fuzz shards dispatch as \
                 wire jobs themselves); there is no plan form",
            ))),
        }
    }

    /// Build the plan document for already-rendered scenario specs.
    fn plan_scenario_specs(
        &self,
        specs: Vec<ScenarioSpec>,
        diff: Option<DiffMeta>,
    ) -> Result<PlanSpec, ServiceError> {
        let mut table = JobTable::new(&self.options.engine);
        let mut scenario_jobs = Vec::with_capacity(specs.len());
        let mut element_fingerprints = Vec::with_capacity(specs.len());
        for spec in &specs {
            let pipeline = parse_config(&spec.config)?;
            let fps = table.add_pipeline(&pipeline);
            let mut deps = Vec::new();
            for fp in &fps {
                let job = table.job_of[fp];
                if !deps.contains(&job) {
                    deps.push(job);
                }
            }
            scenario_jobs.push(deps);
            element_fingerprints.push(fps);
        }
        Ok(PlanSpec {
            options: self.options.clone(),
            scenarios: specs,
            jobs: table.jobs,
            scenario_jobs,
            element_fingerprints,
            diff,
            bound: None,
        })
    }

    /// Execute a plan — typically one another process serialised: compute
    /// the element summaries this service's store does not already hold
    /// through `executor` (in-process pool or subprocess workers), fold
    /// them into the store in job order, then compose every scenario on the
    /// shared scheduler under the *plan's* options.
    ///
    /// The deterministic report content is byte-identical to serving the
    /// original request in the planning process.
    pub fn execute_plan(
        &self,
        plan_spec: &PlanSpec,
        executor: &dyn Executor,
    ) -> Result<VerifyResponse, ServiceError> {
        let started = Instant::now();
        let stats_before = self.store.stats();
        // Step 1 through the pluggable executor: only behaviours the local
        // store is missing.
        let missing: Vec<ExploreJob> = plan_spec
            .jobs
            .iter()
            .filter(|job| self.store.get(job.fingerprint).is_none())
            .cloned()
            .collect();
        let summaries = executor.explore_jobs(&missing, &plan_spec.options)?;
        // Explorations that produced a summary. A budget-exceeded job
        // returns `None` and publishes nothing — the composition phase then
        // surfaces the failure exactly as a cold in-process run would, and
        // only *its* attempt is counted, so the job is not counted twice.
        let mut published = 0usize;
        for (job, summary) in missing.iter().zip(summaries) {
            if let Some(summary) = summary {
                self.store.insert(job.fingerprint, Arc::new(summary));
                published += 1;
            }
        }

        // An instruction-bound plan: decide the analysis from the (now
        // warm) store under the plan's pinned options.
        if let Some(bound) = &plan_spec.bound {
            let pipeline = parse_config(&bound.config)?;
            let mut verifier = Verifier::with_options(plan_spec.options.clone());
            verifier.seed_summaries(
                bound
                    .fingerprints
                    .iter()
                    .filter_map(|fp| self.store.get(*fp)),
            );
            let report = verifier.max_instructions(&pipeline);
            return Ok(VerifyResponse {
                request: "exec-plan",
                outcome: VerifyOutcome::Bound(Box::new(BoundOutcome {
                    pipeline_name: bound.name.clone(),
                    report,
                })),
            });
        }

        // Step 2: through the executor too if it has a remote composition
        // path (sockets, subprocess workers), on the shared scheduler
        // otherwise — both under the plan's pinned options, both
        // byte-identical.
        let compose_specs: Vec<ComposeJob> = plan_spec
            .scenarios
            .iter()
            .zip(&plan_spec.element_fingerprints)
            .map(|(spec, fps)| ComposeJob {
                scenario: spec.clone(),
                fingerprints: fps.clone(),
            })
            .collect();
        let fetch = |fp: crate::fingerprint::Fingerprint| self.store.get(fp);
        // Sharded Step-2 takes precedence when configured and the executor
        // has a remote shard path; otherwise whole-composition jobs, then
        // the in-process scheduler.
        let remote_reports: Option<Vec<Report>> = match self.compose_sharded(plan_spec, executor)? {
            Some(reports) => Some(reports),
            None => match executor.compose_jobs(&compose_specs, &plan_spec.options, &fetch) {
                Some(reports) => Some(reports?),
                None => None,
            },
        };
        let mut matrix = match remote_reports {
            Some(reports) => {
                let stats_after = self.store.stats();
                MatrixReport {
                    scenarios: plan_spec
                        .scenarios
                        .iter()
                        .zip(reports)
                        .map(|(spec, report)| ScenarioReport {
                            pipeline_name: spec.name.clone(),
                            report,
                        })
                        .collect(),
                    explore_jobs: missing.len(),
                    cached_jobs: plan_spec.jobs.len() - missing.len(),
                    threads: self.threads,
                    // No composition ran in this process.
                    peak_live_threads: 0,
                    cache: CacheStats::delta(&stats_before, &stats_after),
                    stats: None,
                    elapsed: started.elapsed(),
                }
            }
            None => {
                let scenarios = plan_spec
                    .scenarios
                    .iter()
                    .map(|spec| spec.to_scenario())
                    .collect::<Result<Vec<_>, _>>()?;
                let mut matrix = self.run_matrix_with(scenarios, &plan_spec.options);
                // Operational bookkeeping: the executor phase explored
                // `published` behaviours, which the inner planner then found
                // warm — move them from its cached count to the explore
                // count. What the store held before the executor ran stays
                // "cached".
                matrix.explore_jobs += published;
                matrix.cached_jobs = matrix.cached_jobs.saturating_sub(published);
                matrix
            }
        };
        matrix.stats = executor.dispatch_stats();

        let outcome = match &plan_spec.diff {
            Some(meta) => VerifyOutcome::Diff(DiffReport {
                entries: meta.entries.clone(),
                removed_configs: meta.removed_configs.clone(),
                skipped_scenarios: meta.skipped_scenarios,
                matrix,
            }),
            None => VerifyOutcome::Matrix(matrix),
        };
        Ok(VerifyResponse {
            request: "exec-plan",
            outcome,
        })
    }

    /// The sharded Step-2 path of [`VerifyService::execute_plan`]: outline
    /// each scenario's suspect×prefix enumeration from the (warm) store,
    /// split it into about [`VerifyService::compose_shard`] contiguous
    /// [`ComposeShardJob`]s, dispatch them all as one pull-based batch (so
    /// the fleet load-balances across scenarios, not just within one), and
    /// fold each scenario's shard records back into its report by replaying
    /// the sequential enumeration — byte-identical to an unsharded run.
    ///
    /// Returns `Ok(None)` when sharding is off (`compose_shard == 0`) or
    /// the executor has no remote shard path; the caller then falls back to
    /// whole-composition jobs. Scenarios with no shardable enumeration (no
    /// suspects, or a Step-1 failure the composition must surface) verify
    /// in place.
    fn compose_sharded(
        &self,
        plan_spec: &PlanSpec,
        executor: &dyn Executor,
    ) -> Result<Option<Vec<Report>>, ServiceError> {
        if self.compose_shard == ComposeShardMode::Off {
            return Ok(None);
        }
        let fetch = |fp: crate::fingerprint::Fingerprint| self.store.get(fp);
        // Capability probe: an executor without a remote shard path answers
        // `None` even for an empty batch.
        if executor
            .compose_shard_jobs(&[], &plan_spec.options, &fetch)
            .is_none()
        {
            return Ok(None);
        }

        // Outline every scenario first; with `auto`, per-scenario shard
        // counts are then allocated out of one fleet-wide target, so a
        // cheap scenario does not get the same fan-out as the heavy one.
        let mut outlines = Vec::with_capacity(plan_spec.scenarios.len());
        let mut node_costs: Vec<Vec<u64>> = Vec::with_capacity(plan_spec.scenarios.len());
        for (spec, fps) in plan_spec
            .scenarios
            .iter()
            .zip(&plan_spec.element_fingerprints)
        {
            let scenario = spec.to_scenario()?;
            let outline = Verifier::with_options(plan_spec.options.clone()).outline_composition(
                &scenario.pipeline,
                &scenario.property,
                fps.iter().filter_map(|fp| self.store.get(*fp)),
            );
            // Calibrated cost of each node's block: the warm store's
            // observed per-unit solver time for the node's element (1 ns
            // per unit before any observation — uniform cuts).
            let costs = outline
                .as_ref()
                .map(|outline| {
                    outline
                        .nodes
                        .iter()
                        .map(|node| {
                            let per_unit = fps
                                .get(node.element)
                                .and_then(|fp| self.store.unit_cost_ns(*fp))
                                .unwrap_or(1);
                            per_unit.saturating_mul(node.weight as u64)
                        })
                        .collect()
                })
                .unwrap_or_default();
            node_costs.push(costs);
            outlines.push(outline);
        }

        // Resolve each scenario's target shard count.
        let targets: Vec<usize> = match self.compose_shard {
            ComposeShardMode::Off => unreachable!("handled above"),
            ComposeShardMode::Fixed(n) => outlines.iter().map(|_| n.max(1)).collect(),
            ComposeShardMode::Auto => {
                // One fleet-wide target — a few shards per live capacity
                // slot keeps the pull queue balanced, and stealing absorbs
                // whatever the calibration still mispredicts — allocated
                // to scenarios in proportion to their calibrated cost.
                let capacity = executor.live_capacity().unwrap_or(self.threads).max(1);
                let fleet_target = capacity * AUTO_SHARDS_PER_SLOT;
                let scenario_cost: Vec<u64> = node_costs
                    .iter()
                    .map(|costs| costs.iter().sum::<u64>())
                    .collect();
                let total_cost: u64 = scenario_cost.iter().sum();
                scenario_cost
                    .iter()
                    .map(|&cost| {
                        if total_cost == 0 {
                            return 1;
                        }
                        ((fleet_target as u64).saturating_mul(cost) / total_cost).max(1) as usize
                    })
                    .collect()
            }
        };

        let mut jobs: Vec<ComposeShardJob> = Vec::new();
        let mut shard_counts = Vec::with_capacity(plan_spec.scenarios.len());
        for (index, ((spec, fps), ((outline, costs), target))) in plan_spec
            .scenarios
            .iter()
            .zip(&plan_spec.element_fingerprints)
            .zip(outlines.iter().zip(&node_costs).zip(&targets))
            .enumerate()
        {
            let before = jobs.len();
            if let Some(outline) = outline {
                // The target is a goal, not a contract: the splitters pack
                // whole units, so the actual count can differ by one or two.
                let ranges = match self.compose_shard {
                    ComposeShardMode::Auto => outline.shards_by_cost(costs, *target),
                    _ => {
                        let width = outline.total_weight().div_ceil(*target).max(1);
                        outline.shards(width)
                    }
                };
                for (start, end) in ranges {
                    jobs.push(ComposeShardJob {
                        scenario: spec.clone(),
                        fingerprints: fps.clone(),
                        scenario_index: index as u32,
                        start,
                        end,
                    });
                }
            }
            shard_counts.push(jobs.len() - before);
        }
        if jobs.is_empty() {
            // Nothing shardable in the whole request: let the caller
            // dispatch whole compositions instead of idling the fleet.
            return Ok(None);
        }

        let results = match executor.compose_shard_jobs(&jobs, &plan_spec.options, &fetch) {
            Some(results) => results?,
            None => return Ok(None),
        };

        // Feed observed per-node solver times back into the warm store, so
        // the next request's `auto` cuts weigh nodes by real cost.
        for (result, job) in results.iter().zip(&jobs) {
            let index = job.scenario_index as usize;
            let (Some(outline), Some(fps)) = (
                outlines.get(index).and_then(Option::as_ref),
                plan_spec.element_fingerprints.get(index),
            ) else {
                continue;
            };
            for timing in &result.timings {
                if let Some(fp) = outline
                    .nodes
                    .get(timing.index)
                    .and_then(|node| fps.get(node.element))
                {
                    self.store
                        .record_unit_cost(*fp, timing.units as u64, timing.ns);
                }
            }
        }
        self.store.flush_calibration();

        // Shards were emitted scenario-by-scenario, so each scenario's
        // results are the next `shard_counts[i]` slots in order.
        let mut results = results.into_iter();
        let mut reports = Vec::with_capacity(plan_spec.scenarios.len());
        for ((spec, fps), (outline, count)) in plan_spec
            .scenarios
            .iter()
            .zip(&plan_spec.element_fingerprints)
            .zip(outlines.into_iter().zip(shard_counts))
        {
            let scenario = spec.to_scenario()?;
            let records = results
                .by_ref()
                .take(count)
                .flat_map(|result| result.records);
            let report = match outline {
                Some(outline) => Verifier::with_options(plan_spec.options.clone())
                    .fold_composition_shards(
                        &scenario.pipeline,
                        &scenario.property,
                        fps.iter().filter_map(|fp| self.store.get(*fp)),
                        &outline,
                        records,
                    ),
                // No shardable enumeration: verify in place, exactly as
                // the unsharded in-process path would.
                None => {
                    let mut verifier =
                        Verifier::with_options(self.composition_options(&plan_spec.options));
                    verifier.seed_summaries(fps.iter().filter_map(|fp| self.store.get(*fp)));
                    verifier.verify(&scenario.pipeline, &scenario.property)
                }
            };
            reports.push(report);
        }
        Ok(Some(reports))
    }
}

/// Deduplicating explore-job table shared by scenario and bound planning:
/// one [`ExploreJob`] per distinct element behaviour across everything
/// added.
struct JobTable<'a> {
    engine: &'a EngineConfig,
    jobs: Vec<ExploreJob>,
    job_of: BTreeMap<crate::fingerprint::Fingerprint, usize>,
}

impl<'a> JobTable<'a> {
    fn new(engine: &'a EngineConfig) -> Self {
        JobTable {
            engine,
            jobs: Vec::new(),
            job_of: BTreeMap::new(),
        }
    }

    /// Add every element of `pipeline`; returns its per-element summary
    /// fingerprints in pipeline order.
    fn add_pipeline(&mut self, pipeline: &Pipeline) -> Vec<crate::fingerprint::Fingerprint> {
        let JobTable {
            engine,
            jobs,
            job_of,
        } = self;
        let mut fps = Vec::with_capacity(pipeline.len());
        for (_, node) in pipeline.iter() {
            let element = node.element.as_ref();
            let fp = crate::fingerprint::element_fingerprint(element, engine);
            fps.push(fp);
            job_of.entry(fp).or_insert_with(|| {
                jobs.push(ExploreJob {
                    fingerprint: fp,
                    type_name: element.type_name().to_string(),
                    // Elements of a parsed config always render back.
                    config_args: element
                        .config_args()
                        .expect("factory-built elements have config args"),
                });
                jobs.len() - 1
            });
        }
        fps
    }
}

/// The diff decision: which scenarios to re-verify and the per-config
/// bookkeeping, shared by serving and planning.
fn diff_scenarios(
    old: &[NamedConfig],
    new: &[NamedConfig],
    properties: &dyn Fn(&str) -> Vec<Property>,
) -> Result<(Vec<Scenario>, DiffMeta), ConfigError> {
    let mut old_pipelines: BTreeMap<&str, Pipeline> = BTreeMap::new();
    for config in old {
        old_pipelines.insert(&config.name, parse_config(&config.config)?);
    }

    let mut entries = Vec::with_capacity(new.len());
    let mut scenarios = Vec::new();
    let mut skipped_scenarios = 0usize;
    for config in new {
        let new_pipeline = parse_config(&config.config)?;
        let scenario_properties = properties(&config.name);
        let (kind, changed_elements) = match old_pipelines.get(config.name.as_str()) {
            None => (DiffKind::Added, Vec::new()),
            Some(old_pipeline) => {
                let diff = diff_pipelines(old_pipeline, &new_pipeline);
                if diff.is_identical() {
                    (DiffKind::Identical, Vec::new())
                } else if diff.is_wiring_only() {
                    (DiffKind::WiringOnly, Vec::new())
                } else {
                    let mut changed = diff.changed;
                    changed.extend(diff.added);
                    changed.extend(diff.removed);
                    changed.sort();
                    (DiffKind::ElementsChanged, changed)
                }
            }
        };
        let before = scenarios.len();
        if kind == DiffKind::Identical {
            skipped_scenarios += scenario_properties.len();
        } else {
            for property in scenario_properties {
                // Each scenario owns its pipeline instance.
                scenarios.push(Scenario::new(
                    config.name.clone(),
                    parse_config(&config.config)?,
                    property,
                ));
            }
        }
        let scenarios_planned = scenarios.len() - before;
        entries.push(DiffEntry {
            name: config.name.clone(),
            kind,
            changed_elements,
            scenarios_planned,
        });
    }
    let removed_configs = old
        .iter()
        .map(|c| c.name.clone())
        .filter(|name| !new.iter().any(|c| &c.name == name))
        .collect();
    Ok((
        scenarios,
        DiffMeta {
            entries,
            removed_configs,
            skipped_scenarios,
        },
    ))
}

//! Integration tests of the networked execution path: socket workers
//! served by real in-process listener threads, the pull-based dispatch
//! queue, worker-fault recovery (drain-and-requeue), and the hello
//! version gate.
//!
//! The acceptance bar everywhere is byte-identity: whatever transport ran
//! the jobs — and whatever died along the way — the deterministic report
//! must equal the in-process one.

use dataplane_orchestrator::exec::transport::{read_frame, write_frame};
use dataplane_orchestrator::json::Json;
use dataplane_orchestrator::{
    serve_listener, HeartbeatConfig, NamedConfig, PropertySelect, VerifyRequest, VerifyService,
    WorkerAddr, WorkerFleet,
};
use std::io::BufReader;
use std::net::TcpListener;
use std::sync::mpsc;

const ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

/// Start a real worker on a loopback TCP listener (port chosen by the
/// OS), serving `sessions` coordinator sessions on a background thread.
/// Returns its address.
fn spawn_tcp_worker(sessions: usize) -> WorkerAddr {
    assert_eq!(sessions, 1, "multi-session tests use the persistent worker");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut tx = Some(tx);
        let mut log = move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.take() {
                    tx.send(addr.to_string()).unwrap();
                }
            }
        };
        let _ = serve_listener(&WorkerAddr::Tcp("127.0.0.1:0".into()), 2, true, &mut log);
    });
    WorkerAddr::Tcp(rx.recv().expect("worker announced its address"))
}

/// Start a worker that keeps accepting sessions on one listener until the
/// test process exits.
fn spawn_persistent_tcp_worker() -> WorkerAddr {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut tx = Some(tx);
        let mut log = move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.take() {
                    tx.send(addr.to_string()).unwrap();
                }
            }
        };
        let _ = serve_listener(&WorkerAddr::Tcp("127.0.0.1:0".into()), 2, false, &mut log);
    });
    WorkerAddr::Tcp(rx.recv().expect("worker announced its address"))
}

/// A worker that completes the handshake, reads one job frame, then drops
/// the connection — the "killed mid-plan" peer. Accepts any number of
/// sessions (the explore phase and the compose phase each reconnect) and
/// dies the same way in each.
fn spawn_flaky_tcp_worker() -> WorkerAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = WorkerAddr::Tcp(listener.local_addr().unwrap().to_string());
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            // Handshake like a healthy worker would.
            let Ok(Some(hello)) = read_frame(&mut reader) else {
                continue;
            };
            assert_eq!(hello.get("kind").and_then(Json::as_str), Some("hello"));
            let reply = Json::obj([
                (
                    "schema",
                    Json::int(dataplane_orchestrator::exec::WORKER_SCHEMA),
                ),
                ("kind", Json::str("hello")),
                ("proto", Json::str("vericlick-worker")),
                ("capacity", Json::int(1u64)),
            ]);
            if write_frame(&mut writer, &reply).is_err() {
                continue;
            }
            // Accept one job, answer nothing, die.
            let _ = read_frame(&mut reader);
            drop(writer);
        }
    });
    addr
}

/// A worker that completes the handshake and then wedges: the connection
/// stays open, but no job result (and no pong) ever comes back — the
/// SIGSTOP / silent-partition failure mode a plain disconnect test cannot
/// reproduce. Accepts any number of sessions and wedges in each.
fn spawn_wedged_tcp_worker() -> WorkerAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = WorkerAddr::Tcp(listener.local_addr().unwrap().to_string());
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let Ok(Some(hello)) = read_frame(&mut reader) else {
                    return;
                };
                assert_eq!(hello.get("kind").and_then(Json::as_str), Some("hello"));
                let reply = Json::obj([
                    (
                        "schema",
                        Json::int(dataplane_orchestrator::exec::WORKER_SCHEMA),
                    ),
                    ("kind", Json::str("hello")),
                    ("proto", Json::str("vericlick-worker")),
                    ("capacity", Json::int(1u64)),
                    ("held", Json::Arr(Vec::new())),
                ]);
                if write_frame(&mut writer, &reply).is_err() {
                    return;
                }
                // Wedge: keep both stream halves open, answer nothing.
                std::thread::sleep(std::time::Duration::from_secs(30));
            });
        }
    });
    addr
}

fn two_config_request() -> VerifyRequest {
    VerifyRequest::Matrix {
        scenarios: dataplane_orchestrator::config_scenarios(
            &[
                NamedConfig::new("router", ROUTER),
                NamedConfig::new("filter", FILTER),
            ],
            &|name| PropertySelect::Default.properties_for(name),
        )
        .unwrap(),
    }
}

#[test]
fn tcp_fleet_executes_explores_and_compositions_byte_identical() {
    // Reference: serve in-process.
    let service = VerifyService::new().with_threads(2);
    let served = service.serve(two_config_request()).unwrap();
    let reference = served.deterministic_json().to_text();

    // Remote: two real TCP workers, plan executed by a fresh service with
    // a cold store — every exploration AND every composition goes over
    // the wire.
    let fleet = WorkerFleet::sockets(vec![
        spawn_persistent_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&two_config_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "TCP-executed plan must reproduce the in-process report byte for byte"
    );

    let matrix = executed.matrix().unwrap();
    assert_eq!(
        matrix.peak_live_threads, 0,
        "no composition may run in the coordinating process"
    );
    let stats = matrix.stats.as_ref().expect("fleet runs report stats");
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.workers_lost, 0);
    assert_eq!(stats.explore_jobs, plan.jobs.len());
    assert_eq!(stats.compose_jobs, plan.scenarios.len());
    assert_eq!(
        stats.jobs_completed,
        plan.jobs.len() + plan.scenarios.len(),
        "every job completed exactly once"
    );
    assert_eq!(stats.jobs_requeued, 0);
}

#[test]
fn unix_socket_worker_round_trips() {
    let dir = std::env::temp_dir().join(format!("vericlick-unix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("worker.sock");
    let addr = WorkerAddr::Unix(path.clone());
    {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let _ = serve_listener(&addr, 2, false, &mut |_| {});
        });
    }
    // Wait for the socket file to appear.
    for _ in 0..100 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&two_config_request()).unwrap();
    let executed = fresh
        .execute_plan(&plan, &WorkerFleet::sockets(vec![addr]))
        .unwrap();
    assert_eq!(executed.deterministic_json().to_text(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_worker_jobs_are_requeued_and_report_stays_byte_identical() {
    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    // One healthy worker, one that dies after pulling a job in every
    // session: the healthy one must drain the requeued work.
    let fleet = WorkerFleet::sockets(vec![
        spawn_flaky_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&two_config_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "a worker death mid-plan must not change the report"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert_eq!(stats.workers_lost, 1, "the flaky worker was noticed");
    assert!(
        stats.jobs_requeued >= 1,
        "its in-flight jobs were requeued: {stats:?}"
    );
    assert_eq!(
        stats.jobs_completed,
        plan.jobs.len() + plan.scenarios.len(),
        "every job still completed exactly once"
    );
}

#[test]
fn wedged_worker_is_marked_suspect_and_its_jobs_requeue_to_survivors() {
    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    // One worker that handshakes and then goes silent without closing its
    // connection, one healthy worker. Without read deadlines the dispatch
    // would block on the silent socket forever; with the heartbeat it
    // must mark the wedge suspect and requeue to the survivor.
    let fleet = WorkerFleet::sockets(vec![
        spawn_wedged_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ])
    .with_heartbeat(HeartbeatConfig::from_interval_ms(100));
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&two_config_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "a wedged worker must not change the report"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert!(
        stats.workers_suspect >= 1,
        "the silent worker was marked suspect: {stats:?}"
    );
    assert!(
        stats.jobs_requeued >= 1,
        "its in-flight jobs were requeued: {stats:?}"
    );
    assert_eq!(
        stats.jobs_completed,
        plan.jobs.len() + plan.scenarios.len(),
        "every job still completed exactly once"
    );
    // The registry notes name the heartbeat, not a generic disconnect.
    assert!(
        fleet
            .registry()
            .workers()
            .iter()
            .any(|e| e.note.as_deref().is_some_and(|n| n.contains("suspect"))),
        "the worker entry records why it was abandoned"
    );
}

/// The linear_router preset rows: every property has a non-empty suspect
/// set (outline weights 31/31/37), so compose sharding actually produces
/// wire shards — the ROUTER/FILTER configs above are suspect-free and
/// would verify in place.
fn linear_router_request() -> VerifyRequest {
    VerifyRequest::Matrix {
        scenarios: dataplane_orchestrator::preset_scenarios()
            .into_iter()
            .filter(|s| s.pipeline_name == "linear_router")
            .collect(),
    }
}

/// The temporal preset rows: one bundled LTL spec per preset pipeline,
/// shipped over the wire as `JobSpec::Temporal` frames (temporal
/// properties tag no suspects, so they never shard — each travels as one
/// whole-scenario job even under `--compose-shard`).
fn temporal_request() -> VerifyRequest {
    VerifyRequest::Matrix {
        scenarios: dataplane_orchestrator::preset_scenarios()
            .into_iter()
            .filter(|s| matches!(s.property, dataplane_verifier::Property::Temporal(_)))
            .collect(),
    }
}

#[test]
fn temporal_jobs_over_tcp_are_byte_identical_even_when_a_worker_dies() {
    let service = VerifyService::new().with_threads(2);
    let served = service.serve(temporal_request()).unwrap();
    let reference = served.deterministic_json().to_text();
    assert!(
        reference.contains("\"buchi_states\""),
        "temporal scenarios report automaton sizes"
    );

    // Two healthy TCP workers: every Büchi product search runs remote.
    let fleet = WorkerFleet::sockets(vec![
        spawn_persistent_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&temporal_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "TCP-executed temporal plan must reproduce the in-process report byte for byte"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert_eq!(
        stats.temporal_jobs,
        plan.scenarios.len(),
        "every scenario travelled as a temporal wire job: {stats:?}"
    );
    assert_eq!(stats.workers_lost, 0);

    // Same plan with one worker that dies after pulling a job in every
    // session: requeue to the survivor must not change a byte.
    let fleet = WorkerFleet::sockets(vec![
        spawn_flaky_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&temporal_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "a worker death mid-plan must not change the temporal report"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert_eq!(stats.workers_lost, 1, "the flaky worker was noticed");
    assert!(
        stats.jobs_requeued >= 1,
        "its in-flight jobs were requeued: {stats:?}"
    );
}

#[test]
fn sharded_compose_over_tcp_is_byte_identical() {
    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(linear_router_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    // Same request, but Step-2 split into about 4 shards per scenario and
    // dispatched across two real TCP workers.
    let fleet = WorkerFleet::sockets(vec![
        spawn_persistent_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2).with_compose_shard(4);
    let plan = fresh.plan_request(&linear_router_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "sharded TCP execution must reproduce the in-process report byte for byte"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert!(
        stats.compose_shards > 0,
        "shards were offered to the queue: {stats:?}"
    );
    assert_eq!(
        stats.compose_jobs, 0,
        "the shard path replaces whole-composition jobs: {stats:?}"
    );
    assert_eq!(stats.workers_lost, 0);
}

#[test]
fn killed_worker_mid_shard_requeues_and_report_stays_byte_identical() {
    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(linear_router_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    // One worker that dies after pulling its first job in every session,
    // one healthy worker: shards the flaky peer pulled must requeue to
    // the survivor without changing the report.
    let fleet = WorkerFleet::sockets(vec![
        spawn_flaky_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2).with_compose_shard(4);
    let plan = fresh.plan_request(&linear_router_request()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "a worker death mid-shard must not change the report"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert!(
        stats.compose_shards > 0,
        "shards were offered to the queue: {stats:?}"
    );
    assert_eq!(stats.workers_lost, 1, "the flaky worker was noticed");
    assert!(
        stats.jobs_requeued >= 1,
        "its in-flight work was requeued: {stats:?}"
    );
}

#[test]
fn violation_cancels_sibling_shards_without_changing_the_report() {
    // The three buggy presets all violate their property, so every
    // scenario's first violating shard fires the cancellation path for
    // its siblings — whether a cancel frame lands in time or a queued
    // sibling resolves synthetically, the fold computes the remainder
    // inline and the report must not move.
    let buggy = || VerifyRequest::Matrix {
        scenarios: dataplane_orchestrator::preset_scenarios()
            .into_iter()
            .filter(|s| s.pipeline_name == "buggy")
            .collect(),
    };
    let reference = VerifyService::new()
        .with_threads(2)
        .serve(buggy())
        .unwrap()
        .deterministic_json()
        .to_text();

    let fleet = WorkerFleet::sockets(vec![
        spawn_persistent_tcp_worker(),
        spawn_persistent_tcp_worker(),
    ]);
    let fresh = VerifyService::new().with_threads(2).with_compose_shard(8);
    let plan = fresh.plan_request(&buggy()).unwrap();
    let executed = fresh.execute_plan(&plan, &fleet).unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "early-exit cancellation must be pure work-avoidance"
    );
    let stats = executed.matrix().unwrap().stats.clone().unwrap();
    assert!(
        stats.compose_shards > 0,
        "shards were offered to the queue: {stats:?}"
    );
    // Whether any sibling was actually cancelled is a race (a fast fleet
    // may finish every shard first); the counter just must not exceed
    // what was offered.
    assert!(
        stats.shards_cancelled <= stats.compose_shards,
        "cancellation accounting stays within the offered shards: {stats:?}"
    );
}

#[test]
fn second_plan_against_a_warm_worker_ships_zero_summaries() {
    // Warm the coordinator's store in-process so the explore phase has
    // nothing to dispatch and *every* summary must travel in compose
    // frames (a fresh socket worker holds none of them).
    let service = VerifyService::new().with_threads(2);
    let reference = service
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();
    let addr = spawn_persistent_tcp_worker();
    let plan = service.plan_request(&two_config_request()).unwrap();

    let cold = WorkerFleet::sockets(vec![addr.clone()]);
    let first = service.execute_plan(&plan, &cold).unwrap();
    assert_eq!(first.deterministic_json().to_text(), reference);
    let stats = cold.registry().stats();
    assert!(
        stats.summaries_shipped > 0 && stats.summary_bytes_shipped > 0,
        "a cold worker receives full summary documents: {stats:?}"
    );
    // Later compose jobs in the *same* session already dedup against
    // what the first frames shipped — only the first touch travels.

    // Second plan, fresh fleet, same worker process: its hello advertises
    // everything it folded in the first session, so no summary document
    // is re-shipped — only `held` markers travel.
    let warm = WorkerFleet::sockets(vec![addr]);
    let second = service.execute_plan(&plan, &warm).unwrap();
    assert_eq!(
        second.deterministic_json().to_text(),
        reference,
        "dedup must not change the report"
    );
    let stats = warm.registry().stats();
    assert_eq!(
        stats.summaries_shipped, 0,
        "the warm worker already holds every summary: {stats:?}"
    );
    assert!(
        stats.summaries_deduped > 0 && stats.summary_bytes_deduped > 0,
        "the dedup win is visible in the stats: {stats:?}"
    );
}

#[test]
fn version_mismatch_worker_is_rejected_cleanly() {
    // A "worker" that replies to the hello with a wrong schema version.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = WorkerAddr::Tcp(listener.local_addr().unwrap().to_string());
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let _ = read_frame(&mut reader);
            let reply = Json::obj([
                ("schema", Json::int(1u64)),
                ("kind", Json::str("hello")),
                ("proto", Json::str("vericlick-worker")),
                ("capacity", Json::int(1u64)),
            ]);
            let _ = write_frame(&mut writer, &reply);
        }
    });

    let fleet = WorkerFleet::sockets(vec![addr]);
    let service = VerifyService::new().with_threads(2);
    let plan = service.plan_request(&two_config_request()).unwrap();
    let result = service.execute_plan(&plan, &fleet);
    let err = result.err().expect("mismatched fleet cannot execute");
    let text = err.to_string();
    assert!(
        text.contains("version mismatch") || text.contains("unfinished"),
        "the error names the cause: {text}"
    );
    let stats = fleet.registry().stats();
    assert_eq!(stats.workers_lost, 1);
    assert_eq!(stats.jobs_completed, 0);
}

#[test]
fn single_session_listener_exits_after_once() {
    // `--once` semantics: the listener serves one session and returns.
    let addr = spawn_tcp_worker(1);
    let service = VerifyService::new().with_threads(1);
    let plan = service
        .plan_request(&VerifyRequest::Matrix {
            scenarios: dataplane_orchestrator::config_scenarios(
                &[NamedConfig::new("filter", FILTER)],
                &|name| PropertySelect::Default.properties_for(name),
            )
            .unwrap(),
        })
        .unwrap();
    // One session is enough only for the explore phase; compose reconnects
    // and must fail — which proves the session actually closed.
    let fleet = WorkerFleet::sockets(vec![addr]);
    let result = service.execute_plan(&plan, &fleet);
    assert!(
        result.is_err(),
        "the once-listener is gone for the compose phase"
    );
}

//! Integration tests of incremental re-verification (`vericlick diff`):
//! a one-element edit re-plans only the affected scenarios and re-explores
//! only the edited behaviour; wiring-only diffs get a composition-only pass
//! (zero element jobs); identical configs are skipped outright.
//!
//! Runs through the deprecated [`Orchestrator`] shim on purpose — the
//! deprecation contract is that its existing tests keep passing.
#![allow(deprecated)]

use dataplane_orchestrator::diff::{config_scenarios, default_properties, DiffKind, NamedConfig};
use dataplane_orchestrator::Orchestrator;
use dataplane_verifier::Verdict;

const ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

const MINI: &str = r#"
    cnt :: Counter();
    ttl :: DecTTL();
    s0 :: Sink();
    s1 :: Sink();
    cnt -> ttl -> s0;
"#;

fn old_configs() -> Vec<NamedConfig> {
    vec![
        NamedConfig::new("router", ROUTER),
        NamedConfig::new("filter", FILTER),
        NamedConfig::new("mini", MINI),
    ]
}

#[test]
fn one_element_edit_replans_only_affected_scenarios() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let baseline = orchestrator.run(config_scenarios(&old_configs(), &default_properties).unwrap());
    let (_, _, unknown) = baseline.verdict_counts();
    assert_eq!(unknown, 0, "baseline must decide");

    // Edit one element (a route's prefix length) in one config.
    let new = vec![
        NamedConfig::new(
            "router",
            ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1"),
        ),
        NamedConfig::new("filter", FILTER),
        NamedConfig::new("mini", MINI),
    ];
    let report = orchestrator
        .verify_diff(&old_configs(), &new, &default_properties)
        .unwrap();

    let kind = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no entry for {name}"))
    };
    assert_eq!(kind("router").kind, DiffKind::ElementsChanged);
    assert_eq!(kind("router").changed_elements, vec!["rt".to_string()]);
    assert_eq!(kind("router").scenarios_planned, 2);
    assert_eq!(kind("filter").kind, DiffKind::Identical);
    assert_eq!(kind("mini").kind, DiffKind::Identical);

    // Only the affected config's scenarios are re-verified, and only the
    // edited element behaviour is re-explored.
    assert_eq!(report.reverified_scenarios(), 2);
    assert_eq!(report.skipped_scenarios, 4);
    assert_eq!(
        report.matrix.explore_jobs, 1,
        "exactly the edited element must be re-explored"
    );
    for scenario in &report.matrix.scenarios {
        assert_eq!(scenario.pipeline_name, "router");
        assert_eq!(
            scenario.report.verdict,
            Verdict::Proven,
            "{}",
            scenario.label()
        );
    }
}

#[test]
fn wiring_only_diff_is_composition_only() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let old = vec![NamedConfig::new("mini", MINI)];
    orchestrator.run(config_scenarios(&old, &default_properties).unwrap());

    let new = vec![NamedConfig::new(
        "mini",
        MINI.replace("cnt -> ttl -> s0;", "cnt -> ttl -> s1;"),
    )];
    let report = orchestrator
        .verify_diff(&old, &new, &default_properties)
        .unwrap();
    assert_eq!(report.entries[0].kind, DiffKind::WiringOnly);
    assert_eq!(report.reverified_scenarios(), 2);
    assert_eq!(
        report.matrix.explore_jobs, 0,
        "a wiring-only diff must plan zero explore jobs"
    );
    assert!(
        report.matrix.cached_jobs > 0,
        "summaries came from the store"
    );
    let (proven, _, unknown) = report.matrix.verdict_counts();
    assert_eq!((proven, unknown), (2, 0));
}

#[test]
fn identical_configs_verify_nothing() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let old = vec![NamedConfig::new("mini", MINI)];
    let report = orchestrator
        .verify_diff(&old, &old.clone(), &default_properties)
        .unwrap();
    assert_eq!(report.entries[0].kind, DiffKind::Identical);
    assert_eq!(report.reverified_scenarios(), 0);
    assert_eq!(report.skipped_scenarios, 2);
    assert_eq!(report.matrix.explore_jobs, 0);
}

#[test]
fn added_and_removed_configs_are_reported() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let old = vec![NamedConfig::new("mini", MINI)];
    let new = vec![
        NamedConfig::new("mini", MINI),
        NamedConfig::new("filter", FILTER),
    ];
    let report = orchestrator
        .verify_diff(&old, &new, &default_properties)
        .unwrap();
    assert_eq!(
        report
            .entries
            .iter()
            .find(|e| e.name == "filter")
            .unwrap()
            .kind,
        DiffKind::Added
    );
    assert_eq!(
        report.reverified_scenarios(),
        2,
        "the added config verifies"
    );

    let shrunk = orchestrator
        .verify_diff(&new, &old, &default_properties)
        .unwrap();
    assert_eq!(shrunk.removed_configs, vec!["filter".to_string()]);
    assert_eq!(shrunk.reverified_scenarios(), 0);
}

#[test]
fn diff_verdicts_match_verifying_the_new_configs_from_scratch() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let old = old_configs();
    orchestrator.run(config_scenarios(&old, &default_properties).unwrap());
    let new = vec![
        NamedConfig::new("router", ROUTER.replace("10.0.0.0/8 0", "10.0.0.0/8 1")),
        NamedConfig::new("filter", FILTER),
        NamedConfig::new("mini", MINI),
    ];
    let incremental = orchestrator
        .verify_diff(&old, &new, &default_properties)
        .unwrap();

    let fresh = Orchestrator::new()
        .with_threads(2)
        .run(config_scenarios(&new, &default_properties).unwrap());
    for scenario in &incremental.matrix.scenarios {
        let from_scratch = fresh
            .scenarios
            .iter()
            .find(|s| s.label() == scenario.label())
            .expect("scenario exists in the from-scratch run");
        assert_eq!(
            scenario.report.verdict,
            from_scratch.report.verdict,
            "{}: incremental and from-scratch verdicts diverge",
            scenario.label()
        );
    }
}

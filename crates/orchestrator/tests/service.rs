//! Integration tests of the `VerifyService` front door and the
//! plan/execute split:
//!
//! * a `PlanSpec` serialised to JSON and executed by a *different* service
//!   instance (fresh store, fresh scheduler) produces a deterministic
//!   report byte-identical to serving the original request — across all 20
//!   preset scenarios and for diff plans,
//! * requests round-trip through their JSON form,
//! * watch requests establish a rolling baseline and then re-verify only
//!   what changed.

use dataplane_orchestrator::json::Json;
use dataplane_orchestrator::wire::{plan_from_json, plan_to_json};
use dataplane_orchestrator::{
    preset_scenarios, InProcessExecutor, NamedConfig, PropertySelect, VerifyOutcome, VerifyRequest,
    VerifyService,
};

const ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

#[test]
fn plan_round_trips_and_executes_byte_identical_for_all_presets() {
    // Serve the preset matrix in-process: the reference result.
    let service = VerifyService::new().with_threads(4);
    let served = service
        .serve(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .unwrap();
    let reference = served.deterministic_json().to_text();
    let (proven, violated, unknown) = served.verdict_counts();
    assert_eq!(
        (proven, violated, unknown),
        (15, 5, 0),
        "preset verdict mix drifted"
    );

    // Plan the same request, push the plan through its JSON wire form, and
    // execute it on a *fresh* service (empty store — every element summary
    // must come through the executor).
    let plan = service
        .plan_request(&VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .unwrap();
    assert!(plan.jobs.len() >= 10, "plan lost jobs: {}", plan.jobs.len());
    assert_eq!(plan.scenarios.len(), 20);
    let text = plan_to_json(&plan).to_text();
    let decoded = plan_from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(decoded.jobs.len(), plan.jobs.len());
    assert_eq!(decoded.scenario_jobs, plan.scenario_jobs);
    assert_eq!(decoded.element_fingerprints, plan.element_fingerprints);
    // Re-encoding the decoded plan is byte-stable.
    assert_eq!(plan_to_json(&decoded).to_text(), text);

    let fresh = VerifyService::new().with_threads(4);
    let executed = fresh
        .execute_plan(&decoded, &InProcessExecutor::new(4))
        .unwrap();
    let matrix = executed.matrix().unwrap();
    assert_eq!(
        matrix.explore_jobs,
        plan.jobs.len(),
        "a cold executing service must run every job"
    );
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "executed plan must reproduce the served matrix byte for byte"
    );

    // Executing the same plan again on the now-warm service runs zero
    // explore jobs and still reproduces the report.
    let warm = fresh
        .execute_plan(&decoded, &InProcessExecutor::new(4))
        .unwrap();
    assert_eq!(warm.matrix().unwrap().explore_jobs, 0);
    assert_eq!(warm.deterministic_json().to_text(), reference);
}

#[test]
fn diff_plans_round_trip_and_execute_byte_identical() {
    let old = vec![
        NamedConfig::new("router", ROUTER),
        NamedConfig::new("filter", FILTER),
    ];
    let new = vec![
        NamedConfig::new(
            "router",
            ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1"),
        ),
        NamedConfig::new("filter", FILTER),
    ];
    let request = || VerifyRequest::Diff {
        old: old.clone(),
        new: new.clone(),
        properties: PropertySelect::Default,
    };

    let service = VerifyService::new().with_threads(2);
    let served = service.serve(request()).unwrap();
    let reference = served.deterministic_json().to_text();
    let VerifyOutcome::Diff(report) = &served.outcome else {
        panic!("diff request must produce a diff outcome");
    };
    assert_eq!(report.skipped_scenarios, 2, "identical filter not skipped");
    assert_eq!(report.reverified_scenarios(), 2);

    // Round-trip the plan and execute on a fresh service.
    let plan = service.plan_request(&request()).unwrap();
    assert!(plan.diff.is_some(), "diff plans carry their diff metadata");
    let text = plan_to_json(&plan).to_text();
    let decoded = plan_from_json(&Json::parse(&text).unwrap()).unwrap();
    let fresh = VerifyService::new().with_threads(2);
    let executed = fresh
        .execute_plan(&decoded, &InProcessExecutor::new(2))
        .unwrap();
    assert!(matches!(executed.outcome, VerifyOutcome::Diff(_)));
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "executed diff plan must reproduce the served diff byte for byte"
    );
}

#[test]
fn requests_round_trip_through_json() {
    // A matrix request over presets survives its wire form and serves to
    // the same deterministic result.
    let request = VerifyRequest::Matrix {
        scenarios: preset_scenarios(),
    };
    let text = request.to_json().unwrap().to_text();
    let decoded = VerifyRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
    let VerifyRequest::Matrix { scenarios } = &decoded else {
        panic!("kind drifted");
    };
    assert_eq!(scenarios.len(), 20);
    // Re-encoding is byte-stable (configs and properties are canonical).
    assert_eq!(decoded.to_json().unwrap().to_text(), text);

    // Diff and watch shapes round-trip too.
    for request in [
        VerifyRequest::Diff {
            old: vec![NamedConfig::new("router", ROUTER)],
            new: vec![NamedConfig::new("router", ROUTER)],
            properties: PropertySelect::Preset,
        },
        VerifyRequest::Watch {
            configs: vec![NamedConfig::new("filter", FILTER)],
            properties: PropertySelect::Default,
        },
    ] {
        let text = request.to_json().unwrap().to_text();
        let decoded = VerifyRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(decoded.kind(), request.kind());
        assert_eq!(decoded.to_json().unwrap().to_text(), text);
    }
}

#[test]
fn watch_rolls_the_baseline_and_reverifies_only_changes() {
    let service = VerifyService::new().with_threads(2);
    let watch = |config: &str| VerifyRequest::Watch {
        configs: vec![
            NamedConfig::new("router", config.to_string()),
            NamedConfig::new("filter", FILTER),
        ],
        properties: PropertySelect::Default,
    };

    // First watch call: no baseline yet — everything is verified.
    let first = service.serve(watch(ROUTER)).unwrap();
    let VerifyOutcome::Matrix(matrix) = &first.outcome else {
        panic!("first watch call must verify everything");
    };
    assert_eq!(matrix.scenarios.len(), 4);
    assert!(matrix.explore_jobs > 0);

    // Second call with identical configs: a diff that skips everything.
    let second = service.serve(watch(ROUTER)).unwrap();
    let VerifyOutcome::Diff(diff) = &second.outcome else {
        panic!("follow-up watch calls must diff");
    };
    assert_eq!(diff.reverified_scenarios(), 0);
    assert_eq!(diff.skipped_scenarios, 4);

    // Third call with one element edited: only that config re-verifies,
    // and only the edited behaviour is re-explored.
    let edited = ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1");
    let third = service.serve(watch(&edited)).unwrap();
    let VerifyOutcome::Diff(diff) = &third.outcome else {
        panic!("watch after an edit must diff");
    };
    assert_eq!(diff.reverified_scenarios(), 2);
    assert_eq!(diff.skipped_scenarios, 2);
    assert_eq!(
        diff.matrix.explore_jobs, 1,
        "only the edited IPLookup behaviour re-explores"
    );

    // Fourth call reverting the edit: the baseline rolled forward, so the
    // revert is again a change against the *third* call's configs.
    let fourth = service.serve(watch(ROUTER)).unwrap();
    let VerifyOutcome::Diff(diff) = &fourth.outcome else {
        panic!("watch must keep diffing");
    };
    assert_eq!(
        diff.reverified_scenarios(),
        2,
        "the baseline must have rolled forward"
    );
    assert_eq!(
        diff.matrix.explore_jobs, 0,
        "the original behaviour is still in the store — composition-only"
    );
}

#[test]
fn watch_does_not_roll_the_baseline_on_failed_ticks() {
    let service = VerifyService::new().with_threads(2);
    let watch = |cfg: &str| VerifyRequest::Watch {
        configs: vec![NamedConfig::new("mini", cfg.to_string())],
        properties: PropertySelect::Default,
    };
    const MINI: &str = "cnt :: Counter();\ns :: Sink();\ncnt -> s;";
    const EDITED: &str = "cnt :: Counter();\nttl :: DecTTL();\ns :: Sink();\ncnt -> ttl -> s;";

    // Establish the baseline, then submit a tick that cannot parse: the
    // tick errors and must NOT become the baseline.
    service.serve(watch(MINI)).unwrap();
    assert!(service.serve(watch("not a config")).is_err());

    // The next (fixed, edited) tick diffs against the last *good* baseline,
    // so the edit is actually verified — not skipped as `Identical` against
    // a baseline that never verified.
    let response = service.serve(watch(EDITED)).unwrap();
    let VerifyOutcome::Diff(diff) = &response.outcome else {
        panic!("watch after an error must still diff");
    };
    assert_eq!(
        diff.reverified_scenarios(),
        2,
        "the edit since the last good baseline must be verified"
    );
}

#[test]
fn bound_requests_ride_the_plan_execute_split() {
    use dataplane_pipeline::presets::ip_router_pipeline;
    let request = || VerifyRequest::Bound {
        name: "router".into(),
        pipeline: ip_router_pipeline(),
    };

    // Serve directly: the analysis itself.
    let service = VerifyService::new().with_threads(2);
    let served = service.serve(request()).unwrap();
    assert_eq!(served.request, "bound");
    let reference = served.deterministic_json().to_text();
    let VerifyOutcome::Bound(bound) = &served.outcome else {
        panic!("bound requests produce bound outcomes");
    };
    assert!(bound.report.max_instructions > 0, "{}", bound.report);
    assert!(bound.report.feasible_paths > 0);
    assert!(reference.contains("\"kind\":\"bound\""));

    // The request round-trips through its wire form.
    let text = request().to_json().unwrap().to_text();
    let decoded = VerifyRequest::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(decoded.kind(), "bound");
    assert_eq!(decoded.to_json().unwrap().to_text(), text);

    // Plan → JSON → execute on a fresh service (cold store: every element
    // exploration goes through the executor) reproduces the analysis byte
    // for byte — the bound analysis rides the plan/execute split.
    let plan = service.plan_request(&request()).unwrap();
    assert!(
        plan.bound.is_some(),
        "bound plans carry their analysis spec"
    );
    assert!(plan.scenarios.is_empty());
    assert!(!plan.jobs.is_empty(), "the pipeline's explores are planned");
    let text = plan_to_json(&plan).to_text();
    let decoded = plan_from_json(&Json::parse(&text).unwrap()).unwrap();
    let fresh = VerifyService::new().with_threads(2);
    let executed = fresh
        .execute_plan(&decoded, &InProcessExecutor::new(2))
        .unwrap();
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "executed bound plan must reproduce the served analysis byte for byte"
    );
}

#[test]
fn single_requests_return_single_outcomes() {
    use dataplane_pipeline::presets::ip_router_pipeline;
    use dataplane_verifier::Property;

    let service = VerifyService::new().with_threads(2);
    let response = service
        .serve(VerifyRequest::Single {
            name: "router".into(),
            pipeline: ip_router_pipeline(),
            property: Property::CrashFreedom,
        })
        .unwrap();
    assert_eq!(response.request, "single");
    let report = response.report().expect("single outcome");
    assert!(report.is_proven(), "{report}");
    assert_eq!(response.verdict_counts(), (1, 0, 0));
    assert!(response.matrix().is_none());
    // The JSON forms carry the schema version.
    let json = response.to_json();
    assert_eq!(json.get("schema").and_then(Json::as_u64), Some(1));
    assert_eq!(
        response
            .deterministic_json()
            .get("report")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str),
        Some("proven")
    );
}

//! Integration tests of the parallel verification orchestrator:
//!
//! * the parallel path produces verdicts **byte-identical** to the
//!   sequential `dataplane-verifier` on every preset scenario,
//! * the content-addressed cache is stable (property tests over the hash
//!   and the JSON codec) and round-trips summaries through the persistent
//!   tier,
//! * a warm-cache rerun skips every unchanged element job (hit counts
//!   asserted).
//!
//! These tests deliberately run through the deprecated [`Orchestrator`]
//! shim: the deprecation contract is that it keeps passing its existing
//! tests unchanged. The service-first equivalents live in `service.rs`.
#![allow(deprecated)]

use dataplane_orchestrator::{
    element_fingerprint, fingerprint_bytes, parallel_composition, plan, preset_pipelines,
    preset_scenarios, verify_sequential, Fingerprint, Orchestrator, ProgressEvent, Scenario,
    SummaryStore,
};
use dataplane_verifier::{Report, VerifierOptions};
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Everything deterministic about a report must match between the parallel
/// and sequential paths. (Cache-bookkeeping stats and wall-clock times are
/// legitimately different.)
fn assert_reports_identical(parallel: &Report, sequential: &Report, label: &str) {
    assert_eq!(parallel.verdict, sequential.verdict, "{label}: verdict");
    assert_eq!(
        parallel.counterexamples, sequential.counterexamples,
        "{label}: counterexamples"
    );
    assert_eq!(parallel.unproven, sequential.unproven, "{label}: unproven");
    assert_eq!(
        parallel.stats.elements, sequential.stats.elements,
        "{label}: elements"
    );
    assert_eq!(
        parallel.stats.total_segments, sequential.stats.total_segments,
        "{label}: segments"
    );
    assert_eq!(
        parallel.stats.suspects, sequential.stats.suspects,
        "{label}: suspects"
    );
    assert_eq!(
        parallel.stats.discharged, sequential.stats.discharged,
        "{label}: discharged"
    );
    assert_eq!(
        parallel.stats.composed_paths, sequential.stats.composed_paths,
        "{label}: composed paths"
    );
    assert_eq!(
        parallel.stats.solver_calls, sequential.stats.solver_calls,
        "{label}: solver calls"
    );
    assert_eq!(
        parallel.stats.fm_budget_aborts, sequential.stats.fm_budget_aborts,
        "{label}: fm budget aborts"
    );
    assert_eq!(
        parallel.stats.model_search_aborts, sequential.stats.model_search_aborts,
        "{label}: model search aborts"
    );
}

#[test]
fn parallel_step2_reports_identical_to_sequential_on_all_presets() {
    // Same verifier, same scenarios — the only difference is whether the
    // suspect × prefix feasibility checks of each composition run inline or
    // across the work-stealing pool. Everything deterministic about the
    // report must be byte-identical.
    let sequential_options = VerifierOptions::default();
    let parallel_options = VerifierOptions {
        parallel: parallel_composition(4),
        ..VerifierOptions::default()
    };
    assert!(parallel_options.parallel.is_parallel());
    assert!(!sequential_options.parallel.is_parallel());
    for scenario in preset_scenarios() {
        let label = scenario.label();
        let sequential =
            verify_sequential(&scenario.pipeline, &scenario.property, &sequential_options);
        let parallel = verify_sequential(&scenario.pipeline, &scenario.property, &parallel_options);
        assert_reports_identical(&parallel, &sequential, &label);
    }
}

#[test]
fn parallel_matrix_verdicts_equal_sequential_on_all_presets() {
    let options = VerifierOptions::default();
    let sequential: Vec<(String, Report)> = preset_scenarios()
        .into_iter()
        .map(|s| {
            let label = s.label();
            let report = verify_sequential(&s.pipeline, &s.property, &options);
            (label, report)
        })
        .collect();

    let orchestrator = Orchestrator::new().with_threads(4);
    let matrix = orchestrator.run(preset_scenarios());
    assert_eq!(matrix.scenarios.len(), sequential.len());
    assert_eq!(matrix.threads, 4);

    for (parallel, (label, sequential_report)) in matrix.scenarios.iter().zip(sequential.iter()) {
        assert_eq!(&parallel.label(), label, "scenario order preserved");
        assert_reports_identical(&parallel.report, sequential_report, label);
        // Seeded composition must not have re-explored anything: every
        // summary came from the orchestrator's store.
        assert_eq!(
            parallel.report.stats.summaries_computed, 0,
            "{label}: composition re-explored an element"
        );
        assert_eq!(
            parallel.report.stats.summaries_reused, parallel.report.stats.elements,
            "{label}: not every summary was served from the store"
        );
    }

    // The matrix must demonstrate both proofs and violation-finding.
    let (proven, violated, _unknown) = matrix.verdict_counts();
    assert!(proven >= 6, "expected most presets proven, got {proven}");
    assert!(
        violated >= 2,
        "the buggy pipeline must be caught, got {violated} violations"
    );

    // The shared scheduler's promise: however many compositions fanned out
    // Step-2 work, live working threads never exceeded the pool size.
    assert!(
        matrix.peak_live_threads <= matrix.threads,
        "peak live threads {} exceeded the pool size {}",
        matrix.peak_live_threads,
        matrix.threads
    );
}

#[test]
fn shared_pool_bounds_live_solver_threads_under_many_scenarios() {
    // 20 scenarios on a 3-thread pool: each composition's Step-2 walk may
    // borrow only parked workers, so live solver threads stay bounded by
    // the single pool size (the old per-composition scoped workers had a
    // `scenarios × threads` ceiling instead).
    let orchestrator = Orchestrator::new().with_threads(3);
    let matrix = orchestrator.run(preset_scenarios());
    assert_eq!(matrix.scenarios.len(), 20);
    assert!(
        (1..=3).contains(&matrix.peak_live_threads),
        "peak live threads {} outside 1..=3",
        matrix.peak_live_threads
    );
    let (_, violated, unknown) = matrix.verdict_counts();
    assert_eq!(unknown, 0, "every preset must decide");
    assert!(violated >= 2, "the planted bugs must still be found");
}

#[test]
fn warm_cache_rerun_skips_all_element_jobs() {
    let orchestrator = Orchestrator::new().with_threads(4);

    let cold = orchestrator.run(preset_scenarios());
    assert!(cold.explore_jobs > 0, "cold run must explore");
    assert_eq!(cold.cached_jobs, 0, "store started empty");

    let warm = orchestrator.run(preset_scenarios());
    assert_eq!(warm.explore_jobs, 0, "warm run re-explored an element");
    assert_eq!(
        warm.cached_jobs, cold.explore_jobs,
        "every distinct behaviour must be served warm"
    );
    // Every element summary of every scenario was a memory hit.
    let total_elements: usize = warm.scenarios.iter().map(|s| s.report.stats.elements).sum();
    assert!(
        warm.cache.memory_hits >= total_elements as u64,
        "expected >= {total_elements} memory hits, got {}",
        warm.cache.memory_hits
    );
    assert_eq!(warm.cache.misses, 0, "warm run missed the cache");

    // Verdicts are unchanged by cache temperature.
    for (a, b) in cold.scenarios.iter().zip(warm.scenarios.iter()) {
        assert_reports_identical(&b.report, &a.report, &a.label());
    }
}

#[test]
fn persistent_tier_warms_a_fresh_process() {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "vericlick-orchestrator-test-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // First "process": verify the router, persisting summaries.
    let store = Arc::new(SummaryStore::persistent(&dir).unwrap());
    let orchestrator = Orchestrator::new().with_store(store).with_threads(2);
    let first = orchestrator.run(vec![scenario("ip_router")]);
    assert!(first.explore_jobs > 0);
    assert!(first.cache.persisted >= first.explore_jobs as u64);

    // Second "process": fresh store over the same directory — no element
    // jobs, summaries decoded from disk, same verdict.
    let store = Arc::new(SummaryStore::persistent(&dir).unwrap());
    let orchestrator = Orchestrator::new().with_store(store).with_threads(2);
    let second = orchestrator.run(vec![scenario("ip_router")]);
    assert_eq!(second.explore_jobs, 0, "disk tier failed to warm the run");
    assert!(second.cache.disk_hits > 0, "no summary came from disk");
    assert_reports_identical(
        &second.scenarios[0].report,
        &first.scenarios[0].report,
        "ip_router across processes",
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-freedom scenario for one named preset.
fn scenario(name: &str) -> Scenario {
    preset_scenarios()
        .into_iter()
        .find(|s| s.pipeline_name == name && s.label().contains("crash"))
        .expect("preset exists")
}

#[test]
fn planner_deduplicates_and_orders_jobs() {
    let options = VerifierOptions::default();
    let store = SummaryStore::in_memory();
    let scenarios = preset_scenarios();
    let job_plan = plan(&scenarios, &options, &store);

    // Distinct behaviours only: no fingerprint appears twice in the plan.
    let fingerprints: Vec<Fingerprint> = job_plan.explore.iter().map(|e| e.fingerprint).collect();
    let distinct: HashSet<Fingerprint> = fingerprints.iter().copied().collect();
    assert_eq!(distinct.len(), fingerprints.len(), "duplicate explore job");

    // Far fewer jobs than element instances — that is the `k·2^n` reuse.
    let total_instances: usize = scenarios.iter().map(|s| s.pipeline.len()).sum();
    assert!(
        job_plan.explore.len() * 3 < total_instances,
        "{} jobs for {} instances",
        job_plan.explore.len(),
        total_instances
    );

    // Every scenario's dependencies point at jobs covering exactly its
    // elements' fingerprints.
    for (scenario_idx, scenario) in scenarios.iter().enumerate() {
        assert_eq!(
            job_plan.element_fingerprints[scenario_idx].len(),
            scenario.pipeline.len()
        );
        for &dep in &job_plan.scenario_deps[scenario_idx] {
            let fp = job_plan.explore[dep].fingerprint;
            assert!(
                job_plan.element_fingerprints[scenario_idx].contains(&fp),
                "scenario {scenario_idx} depends on a job it does not use"
            );
        }
    }
}

#[test]
fn progress_events_stream_the_whole_run() {
    let explores = Arc::new(AtomicUsize::new(0));
    let composes = Arc::new(AtomicUsize::new(0));
    let (e, c) = (explores.clone(), composes.clone());
    let orchestrator =
        Orchestrator::new()
            .with_threads(4)
            .with_progress(move |event| match event {
                ProgressEvent::ExploreFinished { ok, .. } => {
                    assert!(ok);
                    e.fetch_add(1, Ordering::Relaxed);
                }
                ProgressEvent::ComposeFinished { .. } => {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            });
    let matrix = orchestrator.run(vec![scenario("ip_router"), scenario("middlebox")]);
    assert_eq!(explores.load(Ordering::Relaxed), matrix.explore_jobs);
    assert_eq!(composes.load(Ordering::Relaxed), 2);
}

#[test]
fn matrix_report_serialises_for_machines() {
    let orchestrator = Orchestrator::new().with_threads(2);
    let matrix = orchestrator.run(vec![scenario("firewall")]);
    let json = matrix.to_json();
    let text = json.to_text();
    let parsed = dataplane_orchestrator::json::Json::parse(&text).unwrap();
    assert_eq!(parsed.get("proven").unwrap().as_u64(), Some(1));
    let scenarios = parsed.get("scenarios").unwrap().as_arr().unwrap();
    assert_eq!(scenarios.len(), 1);
    assert_eq!(
        scenarios[0].get("pipeline").unwrap().as_str(),
        Some("firewall")
    );
    assert_eq!(
        scenarios[0].get("verdict").unwrap().as_str(),
        Some("proven")
    );
    assert!(!matrix.to_string().is_empty());
}

// ---------------------------------------------------------------------------
// Property tests: hash stability and codec round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The content hash is a pure function of its input text.
    #[test]
    fn fingerprints_are_stable_and_collision_averse(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        flip in 0usize..64,
    ) {
        let text: String = bytes.iter().map(|b| char::from(b % 128)).collect();
        let a = fingerprint_bytes(&text);
        let b = fingerprint_bytes(&text);
        prop_assert_eq!(a, b);
        // Round-trip through the hex form.
        prop_assert_eq!(Fingerprint::parse(&a.to_string()), Some(a));
        // Any single-character edit changes the hash.
        if !text.is_empty() {
            let at = flip % text.len();
            let mut edited: Vec<char> = text.chars().collect();
            edited[at] = if edited[at] == 'x' { 'y' } else { 'x' };
            let edited: String = edited.into_iter().collect();
            if edited != text {
                prop_assert!(fingerprint_bytes(&edited) != a, "edit not detected");
            }
        }
    }

    /// Element fingerprints are deterministic across independently built
    /// element instances (the property the cross-run cache relies on).
    #[test]
    fn element_fingerprints_deterministic_across_instances(preset in 0usize..5) {
        let presets = preset_pipelines();
        let (_, make) = presets[preset];
        let options = VerifierOptions::default();
        let a = make();
        let b = make();
        for idx in 0..a.len() {
            prop_assert_eq!(
                element_fingerprint(a.node(idx).element.as_ref(), &options.engine),
                element_fingerprint(b.node(idx).element.as_ref(), &options.engine)
            );
        }
    }
}

#[test]
fn summaries_round_trip_through_persistence_for_every_distinct_element() {
    use dataplane_orchestrator::json::Json;
    use dataplane_orchestrator::persist::{summary_from_json, summary_to_json};
    use dataplane_symbex::explore;
    use dataplane_verifier::ElementSummary;

    let options = VerifierOptions::default();
    let mut seen = HashSet::new();
    for (_, make) in preset_pipelines() {
        let pipeline = make();
        for (_, node) in pipeline.iter() {
            let element = node.element.as_ref();
            let fp = element_fingerprint(element, &options.engine);
            if !seen.insert(fp) {
                continue;
            }
            let exploration = explore(&element.model(), &options.engine).unwrap();
            let summary = ElementSummary {
                type_name: element.type_name().to_string(),
                config_key: element.config_key(),
                exploration,
                explore_time: std::time::Duration::from_micros(421),
            };
            let text = summary_to_json(&summary).to_text();
            let decoded = summary_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(decoded.type_name, summary.type_name);
            assert_eq!(decoded.config_key, summary.config_key);
            assert_eq!(decoded.explore_time, summary.explore_time);
            assert_eq!(
                decoded.exploration.segments.len(),
                summary.exploration.segments.len()
            );
            // Byte-stable re-encoding proves the decode lost nothing the
            // encoder can see.
            assert_eq!(summary_to_json(&decoded).to_text(), text);
        }
    }
    assert!(
        seen.len() >= 10,
        "expected a rich element set, got {}",
        seen.len()
    );
}

//! Sharded-compose byte-identity across the whole preset matrix.
//!
//! The service's shard path (`--compose-shard`) splits each scenario's
//! Step-2 suspect×prefix enumeration into contiguous wire shards and folds
//! the records back by replaying the sequential enumeration. These tests
//! drive that path through an in-process shard executor over **all 15
//! preset scenarios** at shard counts 1, 2, and 8 (plus the unsharded
//! fallback) and require the deterministic report to equal the plain
//! in-process serve byte for byte. The networked variants (real TCP
//! workers, deaths, cancellation frames) live in `exec_net.rs`; this file
//! is the exhaustive preset sweep.

use dataplane_orchestrator::exec::ExecError;
use dataplane_orchestrator::{
    preset_scenarios, ComposeShardJob, Executor, ExploreJob, Fingerprint, InProcessExecutor,
    VerifyRequest, VerifyService,
};
use dataplane_symbex::CancelToken;
use dataplane_verifier::{ComposeShardResult, ElementSummary, Verifier, VerifierOptions};
use std::sync::Arc;

/// An executor with a remote-shaped shard path that runs in-process: each
/// [`ComposeShardJob`] is decided by a fresh verifier from the summaries
/// the coordinator would ship, exactly as a socket worker decides it —
/// minus the socket.
struct ShardExecutor {
    inner: InProcessExecutor,
}

impl ShardExecutor {
    fn new() -> Self {
        ShardExecutor {
            inner: InProcessExecutor::new(2),
        }
    }
}

impl Executor for ShardExecutor {
    fn describe(&self) -> String {
        "in-process shard harness".into()
    }

    fn explore_jobs(
        &self,
        jobs: &[ExploreJob],
        options: &VerifierOptions,
    ) -> Result<Vec<Option<ElementSummary>>, ExecError> {
        self.inner.explore_jobs(jobs, options)
    }

    fn compose_shard_jobs(
        &self,
        jobs: &[ComposeShardJob],
        options: &VerifierOptions,
        summaries: &(dyn Fn(Fingerprint) -> Option<Arc<ElementSummary>> + Sync),
    ) -> Option<Result<Vec<ComposeShardResult>, ExecError>> {
        let mut results = Vec::with_capacity(jobs.len());
        for job in jobs {
            let scenario = match job.scenario.to_scenario() {
                Ok(s) => s,
                Err(e) => return Some(Err(ExecError::Job(e.to_string()))),
            };
            let shipped: Vec<Arc<ElementSummary>> = job
                .fingerprints
                .iter()
                .filter_map(|fp| summaries(*fp))
                .collect();
            results.push(
                Verifier::with_options(options.clone()).decide_composition_shard(
                    &scenario.pipeline,
                    &scenario.property,
                    shipped,
                    job.start,
                    job.end,
                    &CancelToken::new(),
                ),
            );
        }
        Some(Ok(results))
    }
}

fn preset_request() -> VerifyRequest {
    VerifyRequest::Matrix {
        scenarios: preset_scenarios(),
    }
}

#[test]
fn sharded_preset_matrix_is_byte_identical_at_every_shard_count() {
    // Reference: the plain in-process serve of all 20 presets.
    let reference = VerifyService::new()
        .with_threads(2)
        .serve(preset_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    // Shard counts 1 (one shard per scenario — the degenerate split), 2,
    // and 8; plus 0, the unsharded fallback through the very same
    // executor (whose compose path then declines and the service
    // composes on its own scheduler).
    for shards in [1usize, 2, 8, 0] {
        let service = VerifyService::new()
            .with_threads(2)
            .with_compose_shard(shards);
        let plan = service.plan_request(&preset_request()).unwrap();
        let executed = service.execute_plan(&plan, &ShardExecutor::new()).unwrap();
        assert_eq!(
            executed.deterministic_json().to_text(),
            reference,
            "compose-shard {shards} must reproduce the in-process preset matrix byte for byte"
        );
    }
}

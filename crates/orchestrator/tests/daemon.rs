//! Integration tests of the verification daemon: warm-store reuse across
//! client sessions, admission control, runtime worker joins with summary
//! dedup, and the client protocol's error handling.
//!
//! The acceptance bar mirrors the exec tests: whatever path served the
//! request — in-process, via the daemon, via the daemon *and* a socket
//! fleet — the deterministic report must be byte-identical.

use dataplane_orchestrator::daemon::{CLIENT_PROTO, CLIENT_SCHEMA};
use dataplane_orchestrator::exec::transport::{read_frame, write_frame};
use dataplane_orchestrator::json::Json;
use dataplane_orchestrator::{
    config_scenarios, join_fleet, serve_listener, Daemon, DaemonClient, DaemonConfig, NamedConfig,
    PropertySelect, VerifyRequest, VerifyService, WorkerAddr,
};
use std::io::BufReader;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

const ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

fn two_config_request() -> VerifyRequest {
    VerifyRequest::Matrix {
        scenarios: config_scenarios(
            &[
                NamedConfig::new("router", ROUTER),
                NamedConfig::new("filter", FILTER),
            ],
            &|name| PropertySelect::Default.properties_for(name),
        )
        .unwrap(),
    }
}

/// Start `daemon` on a loopback TCP listener (port chosen by the OS) on a
/// background thread; returns the bound address parsed from its first log
/// line.
fn spawn_daemon(daemon: Daemon) -> WorkerAddr {
    let (tx, rx) = mpsc::channel();
    let serving = daemon.clone();
    std::thread::spawn(move || {
        let tx = Mutex::new(Some(tx));
        let log: Arc<dyn Fn(&str) + Send + Sync> = Arc::new(move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.lock().unwrap().take() {
                    let _ = tx.send(addr.to_string());
                }
            }
        });
        let _ = serving.serve(&WorkerAddr::Tcp("127.0.0.1:0".into()), false, log);
    });
    WorkerAddr::Tcp(rx.recv().expect("daemon announced its address"))
}

/// Start a worker that keeps accepting sessions on one listener until the
/// test process exits.
fn spawn_persistent_tcp_worker() -> WorkerAddr {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut tx = Some(tx);
        let mut log = move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.take() {
                    tx.send(addr.to_string()).unwrap();
                }
            }
        };
        let _ = serve_listener(&WorkerAddr::Tcp("127.0.0.1:0".into()), 2, false, &mut log);
    });
    WorkerAddr::Tcp(rx.recv().expect("worker announced its address"))
}

#[test]
fn second_session_on_a_warm_daemon_plans_zero_element_jobs() {
    let reference = VerifyService::new()
        .with_threads(2)
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    let addr = spawn_daemon(Daemon::new(DaemonConfig {
        threads: 2,
        ..DaemonConfig::default()
    }));

    // Session one: a cold store, so Step-1 explorations run.
    let mut first = DaemonClient::connect(&addr, None).unwrap();
    let reply = first.verify(&two_config_request()).unwrap();
    assert_eq!(reply.request, "matrix");
    assert!(reply.ok, "{}", reply.display);
    assert!(
        reply.report.get("explore_jobs").and_then(Json::as_u64) > Some(0),
        "a cold daemon explores elements: {}",
        reply.report.to_text()
    );
    assert_eq!(reply.det_report.to_text(), reference);
    drop(first);

    // Session two, a *new connection*: the shared store is warm, so the
    // same matrix plans zero element jobs — Step 1 entirely from memory.
    let mut second = DaemonClient::connect(&addr, None).unwrap();
    let reply = second.verify(&two_config_request()).unwrap();
    assert_eq!(
        reply.report.get("explore_jobs").and_then(Json::as_u64),
        Some(0),
        "a warm daemon re-plans no element jobs: {}",
        reply.report.to_text()
    );
    assert_eq!(
        reply.det_report.to_text(),
        reference,
        "cache temperature must not change the deterministic report"
    );
}

#[test]
fn admission_refuses_sessions_past_the_limit_and_recovers() {
    // max_queue: 0 restores the pre-queue behaviour: an over-limit hello
    // is refused outright (with a retry hint) instead of waiting in line.
    let addr = spawn_daemon(Daemon::new(DaemonConfig {
        threads: 2,
        max_sessions: 1,
        max_queue: 0,
        ..DaemonConfig::default()
    }));

    // The one admitted session holds its slot as long as it is connected.
    let admitted = DaemonClient::connect(&addr, None).unwrap();
    let refused = DaemonClient::connect(&addr, None);
    match refused {
        Err(e) => {
            let text = e.to_string();
            assert!(text.contains("busy"), "the refusal names the reason: {e}");
            assert!(
                text.contains("retry_after_ms"),
                "the refusal carries a retry hint: {e}"
            );
        }
        Ok(_) => panic!("a second session must be refused at max_sessions = 1"),
    }
    drop(admitted);

    // Once the admitted session closes, the slot frees (the session
    // thread notices the closed stream asynchronously — poll briefly).
    let mut recovered = None;
    for _ in 0..100 {
        match DaemonClient::connect(&addr, None) {
            Ok(client) => {
                recovered = Some(client);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut client = recovered.expect("the slot frees after the first session closes");
    let reply = client.verify(&two_config_request()).unwrap();
    assert!(reply.ok, "{}", reply.display);
}

#[test]
fn a_worker_joined_at_runtime_executes_jobs_and_dedups_summaries() {
    let reference = VerifyService::new()
        .with_threads(2)
        .serve(two_config_request())
        .unwrap()
        .deterministic_json()
        .to_text();

    let daemon = Daemon::new(DaemonConfig {
        threads: 2,
        ..DaemonConfig::default()
    });
    let addr = spawn_daemon(daemon.clone());
    assert!(daemon.workers().is_empty(), "the pool starts empty");

    // A worker joins the running daemon through the same listener the
    // clients use.
    let worker = spawn_persistent_tcp_worker();
    assert_eq!(join_fleet(&addr, &worker).unwrap(), 1);
    assert_eq!(daemon.workers().len(), 1);

    // First request: dispatched to the joined worker (dispatch stats are
    // present and account for every job).
    let mut client = DaemonClient::connect(&addr, None).unwrap();
    let first = client.verify(&two_config_request()).unwrap();
    assert!(first.ok, "{}", first.display);
    assert_eq!(first.det_report.to_text(), reference);
    assert_eq!(first.dispatch_stat("workers"), Some(1));
    assert!(
        first.dispatch_stat("jobs_completed") > Some(0),
        "the joined worker ran the plan: {}",
        first.dispatch.to_text()
    );

    // Second request on the same session: the daemon's store is warm
    // (zero explore jobs) and the worker's summary store is warm too —
    // its hello advertises every fingerprint it folded, so no summary
    // document is re-shipped.
    let second = client.verify(&two_config_request()).unwrap();
    assert_eq!(second.det_report.to_text(), reference);
    assert_eq!(
        second.report.get("explore_jobs").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        second.dispatch_stat("summaries_shipped"),
        Some(0),
        "a warm worker receives no summary documents: {}",
        second.dispatch.to_text()
    );
    assert!(
        second.dispatch_stat("summaries_deduped") > Some(0),
        "the dedup win is visible to the client: {}",
        second.dispatch.to_text()
    );
}

#[test]
fn over_limit_hellos_queue_and_are_served_when_a_slot_frees() {
    let addr = spawn_daemon(Daemon::new(DaemonConfig {
        threads: 2,
        max_sessions: 1,
        max_queue: 1,
        ..DaemonConfig::default()
    }));
    let spec = match &addr {
        WorkerAddr::Tcp(spec) => spec.clone(),
        other => panic!("expected a TCP daemon address, got {other:?}"),
    };
    let hello = || {
        Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(CLIENT_PROTO)),
        ])
    };

    // The one admitted session holds the only slot.
    let admitted = DaemonClient::connect(&addr, None).unwrap();

    // The second hello is parked in the queue and told its position.
    let mut stream = std::net::TcpStream::connect(&spec).unwrap();
    write_frame(&mut stream, &hello()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let queued = read_frame(&mut reader).unwrap().expect("a queued frame");
    assert_eq!(queued.get("kind").and_then(Json::as_str), Some("queued"));
    assert_eq!(queued.get("position").and_then(Json::as_u64), Some(1));

    // A third hello finds slots and queue both full: busy, with a retry
    // hint (the queue keeps the backlog bounded).
    let mut third = std::net::TcpStream::connect(&spec).unwrap();
    write_frame(&mut third, &hello()).unwrap();
    let mut third_reader = BufReader::new(third.try_clone().unwrap());
    let busy = read_frame(&mut third_reader)
        .unwrap()
        .expect("a busy frame");
    assert_eq!(busy.get("kind").and_then(Json::as_str), Some("error"));
    assert!(
        busy.get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("busy"),
        "{}",
        busy.to_text()
    );
    assert!(
        busy.get("retry_after_ms").and_then(Json::as_u64).unwrap() > 0,
        "{}",
        busy.to_text()
    );
    drop(third);

    // When the admitted session leaves, the queued hello takes the slot:
    // the held connection receives the real hello reply and then serves
    // requests like any admitted session.
    drop(admitted);
    let served = read_frame(&mut reader).unwrap().expect("a hello reply");
    assert_eq!(served.get("kind").and_then(Json::as_str), Some("hello"));
    write_frame(
        &mut stream,
        &Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("verify")),
            ("request", two_config_request().to_json().unwrap()),
        ]),
    )
    .unwrap();
    let response = read_frame(&mut reader).unwrap().expect("a response frame");
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("response"),
        "{}",
        response.to_text()
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn version_mismatch_and_bad_frames_are_refused_with_error_frames() {
    let daemon = Daemon::new(DaemonConfig::default());

    // A peer speaking the wrong schema is refused before admission.
    let mut input = Vec::new();
    write_frame(
        &mut input,
        &Json::obj([
            ("schema", Json::int(999u64)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(CLIENT_PROTO)),
        ]),
    )
    .unwrap();
    let mut output = Vec::new();
    let result = daemon.serve_connection(input.as_slice(), &mut output);
    assert!(result.is_err(), "a version mismatch fails the session");
    let mut frames = BufReader::new(output.as_slice());
    let error = read_frame(&mut frames).unwrap().unwrap();
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("error"));
    assert!(
        error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("version mismatch"),
        "the error frame names the mismatch"
    );

    // A malformed verify frame draws an error frame but the session
    // survives: the next (valid) request on the same connection is
    // served.
    let mut input = Vec::new();
    write_frame(
        &mut input,
        &Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("hello")),
            ("proto", Json::str(CLIENT_PROTO)),
        ]),
    )
    .unwrap();
    write_frame(
        &mut input,
        &Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("verify")),
            ("request", Json::str("not a request document")),
        ]),
    )
    .unwrap();
    write_frame(
        &mut input,
        &Json::obj([
            ("schema", Json::int(CLIENT_SCHEMA)),
            ("kind", Json::str("verify")),
            ("request", two_config_request().to_json().unwrap()),
        ]),
    )
    .unwrap();
    let mut output = Vec::new();
    daemon
        .serve_connection(input.as_slice(), &mut output)
        .unwrap();
    let mut frames = BufReader::new(output.as_slice());
    let hello = read_frame(&mut frames).unwrap().unwrap();
    assert_eq!(hello.get("kind").and_then(Json::as_str), Some("hello"));
    let error = read_frame(&mut frames).unwrap().unwrap();
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("error"));
    let response = read_frame(&mut frames).unwrap().unwrap();
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("response"),
        "the session survives a bad request"
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
}

//! Integration tests for the differential-conformance subsystem: replay
//! of every preset counterexample, fuzzing of every proven preset, and
//! the determinism contract of the conformance report.

use dataplane_orchestrator::conformance::{replay_matrix_json, ConformanceReport};
use dataplane_orchestrator::{
    preset_scenarios, InProcessExecutor, VerifyOutcome, VerifyRequest, VerifyService,
};
use dataplane_verifier::Verdict;

fn conformance(service: &VerifyService, seed: u64, packets: u64) -> ConformanceReport {
    let response = service
        .serve(VerifyRequest::Conformance {
            scenarios: preset_scenarios(),
            seed,
            packets,
        })
        .expect("conformance request serves");
    assert_eq!(response.request, "conformance");
    match response.outcome {
        VerifyOutcome::Conformance(report) => *report,
        _ => panic!("conformance request must produce a conformance outcome"),
    }
}

#[test]
fn every_preset_counterexample_reproduces_concretely() {
    let service = VerifyService::new().with_threads(4);
    let report = conformance(&service, 1, 0);
    // The preset matrix has 5 violated scenarios (the buggy pipeline's
    // three, plus the two planted temporal violations), each with at
    // least one counterexample; every replay must reproduce.
    assert!(
        report.replay.len() >= 5,
        "expected counterexamples from the violated presets, got {}",
        report.replay.len()
    );
    for outcome in &report.replay {
        assert!(
            outcome.reproduced,
            "soundness: {}/{} counterexample '{}' did not reproduce \
             (concrete run {} at {}, path [{}])",
            outcome.scenario,
            outcome.property,
            outcome.description,
            outcome.disposition,
            outcome.at,
            outcome.concrete_path.join(" -> "),
        );
        assert!(
            outcome.scenario == "buggy" || outcome.scenario == "firewall",
            "only the buggy presets and the planted temporal violations \
             are violated, got '{}'",
            outcome.scenario
        );
    }
    assert_eq!(report.replay_mismatches(), 0);
}

#[test]
fn fuzzing_the_proven_presets_finds_zero_contradictions() {
    let service = VerifyService::new().with_threads(4);
    let report = conformance(&service, 0xF00D, 6_000);
    // 15 proven scenarios in the preset matrix, all fuzzed.
    assert_eq!(report.fuzz.len(), 15);
    assert_eq!(
        report.contradictions(),
        0,
        "a fuzzed packet contradicted a Proven verdict:\n{report}"
    );
    assert!(report.packets_pushed() >= 6_000, "model seeds ride on top");
    for fuzz in &report.fuzz {
        assert!(
            fuzz.checked > 0,
            "{}: no packet was checkable",
            fuzz.scenario
        );
        assert!(
            fuzz.crashed == 0,
            "{}: crash on a crash-free preset",
            fuzz.scenario
        );
    }
    assert!(report.ok());
}

#[test]
fn conformance_report_is_byte_identical_for_a_fixed_seed() {
    // Two services (cold + warm store, different thread counts): the
    // deterministic document must not change.
    let a = conformance(&VerifyService::new().with_threads(2), 42, 2_000);
    let b = conformance(&VerifyService::new().with_threads(8), 42, 2_000);
    assert_eq!(
        a.deterministic_json().to_text(),
        b.deterministic_json().to_text()
    );
    // A different seed draws different packets (operational sanity that
    // the seed actually reaches the streams).
    let c = conformance(&VerifyService::new().with_threads(2), 43, 2_000);
    assert_ne!(
        a.deterministic_json().to_text(),
        c.deterministic_json().to_text()
    );
}

#[test]
fn explicit_in_process_executor_matches_the_default_path() {
    let service = VerifyService::new().with_threads(4);
    // InProcessExecutor has no remote fuzz path; run_conformance must
    // fall back to the shared pool and match the executor-less run.
    let direct = service
        .run_conformance(preset_scenarios(), 7, 1_000, None)
        .unwrap();
    let via_exec = service
        .run_conformance(
            preset_scenarios(),
            7,
            1_000,
            Some(&InProcessExecutor::new(4)),
        )
        .unwrap();
    assert_eq!(
        direct.deterministic_json().to_text(),
        via_exec.deterministic_json().to_text()
    );
}

#[test]
fn saved_matrix_reports_replay_through_the_json_path() {
    // The `vericlick conform` pipeline, in-process: serve the matrix,
    // serialise the deterministic document, parse it back, replay.
    let service = VerifyService::new().with_threads(4);
    let response = service
        .serve(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .unwrap();
    let (proven, violated, unknown) = response.verdict_counts();
    assert_eq!((proven, violated, unknown), (15, 5, 0));
    let text = response.deterministic_json().to_text();
    let doc = dataplane_orchestrator::json::Json::parse(&text).unwrap();
    let outcomes = replay_matrix_json(&doc).unwrap();
    assert!(!outcomes.is_empty());
    assert!(
        outcomes.iter().all(|o| o.reproduced),
        "all replays reproduce"
    );

    // The matrix itself agrees: every violated scenario's counterexamples
    // were replayed.
    let matrix = response.matrix().unwrap();
    let expected: usize = matrix
        .scenarios
        .iter()
        .filter(|s| s.report.verdict == Verdict::Violated)
        .map(|s| s.report.counterexamples.len())
        .sum();
    assert_eq!(outcomes.len(), expected);
}

#[test]
fn non_preset_scenarios_are_rejected_by_the_replay_decoder() {
    let doc = dataplane_orchestrator::json::Json::parse(
        r#"{"schema":1,"kind":"matrix","scenarios":[{"pipeline":"mystery","report":{"property":"crash-freedom","verdict":"violated","counterexamples":[],"unproven":[],"stats":{}}}],"proven":0,"violated":1,"unknown":0}"#,
    )
    .unwrap();
    let err = replay_matrix_json(&doc).unwrap_err();
    assert!(
        err.to_string().contains("not a preset"),
        "names the limitation: {err}"
    );
}

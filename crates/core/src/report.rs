//! Verification reports: verdicts, counterexamples, and statistics.

use crate::property::Property;
use std::fmt;
use std::time::Duration;

/// A concrete packet that demonstrates a property violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The packet bytes to inject at the pipeline entry.
    pub packet: Vec<u8>,
    /// The instance names of the elements along the violating path, ending at
    /// the element where the violation happens.
    pub path: Vec<String>,
    /// Human-readable description of the violation.
    pub description: String,
    /// True if replaying the packet on the concrete pipeline confirmed the
    /// violation (counterexamples are validated whenever the verifier is
    /// configured to do so).
    pub confirmed: bool,
}

/// A potential violation the verifier could neither discharge nor confirm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnprovenPath {
    /// The instance names of the elements along the path.
    pub path: Vec<String>,
    /// Why the verifier is unsure.
    pub reason: String,
}

/// The verdict of a verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for every packet sequence.
    Proven,
    /// The property is violated; at least one counterexample is attached.
    Violated,
    /// The verifier ran out of budget or precision before reaching a verdict;
    /// the unproven paths say where.
    Unknown,
}

/// Work statistics for a verification run (these are the quantities the
/// paper's evaluation compares between the decomposed and monolithic
/// approaches).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerificationStats {
    /// Number of element instances in the pipeline.
    pub elements: usize,
    /// Number of distinct element summaries computed (cache misses).
    pub summaries_computed: usize,
    /// Number of summaries served from the cache.
    pub summaries_reused: usize,
    /// Total segments across all summaries.
    pub total_segments: usize,
    /// Segments tagged suspect in Step 1.
    pub suspects: usize,
    /// Suspect/prefix combinations discharged as infeasible in Step 2.
    pub discharged: usize,
    /// Composed pipeline paths examined in Step 2.
    pub composed_paths: usize,
    /// Solver invocations.
    pub solver_calls: usize,
    /// Step-2 checks (suspect × prefix feasibility checks and prefix
    /// pruning checks) decided by the interval-only pre-filter alone —
    /// provably infeasible before the Fourier–Motzkin or model-search
    /// stages ever ran. These do **not** count as `solver_calls`.
    pub prefilter_decided: usize,
    /// Step-2 checks the interval-only pre-filter could not decide, which
    /// therefore went on to the full staged solver (each of these is also a
    /// `solver_calls` entry).
    pub prefilter_passed: usize,
    /// Step-2 feasibility checks whose Fourier–Motzkin stage aborted at its
    /// `max_fm_constraints` budget (the check may still have been decided by
    /// a later stage; a raised budget might decide it analytically).
    pub fm_budget_aborts: usize,
    /// Step-2 feasibility checks whose randomized model search ran through
    /// all its tries without finding a model. Every `Unknown` feasibility
    /// verdict has this set, so `unknown = Unknown` causes are diagnosable
    /// from the stats alone.
    pub model_search_aborts: usize,
    /// Checks that aborted a stage under the base solver budgets and
    /// entered the geometric escalation ladder before being reported.
    pub budget_escalations: usize,
    /// Escalated retries that decided the check (Sat or Unsat) where the
    /// base budgets could not.
    pub escalations_decided: usize,
    /// Checks decided per ladder rung: `escalations_by_step[i]` counts the
    /// checks the `i`-th escalation rung (budgets ×factor^(i+1)) decided.
    /// The vector is only as long as the highest rung that decided
    /// anything, so it stays empty on the common all-decided-at-base path.
    pub escalations_by_step: Vec<usize>,
    /// Per-stage rung counters: `escalations_fm[i]` counts the checks
    /// decided at rung `i` whose retry raised the Fourier–Motzkin budget
    /// (the ladder raises only the stages that actually aborted, so a
    /// check that never exhausted the FM budget never appears here).
    pub escalations_fm: Vec<usize>,
    /// Per-stage rung counters for the model-search stage: checks decided
    /// at rung `i` whose retry raised the model-search try budget.
    pub escalations_search: Vec<usize>,
    /// States of the Büchi automaton compiled from the negated temporal
    /// spec (zero for non-temporal properties).
    pub buchi_states: usize,
    /// Reachable states of the product of that automaton with the summary
    /// transition system explored by the emptiness pre-check.
    pub product_states: usize,
    /// Accepting lassos whose composed path constraint was satisfiable
    /// (each yields a temporal counterexample).
    pub lasso_found: usize,
}

/// The full result of verifying one property of one pipeline.
#[derive(Clone, Debug)]
pub struct Report {
    /// The property that was checked.
    pub property: Property,
    /// The verdict.
    pub verdict: Verdict,
    /// Counterexamples (non-empty exactly when the verdict is `Violated`).
    pub counterexamples: Vec<Counterexample>,
    /// Paths the verifier could not decide (non-empty only when `Unknown`).
    pub unproven: Vec<UnprovenPath>,
    /// Work statistics.
    pub stats: VerificationStats,
    /// Wall-clock verification time.
    pub elapsed: Duration,
}

impl Report {
    /// True if the property was proven.
    pub fn is_proven(&self) -> bool {
        self.verdict == Verdict::Proven
    }

    /// True if a confirmed violation was found.
    pub fn is_violated(&self) -> bool {
        self.verdict == Verdict::Violated
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property {} — {:?} in {:.3}s",
            self.property.name(),
            self.verdict,
            self.elapsed.as_secs_f64()
        )?;
        writeln!(
            f,
            "  elements {}, summaries computed {} (reused {}), segments {}, suspects {}, discharged {}, composed paths {}, solver calls {}",
            self.stats.elements,
            self.stats.summaries_computed,
            self.stats.summaries_reused,
            self.stats.total_segments,
            self.stats.suspects,
            self.stats.discharged,
            self.stats.composed_paths,
            self.stats.solver_calls
        )?;
        if self.stats.buchi_states > 0 {
            writeln!(
                f,
                "  temporal: buchi states {}, product states {}, lassos found {}",
                self.stats.buchi_states, self.stats.product_states, self.stats.lasso_found
            )?;
        }
        if self.stats.prefilter_decided > 0 || self.stats.prefilter_passed > 0 {
            writeln!(
                f,
                "  interval pre-filter: decided {}, passed {} to the full solver",
                self.stats.prefilter_decided, self.stats.prefilter_passed
            )?;
        }
        if self.stats.fm_budget_aborts > 0 || self.stats.model_search_aborts > 0 {
            writeln!(
                f,
                "  stage aborts: fourier-motzkin budget {}, model search exhausted {}",
                self.stats.fm_budget_aborts, self.stats.model_search_aborts
            )?;
        }
        if self.stats.budget_escalations > 0 {
            write!(
                f,
                "  budget escalations: {} climbed the ladder ({} decided by the raised budgets",
                self.stats.budget_escalations, self.stats.escalations_decided
            )?;
            if !self.stats.escalations_by_step.is_empty() {
                write!(
                    f,
                    "; per rung: {}",
                    self.stats
                        .escalations_by_step
                        .iter()
                        .enumerate()
                        .map(|(i, n)| format!("#{}: {n}", i + 1))
                        .collect::<Vec<_>>()
                        .join(", ")
                )?;
            }
            let per_stage = |label: &str, rungs: &[usize]| {
                if rungs.is_empty() {
                    None
                } else {
                    Some(format!("{label} {}", rungs.iter().sum::<usize>()))
                }
            };
            let stages: Vec<String> = [
                per_stage("fm", &self.stats.escalations_fm),
                per_stage("search", &self.stats.escalations_search),
            ]
            .into_iter()
            .flatten()
            .collect();
            if !stages.is_empty() {
                write!(f, "; raised stages: {}", stages.join(", "))?;
            }
            writeln!(f, ")")?;
        }
        for ce in &self.counterexamples {
            writeln!(
                f,
                "  counterexample ({}confirmed): {} — {} bytes via [{}]",
                if ce.confirmed { "" } else { "un" },
                ce.description,
                ce.packet.len(),
                ce.path.join(" -> ")
            )?;
        }
        for up in &self.unproven {
            writeln!(
                f,
                "  unproven: {} via [{}]",
                up.reason,
                up.path.join(" -> ")
            )?;
        }
        Ok(())
    }
}

/// The result of the bounded-instruction analysis (the paper's "maximum
/// number of instructions a pipeline may ever execute, and which input causes
/// it").
#[derive(Clone, Debug)]
pub struct InstructionBoundReport {
    /// The per-packet instruction bound established for the pipeline (an
    /// upper bound when loops were decomposed).
    pub max_instructions: u64,
    /// A packet that drives the pipeline to (or near, when the bound is
    /// approximate) its maximum, if the solver produced one.
    pub witness: Option<Vec<u8>>,
    /// The instance names along the most expensive path.
    pub path: Vec<String>,
    /// True if loop decomposition made the bound an over-approximation.
    pub approximate: bool,
    /// Number of composed paths considered.
    pub paths_considered: usize,
    /// Number of those that were feasible.
    pub feasible_paths: usize,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

impl fmt::Display for InstructionBoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {} instructions per packet ({}), along [{}], {} / {} composed paths feasible, {:.3}s",
            self.max_instructions,
            if self.approximate { "upper bound" } else { "exact" },
            self.path.join(" -> "),
            self.feasible_paths,
            self.paths_considered,
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_includes_key_facts() {
        let report = Report {
            property: Property::CrashFreedom,
            verdict: Verdict::Violated,
            counterexamples: vec![Counterexample {
                packet: vec![0u8; 60],
                path: vec!["cls".into(), "opts".into()],
                description: "division by zero".into(),
                confirmed: true,
            }],
            unproven: vec![UnprovenPath {
                path: vec!["cls".into()],
                reason: "solver returned unknown".into(),
            }],
            stats: VerificationStats {
                elements: 5,
                suspects: 2,
                ..Default::default()
            },
            elapsed: Duration::from_millis(125),
        };
        let s = report.to_string();
        assert!(s.contains("crash-freedom"));
        assert!(s.contains("Violated"));
        assert!(s.contains("division by zero"));
        assert!(s.contains("cls -> opts"));
        assert!(s.contains("unknown"));
        assert!(report.is_violated());
        assert!(!report.is_proven());
    }

    #[test]
    fn instruction_report_display() {
        let r = InstructionBoundReport {
            max_instructions: 3600,
            witness: Some(vec![0; 64]),
            path: vec!["cls".into(), "chk".into()],
            approximate: true,
            paths_considered: 12,
            feasible_paths: 4,
            elapsed: Duration::from_secs(1),
        };
        let s = r.to_string();
        assert!(s.contains("3600"));
        assert!(s.contains("upper bound"));
        assert!(s.contains("4 / 12"));
    }
}

//! Temporal (LTL) properties, decided compositionally against the
//! per-element summaries.
//!
//! A packet's trace is the sequence of element instances it visits,
//! extended to an infinite word by repeating its final disposition forever
//! (the terminal self-loop). Verification is classic automata-theoretic
//! model checking, kept compositional exactly like Step 2:
//!
//! 1. The *negated* spec is compiled to a Büchi automaton (`crates/
//!    temporal`: NNF → VWAA → GBA → degeneralized BA).
//! 2. An **emptiness pre-check** runs nested DFS over the product of that
//!    automaton with the summary transition system — the over-approximate
//!    graph whose states are pipeline positions plus the three terminals
//!    and whose edges come from the summaries' segment outcomes. An empty
//!    product proves the property with zero solver calls.
//! 3. If the product has an accepting lasso, a depth-first **stem
//!    enumeration** walks concrete segment paths (the same
//!    depth-strided composition as Step 2), tracks the Büchi subset
//!    reached, and at each terminal asks whether that subset intersects
//!    the terminal's *fatal* states (states from which the fixed terminal
//!    letter read forever admits an accepting run). Each such candidate
//!    lasso's composed path constraint goes to the solver: `Unsat`
//!    discharges it, `Sat` materialises a concrete packet whose replay
//!    through the model runtime is judged by the direct trace evaluator.
//!
//! Header atoms (`dst(a.b.c.d)`) hold either at every position of a trace
//! or none, so they are handled by a case split: each truth assignment
//! contributes packet-byte constraints to the composed path and fixes the
//! atom inside the automaton's letters.

use crate::property::Property;
use crate::report::{Counterexample, Report, UnprovenPath, Verdict, VerificationStats};
use crate::summary::ElementSummary;
use crate::verifier::{materialise_packet, Verifier};
use dataplane_ir::value::BitVec;
use dataplane_ir::BinOp;
use dataplane_net::Packet;
use dataplane_pipeline::pipeline::Disposition;
use dataplane_pipeline::{model_run_fresh, ModelRun, Pipeline};
use dataplane_symbex::term::{self, Term, TermRef};
use dataplane_symbex::{interval_infeasible, SegmentOutcome, SolverResult};
use dataplane_temporal::{self as temporal, Atom, Buchi, Ltl, LtlSpec};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Frame offset of the IPv4 destination address the `dst(...)` atom reads
/// (Ethernet header 14 bytes + IPv4 destination at offset 16), matching the
/// reachability property's default layout.
const DST_OFFSET: i64 = 30;

/// The three trace terminals; index them after the pipeline elements in the
/// summary transition system.
const TERMINALS: [(Atom, &str); 3] = [
    (Atom::Forwarded, "forwarded"),
    (Atom::Dropped, "dropped"),
    (Atom::Crashed, "crashed"),
];

/// True if `packet`'s destination bytes equal `addr` (short packets have no
/// destination, so every `dst` atom is false on them).
fn packet_has_dst(packet: &[u8], addr: &[u8; 4]) -> bool {
    packet.len() >= (DST_OFFSET as usize) + 4
        && packet[DST_OFFSET as usize..DST_OFFSET as usize + 4] == addr[..]
}

/// The `dst` atoms of `spec` that hold for `packet`.
fn true_dst_atoms(spec: &LtlSpec, packet: &[u8]) -> Vec<Atom> {
    spec.formula()
        .atoms()
        .into_iter()
        .filter(|a| match a {
            Atom::Dst(addr) => packet_has_dst(packet, addr),
            _ => false,
        })
        .collect()
}

/// Decode a finished concrete run into the lasso word its trace denotes:
/// one letter per visited element, then the terminal letter (the cycle).
/// Header atoms are resolved against `packet` and hold at every position.
pub(crate) fn trace_letters(
    pipeline: &Pipeline,
    spec: &LtlSpec,
    packet: &[u8],
    run: &ModelRun,
) -> (Vec<BTreeSet<Atom>>, Vec<BTreeSet<Atom>>) {
    let constant: Vec<Atom> = true_dst_atoms(spec, packet);
    let stem: Vec<BTreeSet<Atom>> = run
        .hops
        .iter()
        .map(|&idx| {
            let mut letter: BTreeSet<Atom> = constant.iter().cloned().collect();
            letter.insert(Atom::At(pipeline.node(idx).name.clone()));
            letter
        })
        .collect();
    let terminal = match run.disposition {
        Disposition::Exited { .. } => Atom::Forwarded,
        Disposition::Dropped { .. } => Atom::Dropped,
        Disposition::Crashed { .. } => Atom::Crashed,
    };
    let mut cycle_letter: BTreeSet<Atom> = constant.into_iter().collect();
    cycle_letter.insert(terminal);
    (stem, vec![cycle_letter])
}

/// Judge a finished concrete run against a temporal spec: the run violates
/// the property iff its trace word fails the formula.
pub(crate) fn run_violates_temporal(
    pipeline: &Pipeline,
    spec: &LtlSpec,
    packet: &[u8],
    run: &ModelRun,
) -> bool {
    let (stem, cycle) = trace_letters(pipeline, spec, packet, run);
    !temporal::holds(spec.formula(), &stem, &cycle)
}

/// One truth assignment to the spec's `dst` atoms: the fixed atoms it adds
/// to every letter and the packet-byte constraints it imposes.
struct DstCase {
    atoms: Vec<Atom>,
    constraints: Vec<TermRef>,
}

/// Enumerate the feasible truth assignments over the distinct `dst` atoms.
/// Two distinct addresses can never hold together (same four bytes), so
/// only the all-false case and each singleton-true case exist.
fn dst_cases(spec: &LtlSpec) -> Vec<DstCase> {
    let addrs: Vec<[u8; 4]> = spec
        .formula()
        .atoms()
        .into_iter()
        .filter_map(|a| match a {
            Atom::Dst(addr) => Some(addr),
            _ => None,
        })
        .collect();
    let byte = |k: i64| -> TermRef { Arc::new(Term::PacketByte(DST_OFFSET + k)) };
    let eq_addr = |addr: &[u8; 4]| -> Vec<TermRef> {
        (0..4)
            .map(|k| {
                term::binary(
                    BinOp::Eq,
                    byte(k as i64),
                    term::constant(BitVec::new(8, addr[k] as u64)),
                )
            })
            .collect()
    };
    let ne_addr = |addr: &[u8; 4]| -> TermRef {
        // At least one destination byte differs.
        let mut t: Option<TermRef> = None;
        for (k, &octet) in addr.iter().enumerate() {
            let ne = term::binary(
                BinOp::Ne,
                byte(k as i64),
                term::constant(BitVec::new(8, octet as u64)),
            );
            t = Some(match t {
                None => ne,
                Some(prev) => term::binary(BinOp::Or, prev, ne),
            });
        }
        t.unwrap()
    };
    if addrs.is_empty() {
        return vec![DstCase {
            atoms: vec![],
            constraints: vec![],
        }];
    }
    let mut cases = Vec::new();
    // All false.
    cases.push(DstCase {
        atoms: vec![],
        constraints: addrs.iter().map(&ne_addr).collect(),
    });
    // Exactly one true.
    for (i, addr) in addrs.iter().enumerate() {
        let mut constraints = eq_addr(addr);
        for (j, other) in addrs.iter().enumerate() {
            if j != i {
                constraints.push(ne_addr(other));
            }
        }
        cases.push(DstCase {
            atoms: vec![Atom::Dst(*addr)],
            constraints,
        });
    }
    cases
}

/// The summary transition system: per-element successor sets (elements or
/// terminals) derived from segment outcomes, with self-looping terminals.
fn summary_transitions(pipeline: &Pipeline, summaries: &[Arc<ElementSummary>]) -> Vec<Vec<usize>> {
    let n = pipeline.len();
    let mut succ: Vec<Vec<usize>> = Vec::with_capacity(n + 3);
    for (idx, summary) in summaries.iter().enumerate() {
        let node = pipeline.node(idx);
        let mut out: Vec<usize> = summary
            .exploration
            .segments
            .iter()
            .map(|segment| match &segment.outcome {
                SegmentOutcome::Emitted(p) => node
                    .successors
                    .get(*p as usize)
                    .copied()
                    .flatten()
                    .unwrap_or(n), // exits the pipeline: Forwarded
                SegmentOutcome::Dropped => n + 1,
                SegmentOutcome::Crashed(_) => n + 2,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        succ.push(out);
    }
    for t in 0..3 {
        succ.push(vec![n + t]);
    }
    succ
}

/// Everything constant across the stem enumeration of one `dst` case.
struct LassoHunt<'a> {
    pipeline: &'a Pipeline,
    summaries: &'a [Arc<ElementSummary>],
    spec: &'a LtlSpec,
    buchi: &'a Buchi,
    /// Valuation (atom-id set) of each transition-system state.
    vals: Vec<BTreeSet<usize>>,
    /// Per terminal kind, the automaton's fatal states under that letter.
    fatal: [Vec<bool>; 3],
    /// The case's packet-byte constraints.
    case_constraints: Vec<TermRef>,
    max_paths: usize,
    validate: bool,
}

/// Mutable result bookkeeping of the enumeration.
struct HuntState<'s> {
    stats: &'s mut VerificationStats,
    counterexamples: Vec<Counterexample>,
    unproven: Vec<UnprovenPath>,
    budget_exhausted: bool,
    confirmed: bool,
}

impl Verifier {
    /// Decide a temporal property. `summaries` is Step 1's output; `stats`
    /// already carries the Step-1 bookkeeping.
    pub(crate) fn verify_temporal(
        &mut self,
        pipeline: &Pipeline,
        spec: &LtlSpec,
        summaries: &[Arc<ElementSummary>],
        mut stats: VerificationStats,
        start: Instant,
    ) -> Report {
        let property = Property::Temporal(spec.clone());
        let negated = Ltl::Not(Box::new(spec.formula().clone()));
        let buchi = temporal::buchi::compile(&negated);
        stats.buchi_states = buchi.len();

        let n = pipeline.len();
        let ts_succ = summary_transitions(pipeline, summaries);
        let cases = dst_cases(spec);

        // Valuations per case are needed both by the pre-check and the
        // enumeration; compute them lazily per case.
        let case_vals = |case: &DstCase| -> Vec<BTreeSet<usize>> {
            let fixed: BTreeSet<usize> =
                case.atoms.iter().filter_map(|a| buchi.atom_id(a)).collect();
            let mut vals: Vec<BTreeSet<usize>> = Vec::with_capacity(n + 3);
            for idx in 0..n {
                let mut v = fixed.clone();
                if let Some(id) = buchi.atom_id(&Atom::At(pipeline.node(idx).name.clone())) {
                    v.insert(id);
                }
                vals.push(v);
            }
            for (atom, _) in TERMINALS.iter() {
                let mut v = fixed.clone();
                if let Some(id) = buchi.atom_id(atom) {
                    v.insert(id);
                }
                vals.push(v);
            }
            vals
        };

        // ---- Emptiness pre-check over the explicit product -----------------
        let mut live_cases: Vec<(usize, Vec<BTreeSet<usize>>)> = Vec::new();
        let m = buchi.len();
        for (case_idx, case) in cases.iter().enumerate() {
            let vals = case_vals(case);
            let total = (n + 3) * m;
            let initials: Vec<usize> = buchi
                .initial
                .iter()
                .map(|&q| pipeline.entry() * m + q)
                .collect();
            let accepting: Vec<bool> = (0..total).map(|s| buchi.accepting[s % m]).collect();
            let mut reached: Vec<bool> = vec![false; total];
            for &i in &initials {
                reached[i] = true;
            }
            let mut succ = |s: usize| -> Vec<usize> {
                let (ts, q) = (s / m, s % m);
                let mut out = Vec::new();
                for q2 in buchi.successors(q, &vals[ts]) {
                    for &ts2 in &ts_succ[ts] {
                        out.push(ts2 * m + q2);
                    }
                }
                out.sort_unstable();
                out.dedup();
                for &t in &out {
                    reached[t] = true;
                }
                out
            };
            let lasso = temporal::find_accepting_lasso(total, &initials, &accepting, &mut succ);
            stats.product_states += reached.iter().filter(|r| **r).count();
            if lasso.is_some() {
                live_cases.push((case_idx, vals));
            }
        }

        if live_cases.is_empty() {
            // The over-approximate product is empty: no trace of any packet
            // can satisfy the negated spec.
            return Report {
                property,
                verdict: Verdict::Proven,
                counterexamples: vec![],
                unproven: vec![],
                stats,
                elapsed: start.elapsed(),
            };
        }

        // ---- Exact stem enumeration for the live cases ---------------------
        let mut state = HuntState {
            stats: &mut stats,
            counterexamples: Vec::new(),
            unproven: Vec::new(),
            budget_exhausted: false,
            confirmed: false,
        };
        for (case_idx, vals) in live_cases {
            if state.confirmed || state.budget_exhausted {
                break;
            }
            let case = &cases[case_idx];
            let fatal = [
                temporal::fatal_states(&buchi, &vals[n]),
                temporal::fatal_states(&buchi, &vals[n + 1]),
                temporal::fatal_states(&buchi, &vals[n + 2]),
            ];
            let hunt = LassoHunt {
                pipeline,
                summaries,
                spec,
                buchi: &buchi,
                vals,
                fatal,
                case_constraints: case.constraints.clone(),
                max_paths: self.options.max_composed_paths,
                validate: self.options.validate_counterexamples,
            };
            let mut composer = crate::compose::Composer::new();
            let entry = pipeline.entry();
            let stride = composer.alloc_stride(entry);
            let initial: BTreeSet<usize> = hunt.buchi.initial.iter().copied().collect();
            self.hunt_walk(
                &hunt,
                &mut state,
                &mut composer,
                entry,
                crate::compose::View::Original,
                stride,
                hunt.case_constraints.clone(),
                Vec::new(),
                initial,
            );
        }

        if state.budget_exhausted {
            let max = self.options.max_composed_paths;
            state.unproven.push(UnprovenPath {
                path: vec![],
                reason: format!("composed-path budget of {max} exhausted"),
            });
        }

        let counterexamples = state.counterexamples;
        let unproven = state.unproven;
        let verdict = if counterexamples.iter().any(|c| c.confirmed)
            || (!counterexamples.is_empty() && !self.options.validate_counterexamples)
        {
            Verdict::Violated
        } else if !counterexamples.is_empty() || !unproven.is_empty() {
            Verdict::Unknown
        } else {
            Verdict::Proven
        };
        Report {
            property,
            verdict,
            counterexamples,
            unproven,
            stats,
            elapsed: start.elapsed(),
        }
    }

    /// Depth-first enumeration of segment paths: compose constraints with
    /// the depth-strided namespaces (exactly like the instruction-bound
    /// walk), track the Büchi subset along the letters read, and decide
    /// candidate lassos at the terminals.
    #[allow(clippy::too_many_arguments)]
    fn hunt_walk(
        &self,
        hunt: &LassoHunt<'_>,
        state: &mut HuntState<'_>,
        composer: &mut crate::compose::Composer,
        element: dataplane_pipeline::ElementIdx,
        view: crate::compose::View,
        stride: u32,
        constraint: Vec<TermRef>,
        path: Vec<String>,
        subset: BTreeSet<usize>,
    ) {
        if state.confirmed || state.budget_exhausted {
            return;
        }
        let node = hunt.pipeline.node(element);
        // Read this element's letter.
        let after = hunt.buchi.subset_step(&subset, &hunt.vals[element]);
        if after.is_empty() {
            // The negated-spec automaton is dead: no extension of this
            // prefix can violate the property.
            return;
        }
        let mut seg_path_base = path;
        seg_path_base.push(node.name.clone());
        let summary = &hunt.summaries[element];
        let n = hunt.pipeline.len();
        for segment in &summary.exploration.segments {
            if state.confirmed || state.budget_exhausted {
                return;
            }
            let mut seg_constraint = constraint.clone();
            seg_constraint.extend(composer.rewrite_all(&view, stride, &segment.constraint));
            let next = segment
                .outcome
                .port()
                .and_then(|p| node.successors.get(p as usize).copied().flatten());
            match next {
                Some(next_element) if !segment.outcome.is_crash() => {
                    let new_view = composer.extend_view(&view, &segment.packet, stride);
                    let new_stride = composer.alloc_stride(next_element);
                    self.hunt_walk(
                        hunt,
                        state,
                        composer,
                        next_element,
                        new_view,
                        new_stride,
                        seg_constraint,
                        seg_path_base.clone(),
                        after.clone(),
                    );
                }
                _ => {
                    // Terminal: which of the three, and is the reached
                    // subset fatal under its letter?
                    let terminal = match &segment.outcome {
                        SegmentOutcome::Dropped => 1,
                        SegmentOutcome::Crashed(_) => 2,
                        SegmentOutcome::Emitted(_) => 0,
                    };
                    state.stats.composed_paths += 1;
                    if state.stats.composed_paths > hunt.max_paths {
                        state.budget_exhausted = true;
                        return;
                    }
                    let fatal = &hunt.fatal[terminal];
                    if !after.iter().any(|&q| fatal[q]) {
                        continue;
                    }
                    self.decide_lasso(
                        hunt,
                        state,
                        &seg_constraint,
                        &seg_path_base,
                        TERMINALS[terminal].1,
                        n + terminal,
                    );
                }
            }
        }
    }

    /// One candidate lasso: the composed stem constraint is checked for
    /// feasibility; a satisfiable one materialises a packet whose concrete
    /// replay is judged by the direct trace evaluator.
    fn decide_lasso(
        &self,
        hunt: &LassoHunt<'_>,
        state: &mut HuntState<'_>,
        constraint: &[TermRef],
        path: &[String],
        terminal_label: &str,
        _terminal_state: usize,
    ) {
        if interval_infeasible(constraint) {
            state.stats.prefilter_decided += 1;
            state.stats.discharged += 1;
            return;
        }
        state.stats.prefilter_passed += 1;
        state.stats.solver_calls += 1;
        match self.solver.check(constraint) {
            SolverResult::Unsat => {
                state.stats.discharged += 1;
            }
            SolverResult::Sat(model) => {
                state.stats.lasso_found += 1;
                let packet = materialise_packet(&model);
                let description = format!(
                    "accepting lasso: stem [{}] then ({})^w violates {}",
                    path.join(" -> "),
                    terminal_label,
                    hunt.spec
                );
                let confirmed = if hunt.validate {
                    let run = model_run_fresh(hunt.pipeline, Packet::from_bytes(packet.clone()));
                    run_violates_temporal(hunt.pipeline, hunt.spec, &packet, &run)
                } else {
                    false
                };
                if confirmed {
                    state.confirmed = true;
                }
                state.counterexamples.push(Counterexample {
                    packet,
                    path: path.to_vec(),
                    description,
                    confirmed,
                });
            }
            SolverResult::Unknown => {
                state.stats.model_search_aborts += 1;
                state.unproven.push(UnprovenPath {
                    path: path.to_vec(),
                    reason: format!(
                        "temporal feasibility check undecided for lasso ending ({terminal_label})^w"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;
    use crate::verifier::Verifier;
    use dataplane_pipeline::presets::{
        buggy_pipeline, firewall_pipeline, ip_router_pipeline, linear_router_pipeline,
        middlebox_pipeline,
    };

    fn decide(pipeline: &Pipeline, spec: &str) -> Report {
        let spec = LtlSpec::parse(spec).unwrap();
        let mut verifier = Verifier::new();
        verifier.verify(pipeline, &Property::Temporal(spec))
    }

    #[test]
    fn router_termination_is_proven() {
        let report = decide(&ip_router_pipeline(), "F (forwarded | dropped)");
        assert_eq!(report.verdict, Verdict::Proven, "{report}");
        assert!(report.stats.buchi_states > 0);
        assert!(report.stats.product_states > 0);
    }

    #[test]
    fn linear_router_fairness_is_proven() {
        let report = decide(
            &linear_router_pipeline(),
            "G (at(chk) -> F (forwarded | dropped))",
        );
        assert_eq!(report.verdict, Verdict::Proven, "{report}");
    }

    #[test]
    fn middlebox_nat_liveness_is_proven() {
        let report = decide(
            &middlebox_pipeline(),
            "G (at(nat) -> F (forwarded | dropped))",
        );
        assert_eq!(report.verdict, Verdict::Proven, "{report}");
    }

    #[test]
    fn firewall_never_drops_is_violated_with_confirmed_lasso() {
        let report = decide(&firewall_pipeline(vec![]), "G !dropped");
        assert_eq!(report.verdict, Verdict::Violated, "{report}");
        assert!(report.stats.lasso_found > 0);
        let ce = report
            .counterexamples
            .iter()
            .find(|c| c.confirmed)
            .expect("a confirmed lasso counterexample");
        // The reported lasso replays to a genuine violation.
        let pipeline = firewall_pipeline(vec![]);
        let spec = LtlSpec::parse("G !dropped").unwrap();
        let run = model_run_fresh(&pipeline, Packet::from_bytes(ce.packet.clone()));
        assert!(run_violates_temporal(&pipeline, &spec, &ce.packet, &run));
    }

    #[test]
    fn buggy_pipeline_termination_is_violated_by_crash() {
        let report = decide(&buggy_pipeline(), "F (forwarded | dropped)");
        assert_eq!(report.verdict, Verdict::Violated, "{report}");
        assert!(report.counterexamples.iter().any(|c| c.confirmed));
    }

    #[test]
    fn dst_atoms_case_split_decides() {
        // Packets to 10.0.0.1 eventually terminate — trivially true of all
        // packets, but forces the dst case split through the solver path.
        let report = decide(
            &ip_router_pipeline(),
            "G (dst(10.0.0.1) -> F (forwarded | dropped | crashed))",
        );
        assert_eq!(report.verdict, Verdict::Proven, "{report}");
    }

    #[test]
    fn vacuous_at_atom_is_proven_via_empty_product() {
        // No element named `ghost` exists, so the antecedent is false on
        // every trace: the negated-spec product is empty and the property
        // is proven without a single solver call.
        let report = decide(&ip_router_pipeline(), "G (at(ghost) -> F crashed)");
        assert_eq!(report.verdict, Verdict::Proven, "{report}");
        assert_eq!(report.stats.solver_calls, 0);
    }
}

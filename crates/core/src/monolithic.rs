//! The monolithic baseline: whole-pipeline symbolic execution without
//! decomposition.
//!
//! This is the stand-in for feeding the entire pipeline to a general-purpose
//! symbolic-execution engine, the comparison point of the paper's evaluation
//! ("when we fed the same code to the symbex engine without using pipeline
//! decomposition or any of the other presented ideas, verification did not
//! complete within 12 hours").
//!
//! Differences from the compositional verifier:
//!
//! * loops are fully **unrolled** (no mini-element decomposition),
//! * element explorations are **not** cached or reused — every pipeline
//!   position re-explores its element,
//! * paths are enumerated as the full **cross-product** of per-element paths
//!   (the `2^{k·n}` growth), with feasibility checked only at path ends.
//!
//! A budget caps the work so benchmarks terminate; hitting the budget is
//! reported as "did not complete", which is the honest analogue of the
//! paper's 12-hour timeout.

use crate::compose::{Composer, View};
use dataplane_pipeline::{ElementIdx, Pipeline};
use dataplane_symbex::term::TermRef;
use dataplane_symbex::{explore, EngineConfig, Exploration, Solver};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Budget and options of a monolithic run.
#[derive(Clone, Debug)]
pub struct MonolithicConfig {
    /// Maximum number of full pipeline paths to enumerate.
    pub max_paths: usize,
    /// Maximum wall-clock time to spend.
    pub max_time: Duration,
    /// Per-element engine budgets (loops are always unrolled here).
    pub max_segments_per_element: usize,
    /// Check the feasibility of complete paths with the solver (the paper's
    /// baseline does; switching it off isolates pure enumeration cost).
    pub check_feasibility: bool,
}

impl Default for MonolithicConfig {
    fn default() -> Self {
        MonolithicConfig {
            max_paths: 200_000,
            max_time: Duration::from_secs(30),
            max_segments_per_element: 100_000,
            check_feasibility: true,
        }
    }
}

/// The outcome of a monolithic exploration.
#[derive(Clone, Debug)]
pub struct MonolithicResult {
    /// True if the whole pipeline was explored within budget.
    pub completed: bool,
    /// Full pipeline paths enumerated.
    pub paths_explored: usize,
    /// Crashing paths that were found feasible (or assumed feasible when
    /// feasibility checking is off).
    pub feasible_crashes: usize,
    /// Total element explorations performed (one per pipeline position, no
    /// reuse).
    pub element_explorations: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Explore the pipeline as one piece, without decomposition.
pub fn explore_monolithic(pipeline: &Pipeline, config: &MonolithicConfig) -> MonolithicResult {
    let start = Instant::now();
    let solver = Solver::new();
    let engine = EngineConfig::monolithic(config.max_segments_per_element, 5_000_000);

    let mut ctx = MonoCtx {
        pipeline,
        config,
        solver,
        engine,
        explorations: HashMap::new(),
        composer: Composer::new(),
        paths: 0,
        crashes: 0,
        element_explorations: 0,
        start,
        out_of_budget: false,
    };

    let entry = pipeline.entry();
    let stride = ctx.composer.alloc_stride(entry);
    ctx.walk(entry, View::Original, stride, Vec::new());

    MonolithicResult {
        completed: !ctx.out_of_budget,
        paths_explored: ctx.paths,
        feasible_crashes: ctx.crashes,
        element_explorations: ctx.element_explorations,
        elapsed: start.elapsed(),
    }
}

struct MonoCtx<'a> {
    pipeline: &'a Pipeline,
    config: &'a MonolithicConfig,
    solver: Solver,
    engine: EngineConfig,
    /// Cached *only per position*, to avoid re-exploring the same position
    /// when backtracking through it; distinct positions always re-explore.
    explorations: HashMap<ElementIdx, Exploration>,
    composer: Composer,
    paths: usize,
    crashes: usize,
    element_explorations: usize,
    start: Instant,
    out_of_budget: bool,
}

impl<'a> MonoCtx<'a> {
    fn budget_left(&self) -> bool {
        self.paths < self.config.max_paths && self.start.elapsed() < self.config.max_time
    }

    fn exploration_for(&mut self, element: ElementIdx) -> Option<&Exploration> {
        if !self.explorations.contains_key(&element) {
            self.element_explorations += 1;
            let program = self.pipeline.node(element).element.model();
            match explore(&program, &self.engine) {
                Ok(result) => {
                    self.explorations.insert(element, result);
                }
                Err(_) => {
                    // The element alone blew the unrolling budget — the whole
                    // monolithic run cannot complete.
                    self.out_of_budget = true;
                    return None;
                }
            }
        }
        self.explorations.get(&element)
    }

    fn walk(&mut self, element: ElementIdx, view: View, stride: u32, constraint: Vec<TermRef>) {
        if !self.budget_left() {
            self.out_of_budget = true;
            return;
        }
        let Some(exploration) = self.exploration_for(element) else {
            return;
        };
        // Clone the segment list so the borrow on `self` ends before
        // recursing (segments are cheap to clone relative to solver work).
        let segments = exploration.segments.clone();
        let node = self.pipeline.node(element);
        let successors = node.successors.clone();

        for segment in &segments {
            if !self.budget_left() {
                self.out_of_budget = true;
                return;
            }
            let mut path_constraint = constraint.clone();
            path_constraint.extend(
                self.composer
                    .rewrite_all(&view, stride, &segment.constraint),
            );
            let next = segment
                .outcome
                .port()
                .and_then(|p| successors.get(p as usize).copied().flatten());
            match next {
                Some(next_element) if !segment.outcome.is_crash() => {
                    let new_view = self.composer.extend_view(&view, &segment.packet, stride);
                    let new_stride = self.composer.alloc_stride(next_element);
                    self.walk(next_element, new_view, new_stride, path_constraint);
                }
                _ => {
                    // A complete pipeline path.
                    self.paths += 1;
                    if segment.outcome.is_crash() {
                        let feasible = if self.config.check_feasibility {
                            !self.solver.check(&path_constraint).is_unsat()
                        } else {
                            true
                        };
                        if feasible {
                            self.crashes += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::{CheckIPHeader, DecTTL, EthDecap, Sink};
    use dataplane_pipeline::presets::{buggy_pipeline, linear_router_pipeline};
    use dataplane_pipeline::Pipeline;

    fn small_pipeline() -> Pipeline {
        let mut b = Pipeline::builder();
        let strip = b.add("strip", Box::new(EthDecap::new()));
        let chk = b.add("chk", Box::new(CheckIPHeader::new()));
        let ttl = b.add("ttl", Box::new(DecTTL::new()));
        let out = b.add("out", Box::new(Sink::new()));
        b.chain(&[strip, chk, ttl, out]);
        b.build().unwrap()
    }

    #[test]
    fn small_pipeline_completes_and_finds_no_crash() {
        let pipeline = small_pipeline();
        let result = explore_monolithic(&pipeline, &MonolithicConfig::default());
        assert!(result.completed, "small pipeline should finish: {result:?}");
        assert_eq!(result.feasible_crashes, 0);
        assert!(result.paths_explored > 0);
        assert!(result.element_explorations >= 4);
    }

    #[test]
    fn buggy_pipeline_crashes_are_found() {
        // A loop-free buggy pipeline (the loop-heavy planted bug is exactly
        // what makes the monolithic baseline blow its budget, which the next
        // test checks): the TTL division bug must be reported with a feasible
        // crashing path.
        use dataplane_pipeline::elements::BuggyDecTTL;
        let mut b = Pipeline::builder();
        let strip = b.add("strip", Box::new(EthDecap::new()));
        let chk = b.add("chk", Box::new(CheckIPHeader::new()));
        let ttl = b.add("ttl", Box::new(BuggyDecTTL::new()));
        let out = b.add("out", Box::new(Sink::new()));
        b.chain(&[strip, chk, ttl, out]);
        let pipeline = b.build().unwrap();

        let result = explore_monolithic(
            &pipeline,
            &MonolithicConfig {
                max_paths: 50_000,
                max_time: Duration::from_secs(20),
                ..MonolithicConfig::default()
            },
        );
        assert!(result.completed, "{result:?}");
        assert!(
            result.feasible_crashes > 0,
            "the planted bug must show up: {result:?}"
        );
    }

    #[test]
    fn loop_heavy_buggy_pipeline_blows_the_monolithic_budget() {
        let pipeline = buggy_pipeline();
        let result = explore_monolithic(
            &pipeline,
            &MonolithicConfig {
                max_paths: 50_000,
                max_time: Duration::from_secs(10),
                max_segments_per_element: 20_000,
                check_feasibility: false,
            },
        );
        assert!(!result.completed, "{result:?}");
    }

    #[test]
    fn full_router_exhausts_the_budget() {
        // With loops unrolled and no decomposition, the full router (which
        // includes the IP-options walker) must not complete within a small
        // budget — the paper's "did not complete within 12 hours" in
        // miniature.
        let pipeline = linear_router_pipeline();
        let result = explore_monolithic(
            &pipeline,
            &MonolithicConfig {
                max_paths: 2_000,
                max_time: Duration::from_secs(5),
                max_segments_per_element: 2_000,
                check_feasibility: false,
            },
        );
        assert!(!result.completed, "expected budget exhaustion: {result:?}");
    }

    #[test]
    fn path_budget_is_respected() {
        let pipeline = small_pipeline();
        let result = explore_monolithic(
            &pipeline,
            &MonolithicConfig {
                max_paths: 3,
                ..MonolithicConfig::default()
            },
        );
        assert!(result.paths_explored <= 4);
    }
}

//! The compositional verifier: Step 1 (per-element summaries and suspect
//! tagging) followed by Step 2 (composition of suspects into pipeline paths
//! and feasibility checking), as described in §3 of the paper.

use crate::compose::{bind_packet_bytes, Composer, View};
use crate::property::Property;
use crate::report::{
    Counterexample, InstructionBoundReport, Report, UnprovenPath, Verdict, VerificationStats,
};
use crate::summary::{ElementSummary, SummaryCache};
use dataplane_ir::{DsClass, DsId};
use dataplane_net::Packet;
use dataplane_pipeline::pipeline::Disposition;
use dataplane_pipeline::{ElementIdx, Pipeline};
use dataplane_symbex::term::{self, Term, TermRef};
use dataplane_symbex::{
    CheckDiagnostics, EngineConfig, Segment, SegmentOutcome, Solver, SolverResult,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Runs a batch of independent Step-2 feasibility-check jobs. Implementations
/// may run the jobs in any order, concurrently; every job must have returned
/// before `run_batch` does. The verifier's sequential fallback simply runs
/// them in submission order, so an executor never changes *what* is computed
/// — only on how many cores.
pub trait ComposeExecutor: Send + Sync {
    /// Run every job to completion.
    fn run_batch<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>);
}

/// Step-2 parallelism configuration: how the suspect × prefix feasibility
/// checks inside one composition are dispatched. The checks are independent
/// solver calls, so fanning them out over a thread pool preserves the report
/// byte-for-byte (results are folded back in enumeration order) while the
/// slowest verification phase scales with cores.
#[derive(Clone, Default)]
pub struct ParallelComposition {
    executor: Option<Arc<dyn ComposeExecutor>>,
}

impl ParallelComposition {
    /// Run feasibility checks inline, in enumeration order (the default).
    pub fn sequential() -> Self {
        ParallelComposition::default()
    }

    /// Dispatch feasibility checks over `executor`.
    pub fn over(executor: Arc<dyn ComposeExecutor>) -> Self {
        ParallelComposition {
            executor: Some(executor),
        }
    }

    /// The configured executor, if any.
    pub fn executor(&self) -> Option<&Arc<dyn ComposeExecutor>> {
        self.executor.as_ref()
    }

    /// True when checks will be dispatched to an executor.
    pub fn is_parallel(&self) -> bool {
        self.executor.is_some()
    }
}

impl fmt::Debug for ParallelComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelComposition")
            .field("parallel", &self.is_parallel())
            .finish()
    }
}

/// Options controlling the verifier's behaviour and budgets.
#[derive(Clone, Debug)]
pub struct VerifierOptions {
    /// Check the feasibility of every prefix while composing and prune
    /// infeasible ones (recommended; the ablation bench switches it off).
    pub prune_prefixes: bool,
    /// Replay counterexample packets on the concrete pipeline to confirm
    /// them.
    pub validate_counterexamples: bool,
    /// Maximum number of composed paths to examine before giving up.
    pub max_composed_paths: usize,
    /// Symbolic-execution configuration used for element summaries.
    pub engine: EngineConfig,
    /// How Step-2 feasibility checks are dispatched (sequential by default).
    pub parallel: ParallelComposition,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            prune_prefixes: true,
            validate_counterexamples: true,
            max_composed_paths: 100_000,
            engine: EngineConfig::decomposed(),
            parallel: ParallelComposition::sequential(),
        }
    }
}

/// The compositional dataplane verifier.
pub struct Verifier {
    /// Verification options.
    pub options: VerifierOptions,
    solver: Solver,
    cache: SummaryCache,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// A verifier with default options.
    pub fn new() -> Self {
        Verifier::with_options(VerifierOptions::default())
    }

    /// A verifier with explicit options.
    pub fn with_options(options: VerifierOptions) -> Self {
        Verifier {
            options,
            solver: Solver::new(),
            cache: SummaryCache::new(),
        }
    }

    /// Statistics of the summary cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Pre-load element summaries computed elsewhere (the parallel
    /// orchestrator's Step-1 workers). Every seeded element behaviour is
    /// then served from the cache during [`Verifier::verify`], so Step 1
    /// performs no exploration of its own and the verdict is exactly what a
    /// sequential run would produce.
    pub fn seed_summaries(&mut self, summaries: impl IntoIterator<Item = Arc<ElementSummary>>) {
        for summary in summaries {
            self.cache.insert(summary);
        }
    }

    /// Verify `property` over `pipeline`.
    pub fn verify(&mut self, pipeline: &Pipeline, property: &Property) -> Report {
        let start = Instant::now();
        let mut stats = VerificationStats {
            elements: pipeline.len(),
            ..Default::default()
        };

        // ---------------- Step 1: summaries and suspects -------------------
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let summaries = match self.summarise(pipeline) {
            Ok(s) => s,
            Err(e) => {
                return Report {
                    property: property.clone(),
                    verdict: Verdict::Unknown,
                    counterexamples: vec![],
                    unproven: vec![UnprovenPath {
                        path: vec![],
                        reason: format!("element exploration exceeded its budget: {e}"),
                    }],
                    stats,
                    elapsed: start.elapsed(),
                }
            }
        };
        stats.summaries_computed = (self.cache.misses() - misses_before) as usize;
        stats.summaries_reused = (self.cache.hits() - hits_before) as usize;
        stats.total_segments = summaries.iter().map(|s| s.segment_count()).sum();

        let mut suspects: Vec<Vec<usize>> = Vec::with_capacity(pipeline.len());
        for (idx, summary) in summaries.iter().enumerate() {
            let node = pipeline.node(idx);
            let mut element_suspects = Vec::new();
            for (seg_idx, segment) in summary.exploration.segments.iter().enumerate() {
                if !self.is_suspect(property, &node.name, segment) {
                    continue;
                }
                // Local feasibility pre-check: a segment that is infeasible
                // even in isolation cannot be violated in any pipeline.
                stats.solver_calls += 1;
                if self.solver.check(&segment.constraint).is_unsat() {
                    continue;
                }
                element_suspects.push(seg_idx);
            }
            stats.suspects += element_suspects.len();
            suspects.push(element_suspects);
        }

        if stats.suspects == 0 {
            return Report {
                property: property.clone(),
                verdict: Verdict::Proven,
                counterexamples: vec![],
                unproven: vec![],
                stats,
                elapsed: start.elapsed(),
            };
        }

        // ---------------- Step 2: composition ------------------------------
        // The walk composes prefixes sequentially (prefix pruning steers
        // which subtrees are entered at all) and *enumerates* the suspect ×
        // prefix feasibility checks into a bounded buffer; each full batch
        // is decided — inline, or across the configured `ParallelComposition`
        // executor — with outcomes folded back in enumeration order, which
        // keeps the report byte-identical between the two modes while
        // holding at most one batch of composed constraints in memory.
        let mut ctx = ComposeCtx {
            pipeline,
            property,
            summaries: &summaries,
            suspects: &suspects,
            composer: Composer::new(),
            pending: Vec::new(),
            hints: build_hints(property),
            counterexamples: Vec::new(),
            unproven: Vec::new(),
            stats: &mut stats,
            options: &self.options,
            solver: &self.solver,
            budget_exhausted: false,
        };
        let entry = pipeline.entry();
        let first_stride = ctx.composer.alloc_stride(entry);
        ctx.walk(
            entry,
            View::Original,
            first_stride,
            Vec::new(),
            Vec::new(),
            0,
        );
        ctx.flush_pending();
        let budget_exhausted = ctx.budget_exhausted;
        let counterexamples = ctx.counterexamples;
        let mut unproven = ctx.unproven;
        if budget_exhausted {
            unproven.push(UnprovenPath {
                path: vec![],
                reason: format!(
                    "composed-path budget of {} exhausted",
                    self.options.max_composed_paths
                ),
            });
        }

        let verdict = if counterexamples.iter().any(|c| c.confirmed)
            || (!counterexamples.is_empty() && !self.options.validate_counterexamples)
        {
            Verdict::Violated
        } else if !counterexamples.is_empty() || !unproven.is_empty() {
            Verdict::Unknown
        } else {
            Verdict::Proven
        };

        Report {
            property: property.clone(),
            verdict,
            counterexamples,
            unproven,
            stats,
            elapsed: start.elapsed(),
        }
    }

    /// Establish the pipeline's per-packet instruction bound and a witness
    /// packet (the paper's second experiment: "the longest pipeline executes
    /// up to about 3600 instructions per packet, and we also identified the
    /// packet that yields this maximum").
    pub fn max_instructions(&mut self, pipeline: &Pipeline) -> InstructionBoundReport {
        let start = Instant::now();
        let summaries = match self.summarise(pipeline) {
            Ok(s) => s,
            Err(_) => {
                return InstructionBoundReport {
                    max_instructions: 0,
                    witness: None,
                    path: vec![],
                    approximate: true,
                    paths_considered: 0,
                    feasible_paths: 0,
                    elapsed: start.elapsed(),
                }
            }
        };

        struct Best {
            instructions: u64,
            witness: Option<Vec<u8>>,
            path: Vec<String>,
            approximate: bool,
        }
        let mut best = Best {
            instructions: 0,
            witness: None,
            path: vec![],
            approximate: false,
        };
        let mut paths_considered = 0usize;
        let mut feasible_paths = 0usize;

        // Depth-first enumeration of full pipeline paths.
        #[allow(clippy::too_many_arguments)]
        fn walk(
            verifier: &Verifier,
            pipeline: &Pipeline,
            summaries: &[Arc<ElementSummary>],
            composer: &mut Composer,
            element: ElementIdx,
            view: View,
            stride: u32,
            constraint: Vec<TermRef>,
            path: Vec<String>,
            instructions: u64,
            approximate: bool,
            paths_considered: &mut usize,
            feasible_paths: &mut usize,
            best: &mut Best,
            max_paths: usize,
        ) {
            if *paths_considered >= max_paths {
                return;
            }
            let summary = &summaries[element];
            let node = pipeline.node(element);
            for segment in &summary.exploration.segments {
                let mut seg_constraint = constraint.clone();
                seg_constraint.extend(composer.rewrite_all(&view, stride, &segment.constraint));
                let mut seg_path = path.clone();
                seg_path.push(node.name.clone());
                let seg_instr = instructions + segment.instructions;
                let seg_approx = approximate || segment.approximate;
                let next = segment
                    .outcome
                    .port()
                    .and_then(|p| node.successors.get(p as usize).copied().flatten());
                match next {
                    Some(next_element) if !segment.outcome.is_crash() => {
                        let new_view = composer.extend_view(&view, &segment.packet, stride);
                        let new_stride = composer.alloc_stride(next_element);
                        walk(
                            verifier,
                            pipeline,
                            summaries,
                            composer,
                            next_element,
                            new_view,
                            new_stride,
                            seg_constraint,
                            seg_path,
                            seg_instr,
                            seg_approx,
                            paths_considered,
                            feasible_paths,
                            best,
                            max_paths,
                        );
                    }
                    _ => {
                        // Terminal: the packet leaves the pipeline here (or
                        // the path crashes / drops).
                        *paths_considered += 1;
                        match verifier.solver.check(&seg_constraint) {
                            SolverResult::Unsat => {}
                            result => {
                                *feasible_paths += 1;
                                if seg_instr > best.instructions {
                                    best.instructions = seg_instr;
                                    best.approximate = seg_approx;
                                    best.path = seg_path.clone();
                                    best.witness = match result {
                                        SolverResult::Sat(model) => {
                                            Some(materialise_packet(&model))
                                        }
                                        _ => None,
                                    };
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut composer = Composer::new();
        let entry = pipeline.entry();
        let stride = composer.alloc_stride(entry);
        walk(
            self,
            pipeline,
            &summaries,
            &mut composer,
            entry,
            View::Original,
            stride,
            Vec::new(),
            Vec::new(),
            0,
            false,
            &mut paths_considered,
            &mut feasible_paths,
            &mut best,
            self.options.max_composed_paths,
        );

        InstructionBoundReport {
            max_instructions: best.instructions,
            witness: best.witness,
            path: best.path,
            approximate: best.approximate,
            paths_considered,
            feasible_paths,
            elapsed: start.elapsed(),
        }
    }

    fn summarise(
        &mut self,
        pipeline: &Pipeline,
    ) -> Result<Vec<Arc<ElementSummary>>, dataplane_symbex::ExploreError> {
        let mut summaries = Vec::with_capacity(pipeline.len());
        for (_, node) in pipeline.iter() {
            summaries.push(
                self.cache
                    .get_or_explore(node.element.as_ref(), &self.options.engine)?,
            );
        }
        Ok(summaries)
    }

    fn is_suspect(&self, property: &Property, instance_name: &str, segment: &Segment) -> bool {
        match property {
            Property::Reachability {
                deliver_to,
                may_drop,
                ..
            } => {
                if segment.outcome.is_crash() {
                    return true;
                }
                if matches!(segment.outcome, SegmentOutcome::Dropped) {
                    let name = instance_name.to_string();
                    return !deliver_to.contains(&name) && !may_drop.contains(&name);
                }
                false
            }
            _ => property.is_suspect_segment(segment),
        }
    }
}

/// Build concrete packet bytes from a solver model: the bytes the model
/// mentions, zero-extended to the model's packet length (capped at a sane
/// frame size).
pub fn materialise_packet(model: &dataplane_symbex::Assignment) -> Vec<u8> {
    // The model's packet length is authoritative: the concrete packet must
    // have exactly that many bytes (capped at a sane jumbo-frame size), with
    // any bytes the model did not pin set to zero.
    let len = (model.packet_len as usize).min(4096);
    let mut bytes = model.packet.clone();
    bytes.resize(len, 0);
    bytes
}

/// Upper bound on buffered feasibility checks: large enough to saturate a
/// worker pool, small enough that the composed constraints of a huge walk
/// are not all resident at once.
const CHECK_BATCH: usize = 1024;

/// Mutable context for the Step-2 walk over the pipeline.
struct ComposeCtx<'a> {
    pipeline: &'a Pipeline,
    property: &'a Property,
    summaries: &'a [Arc<ElementSummary>],
    suspects: &'a [Vec<usize>],
    composer: Composer,
    /// Enumerated-but-undecided checks, flushed at [`CHECK_BATCH`].
    pending: Vec<PendingCheck>,
    hints: Vec<dataplane_symbex::Assignment>,
    counterexamples: Vec<Counterexample>,
    unproven: Vec<UnprovenPath>,
    stats: &'a mut VerificationStats,
    options: &'a VerifierOptions,
    solver: &'a Solver,
    budget_exhausted: bool,
}

/// One suspect × prefix feasibility check enumerated by the walk, decided in
/// phase 2 (possibly on another worker thread).
struct PendingCheck {
    /// The element whose suspect segment is checked.
    element: ElementIdx,
    /// Index of the suspect segment within that element's summary.
    seg_idx: usize,
    /// The fully composed, property-contextualised constraint.
    constraint: Vec<TermRef>,
    /// Instance names along the composed path, ending at `element`.
    path: Vec<String>,
}

/// What one feasibility check established.
enum CheckOutcome {
    /// Infeasible (directly, or via the stateful-element second chance).
    Discharged,
    /// Feasible: a concrete (possibly replay-confirmed) counterexample.
    Violation(Counterexample),
    /// The solver gave up; the reason names the stage that aborted.
    Undecided(UnprovenPath),
}

/// Immutable context shared by phase-2 feasibility checks. Everything in
/// here is `Sync`, so a [`ComposeExecutor`] can hand `&CheckCtx` to many
/// worker threads at once.
struct CheckCtx<'a> {
    pipeline: &'a Pipeline,
    property: &'a Property,
    summaries: &'a [Arc<ElementSummary>],
    options: &'a VerifierOptions,
    solver: &'a Solver,
    hints: &'a [dataplane_symbex::Assignment],
}

/// Build hint assignments for the solver's model search: structurally valid
/// packets (correct version, IHL, lengths, checksums) of the classes the
/// paper's workloads contain. The generic constraint search is unlikely to
/// stumble on a packet whose Internet checksum verifies; these templates give
/// it realistic starting points, and every returned model is still verified
/// against the constraints before being reported.
fn build_hints(property: &Property) -> Vec<dataplane_symbex::Assignment> {
    use dataplane_net::workload::{PacketClass, WorkloadConfig, WorkloadGen, WorkloadMix};
    let mut packets: Vec<Vec<u8>> = Vec::new();
    // A spread of well-formed and adversarial frames.
    packets.extend(
        WorkloadGen::adversarial(0x7E57)
            .batch(24)
            .into_iter()
            .map(|p| p.into_bytes()),
    );
    for class in [
        PacketClass::Udp,
        PacketClass::WithIpOptions,
        PacketClass::ExpiringTtl,
        PacketClass::TcpSyn,
    ] {
        packets.extend(
            WorkloadGen::new(WorkloadConfig {
                seed: 0x7E58,
                mix: WorkloadMix::only(class),
                ..WorkloadConfig::default()
            })
            .batch(6)
            .into_iter()
            .map(|p| p.into_bytes()),
        );
    }
    // For reachability the destination is pinned, so provide templates that
    // carry exactly that destination (their checksums are then consistent
    // with the bound bytes).
    if let Property::Reachability {
        dst, dst_offset, ..
    } = property
    {
        let extra: Vec<Vec<u8>> = packets
            .iter()
            .take(16)
            .map(|bytes| {
                let mut b = bytes.clone();
                let off = *dst_offset as usize;
                if b.len() >= off + 4 {
                    b[off..off + 4].copy_from_slice(&dst.octets());
                    // Fix the IPv4 header checksum if the destination sits in
                    // a plausible IPv4 header (offset >= 16 implies an
                    // Ethernet + IP layout with the header at 14, offset 16
                    // implies a bare IP packet).
                    let ip_start = if *dst_offset >= 30 { 14 } else { 0 };
                    if b.len() >= ip_start + 20 {
                        let mut hdr = b[ip_start..].to_vec();
                        if dataplane_net::Ipv4Header::rewrite_checksum(&mut hdr) {
                            let hl = ((hdr[0] & 0x0f) as usize) * 4;
                            b[ip_start..ip_start + hl].copy_from_slice(&hdr[..hl]);
                        }
                    }
                }
                b
            })
            .collect();
        packets.extend(extra);
    }
    packets
        .into_iter()
        .map(|bytes| dataplane_symbex::Assignment::from_packet(&bytes))
        .collect()
}

/// Replace reads of *static* data structures with the values installed by
/// the element's configuration (the paper's "certain properties can only
/// be proved for a specific configuration"): reads with a concrete key
/// are looked up directly; reads of small tables with a symbolic key
/// become a select chain over the table's populated entries.
fn concretise_static_reads(
    pipeline: &Pipeline,
    composer: &Composer,
    mut terms: Vec<TermRef>,
) -> Vec<TermRef> {
    // The select-chain expansion is only worthwhile (and only bounded)
    // for small tables.
    const MAX_CHAIN: usize = 32;
    // Concretising one read can make another read's key concrete, so run
    // a few passes until the terms stop changing.
    for _ in 0..3 {
        let next: Vec<TermRef> = terms
            .iter()
            .map(|t| {
                term::substitute(t, &|leaf| {
                    if let Term::DsRead {
                        ds,
                        key,
                        seq,
                        width,
                    } = leaf
                    {
                        let element_idx = composer.element_of_id(*seq)?;
                        let element = pipeline.node(element_idx).element.as_ref();
                        let program = element.model();
                        let decl = program.ds(*ds)?;
                        if decl.class != DsClass::Static {
                            return None;
                        }
                        let contents = element.model_state().get(ds).cloned().unwrap_or_default();
                        if let Some(k) = key.as_const() {
                            let value = contents
                                .iter()
                                .find(|(ck, _)| *ck == k.as_u64())
                                .map(|(_, v)| *v)
                                .unwrap_or(decl.default);
                            return Some(term::constant(dataplane_ir::BitVec::new(*width, value)));
                        }
                        if contents.len() <= MAX_CHAIN {
                            // Symbolic key over a small table: expand to
                            // select(key == k1, v1, select(key == k2, ...)).
                            let mut chain =
                                term::constant(dataplane_ir::BitVec::new(*width, decl.default));
                            for (k, v) in &contents {
                                chain = term::select(
                                    term::binary(
                                        dataplane_ir::BinOp::Eq,
                                        key.clone(),
                                        term::constant(dataplane_ir::BitVec::new(
                                            decl.key_width,
                                            *k,
                                        )),
                                    ),
                                    term::constant(dataplane_ir::BitVec::new(*width, *v)),
                                    chain,
                                );
                            }
                            return Some(chain);
                        }
                        None
                    } else {
                        None
                    }
                })
            })
            .collect();
        let changed = next != terms;
        terms = next;
        if !changed {
            break;
        }
    }
    terms
}

impl<'a> ComposeCtx<'a> {
    /// Walk the pipeline DAG from `element`, carrying the composed prefix.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        &mut self,
        element: ElementIdx,
        view: View,
        stride: u32,
        prefix_constraint: Vec<TermRef>,
        prefix_path: Vec<String>,
        prefix_instructions: u64,
    ) {
        if self.stats.composed_paths >= self.options.max_composed_paths {
            self.budget_exhausted = true;
            return;
        }
        self.stats.composed_paths += 1;
        let node = self.pipeline.node(element);
        let summary = &self.summaries[element];
        let mut path = prefix_path.clone();
        path.push(node.name.clone());

        // Enumerate this element's suspects against the composed prefix; the
        // actual solver calls run in phase 2.
        for &seg_idx in &self.suspects[element] {
            let segment = &summary.exploration.segments[seg_idx];
            // For the instruction-bound property, only paths whose cumulative
            // count exceeds the bound matter.
            if let Property::BoundedInstructions { max_instructions } = self.property {
                if !segment.outcome.is_crash()
                    && prefix_instructions + segment.instructions <= *max_instructions
                {
                    continue;
                }
            }
            let mut constraint = prefix_constraint.clone();
            constraint.extend(
                self.composer
                    .rewrite_all(&view, stride, &segment.constraint),
            );
            self.pending.push(PendingCheck {
                element,
                seg_idx,
                constraint: self.apply_property_context(constraint),
                path: path.clone(),
            });
            if self.pending.len() >= CHECK_BATCH {
                self.flush_pending();
            }
        }

        // Extend the prefix through every forwarding segment.
        for segment in &summary.exploration.segments {
            let Some(port) = segment.outcome.port() else {
                continue;
            };
            let Some(Some(next)) = node.successors.get(port as usize).copied() else {
                continue;
            };
            let mut constraint = prefix_constraint.clone();
            constraint.extend(
                self.composer
                    .rewrite_all(&view, stride, &segment.constraint),
            );
            if self.options.prune_prefixes {
                self.stats.solver_calls += 1;
                if self
                    .solver
                    .check(&self.apply_property_context(constraint.clone()))
                    .is_unsat()
                {
                    continue;
                }
            }
            let new_view = self.composer.extend_view(&view, &segment.packet, stride);
            let new_stride = self.composer.alloc_stride(next);
            self.walk(
                next,
                new_view,
                new_stride,
                constraint,
                path.clone(),
                prefix_instructions + segment.instructions,
            );
        }
    }

    /// Add the property's input assumptions (e.g. the reachability
    /// destination binding) and concretise static state.
    fn apply_property_context(&self, constraint: Vec<TermRef>) -> Vec<TermRef> {
        match self.property {
            Property::Reachability {
                dst, dst_offset, ..
            } => {
                let octets = dst.octets();
                let bindings: Vec<(i64, u8)> = octets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (*dst_offset as i64 + i as i64, *b))
                    .collect();
                let bound = bind_packet_bytes(&constraint, &bindings);
                concretise_static_reads(self.pipeline, &self.composer, bound)
            }
            _ => constraint,
        }
    }

    /// Decide every buffered check and fold the outcomes — in enumeration
    /// order, so the report is identical however the batch was executed.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let check_ctx = CheckCtx {
            pipeline: self.pipeline,
            property: self.property,
            summaries: self.summaries,
            options: self.options,
            solver: self.solver,
            hints: &self.hints,
        };
        let outcomes = check_ctx.run_all(&pending);
        for (outcome, diag) in outcomes {
            self.stats.solver_calls += 1;
            self.stats.fm_budget_aborts += usize::from(diag.fm_budget_exhausted);
            self.stats.model_search_aborts += usize::from(diag.model_search_exhausted);
            match outcome {
                CheckOutcome::Discharged => self.stats.discharged += 1,
                CheckOutcome::Violation(ce) => self.counterexamples.push(ce),
                CheckOutcome::Undecided(up) => self.unproven.push(up),
            }
        }
    }
}

impl<'a> CheckCtx<'a> {
    /// Decide every pending check, inline or across the configured
    /// executor's workers. The returned outcomes are in `pending` order
    /// regardless of execution order.
    fn run_all(&self, pending: &[PendingCheck]) -> Vec<(CheckOutcome, CheckDiagnostics)> {
        let slots: Vec<Mutex<Option<(CheckOutcome, CheckDiagnostics)>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        match self.options.parallel.executor() {
            Some(executor) if pending.len() > 1 => {
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = pending
                    .iter()
                    .zip(&slots)
                    .map(|(check, slot)| {
                        Box::new(move || {
                            *slot.lock().expect("check slot") = Some(self.run_one(check));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                executor.run_batch(jobs);
            }
            _ => {
                for (check, slot) in pending.iter().zip(&slots) {
                    *slot.lock().expect("check slot") = Some(self.run_one(check));
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("check slot")
                    .expect("every check ran")
            })
            .collect()
    }

    /// Decide one suspect × prefix feasibility check.
    fn run_one(&self, check: &PendingCheck) -> (CheckOutcome, CheckDiagnostics) {
        let node = self.pipeline.node(check.element);
        let segment = &self.summaries[check.element].exploration.segments[check.seg_idx];
        let (result, diag) = self
            .solver
            .check_with_hints_diagnosed(&check.constraint, self.hints);
        let outcome = match result {
            SolverResult::Unsat => CheckOutcome::Discharged,
            SolverResult::Sat(model) => {
                let packet = self.materialise_counterexample(&model);
                let confirmed = self.options.validate_counterexamples
                    && self.confirm(&packet, check.element, segment);
                CheckOutcome::Violation(Counterexample {
                    packet,
                    path: check.path.clone(),
                    description: format!(
                        "{} at element '{}'",
                        describe_outcome(&segment.outcome),
                        node.name
                    ),
                    confirmed,
                })
            }
            SolverResult::Unknown => {
                // Second chance: the stateful-element analysis (reads of
                // never-written private state can be replaced by the
                // default value).
                if self.discharged_by_ds_analysis(&check.constraint, check.element) {
                    CheckOutcome::Discharged
                } else {
                    let stages = diag.describe();
                    let why = if stages.is_empty() {
                        String::new()
                    } else {
                        format!(" ({stages})")
                    };
                    CheckOutcome::Undecided(UnprovenPath {
                        path: check.path.clone(),
                        reason: format!(
                            "could not decide feasibility of {} at '{}'{why}",
                            describe_outcome(&segment.outcome),
                            node.name
                        ),
                    })
                }
            }
        };
        (outcome, diag)
    }

    /// Turn a solver model into the packet reported to the user. For the
    /// reachability property the destination bytes were substituted away
    /// before solving, so they are restored here (and the IPv4 header
    /// checksum recomputed) to keep the witness a well-formed packet with the
    /// destination the property talks about.
    fn materialise_counterexample(&self, model: &dataplane_symbex::Assignment) -> Vec<u8> {
        let mut packet = materialise_packet(model);
        if let Property::Reachability {
            dst, dst_offset, ..
        } = self.property
        {
            let off = *dst_offset as usize;
            if packet.len() < off + 4 {
                packet.resize(off + 4, 0);
            }
            packet[off..off + 4].copy_from_slice(&dst.octets());
            let ip_start = (off).saturating_sub(16);
            if packet.len() >= ip_start + 20 {
                let mut hdr = packet[ip_start..].to_vec();
                if dataplane_net::Ipv4Header::rewrite_checksum(&mut hdr) {
                    let hl = (((hdr[0] & 0x0f) as usize) * 4).min(hdr.len());
                    packet[ip_start..ip_start + hl].copy_from_slice(&hdr[..hl]);
                }
            }
        }
        packet
    }

    /// Try to discharge a constraint the solver could not decide by replacing
    /// reads of private data structures that the element never writes with
    /// their default values.
    fn discharged_by_ds_analysis(&self, constraint: &[TermRef], element: ElementIdx) -> bool {
        let node = self.pipeline.node(element);
        let program = node.element.model();
        let summary = &self.summaries[element];
        // Data structures this element ever writes (on any segment).
        let written: Vec<DsId> = summary
            .exploration
            .segments
            .iter()
            .flat_map(|s| s.ds_writes.iter().map(|w| w.ds))
            .collect();
        let substituted: Vec<TermRef> = constraint
            .iter()
            .map(|t| {
                term::substitute(t, &|leaf| {
                    if let Term::DsRead { ds, width, .. } = leaf {
                        let decl = program.ds(*ds)?;
                        if decl.class == DsClass::Private && !written.contains(ds) {
                            return Some(term::constant(dataplane_ir::BitVec::new(
                                *width,
                                decl.default,
                            )));
                        }
                    }
                    None
                })
            })
            .collect();
        self.solver.check(&substituted).is_unsat()
    }

    /// Replay a counterexample packet on a fresh concrete pipeline and check
    /// that the predicted violation really occurs.
    fn confirm(&self, packet: &[u8], element: ElementIdx, segment: &Segment) -> bool {
        // Rebuild the pipeline via its model runtime so private state starts
        // fresh; a single packet suffices for the properties we check.
        let mut runtime = dataplane_pipeline::ModelRuntime::new(self.pipeline);
        let run = runtime.push(Packet::from_bytes(packet.to_vec()));
        match (self.property, &segment.outcome) {
            (Property::CrashFreedom, _) => {
                matches!(run.disposition, Disposition::Crashed { .. })
            }
            (Property::BoundedInstructions { max_instructions }, outcome) => {
                if outcome.is_crash() {
                    matches!(run.disposition, Disposition::Crashed { .. })
                } else {
                    run.instructions > *max_instructions
                }
            }
            (
                Property::Reachability {
                    deliver_to,
                    may_drop,
                    ..
                },
                _,
            ) => {
                let last = *run.hops.last().unwrap_or(&element);
                let last_name = self.pipeline.node(last).name.clone();
                match run.disposition {
                    Disposition::Crashed { .. } => true,
                    // A drop at a header checker means the witness was
                    // malformed, which the property explicitly permits — that
                    // is not a confirmation.
                    Disposition::Dropped { .. } => {
                        !deliver_to.contains(&last_name) && !may_drop.contains(&last_name)
                    }
                    Disposition::Exited { .. } => !deliver_to.contains(&last_name),
                }
            }
        }
    }
}

fn describe_outcome(outcome: &SegmentOutcome) -> String {
    match outcome {
        SegmentOutcome::Emitted(p) => format!("emission on port {p}"),
        SegmentOutcome::Dropped => "packet drop".to_string(),
        SegmentOutcome::Crashed(kind) => format!("crash ({kind})"),
    }
}

/// Convenience map view of a pipeline's suspect counts per element, used by
/// examples and benches to show Step-1 results.
pub fn suspect_overview(report: &Report) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    m.insert("suspects", report.stats.suspects);
    m.insert("discharged", report.stats.discharged);
    m.insert("counterexamples", report.counterexamples.len());
    m.insert("unproven", report.unproven.len());
    m
}

//! The compositional verifier: Step 1 (per-element summaries and suspect
//! tagging) followed by Step 2 (composition of suspects into pipeline paths
//! and feasibility checking), as described in §3 of the paper.

use crate::compose::{
    bind_packet_bytes, depth_of_id, stride_for_depth, Composer, FreshScope, View,
};
use crate::property::Property;
use crate::report::{
    Counterexample, InstructionBoundReport, Report, UnprovenPath, Verdict, VerificationStats,
};
use crate::summary::{ElementSummary, SummaryCache};
use dataplane_ir::{DsClass, DsId};
use dataplane_net::Packet;
use dataplane_pipeline::pipeline::Disposition;
use dataplane_pipeline::{ElementIdx, Pipeline};
use dataplane_symbex::term::{self, Term, TermRef};
use dataplane_symbex::{
    interval_infeasible, CancelToken, CheckDiagnostics, EngineConfig, Segment, SegmentOutcome,
    Solver, SolverConfig, SolverResult,
};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Runs a batch of independent Step-2 worker jobs. Implementations may run
/// the jobs in any order, concurrently; every job must have returned before
/// `run_batch` does. The verifier hands this executor *worker loops* over
/// its own walk queue (so the executor never needs to understand the walk),
/// and the sequential fallback simply runs them in submission order — an
/// executor never changes *what* is computed, only on how many cores.
pub trait ComposeExecutor: Send + Sync {
    /// Run every job to completion.
    fn run_batch<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>);

    /// How many jobs this executor can usefully run at once (including the
    /// calling thread). The verifier submits this many walk workers.
    fn parallelism(&self) -> usize {
        1
    }
}

/// Step-2 parallelism configuration: how the suspect × prefix feasibility
/// checks inside one composition are dispatched. The checks are independent
/// solver calls, so fanning them out over a thread pool preserves the report
/// byte-for-byte (results are folded back in enumeration order) while the
/// slowest verification phase scales with cores.
#[derive(Clone, Default)]
pub struct ParallelComposition {
    executor: Option<Arc<dyn ComposeExecutor>>,
}

impl ParallelComposition {
    /// Run feasibility checks inline, in enumeration order (the default).
    pub fn sequential() -> Self {
        ParallelComposition::default()
    }

    /// Dispatch feasibility checks over `executor`.
    pub fn over(executor: Arc<dyn ComposeExecutor>) -> Self {
        ParallelComposition {
            executor: Some(executor),
        }
    }

    /// The configured executor, if any.
    pub fn executor(&self) -> Option<&Arc<dyn ComposeExecutor>> {
        self.executor.as_ref()
    }

    /// True when checks will be dispatched to an executor.
    pub fn is_parallel(&self) -> bool {
        self.executor.is_some()
    }
}

impl fmt::Debug for ParallelComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelComposition")
            .field("parallel", &self.is_parallel())
            .finish()
    }
}

/// Options controlling the verifier's behaviour and budgets.
#[derive(Clone, Debug)]
pub struct VerifierOptions {
    /// Check the feasibility of every prefix while composing and prune
    /// infeasible ones (recommended; the ablation bench switches it off).
    pub prune_prefixes: bool,
    /// Replay counterexample packets on the concrete pipeline to confirm
    /// them.
    pub validate_counterexamples: bool,
    /// Maximum number of composed paths to examine before giving up.
    pub max_composed_paths: usize,
    /// Symbolic-execution configuration used for element summaries.
    pub engine: EngineConfig,
    /// Base solver limits for feasibility checks.
    pub solver: SolverConfig,
    /// When a check aborts a solver stage at its budget
    /// (`fm_budget_aborts` / `model_search_aborts`) and the stateful-element
    /// second chance does not discharge it, retry it up the geometric
    /// [`EscalationLadder`] before reporting. Escalations are counted per
    /// rung in `Report.stats.escalations_by_step`.
    pub escalate_budgets: bool,
    /// The escalation ladder climbed when `escalate_budgets` is set.
    pub ladder: EscalationLadder,
    /// How Step-2 feasibility checks are dispatched (sequential by default).
    pub parallel: ParallelComposition,
}

/// The default geometric growth factor of the escalation ladder (each rung
/// multiplies the solver budgets by another factor of this).
pub const ESCALATION_FACTOR: u32 = 8;

/// The geometric budget-escalation ladder for undecided feasibility checks.
///
/// A check that aborts a solver stage at its budget is retried with the
/// budgets scaled by `factor`, then `factor²`, ... up to `steps` rungs,
/// stopping at the first rung that decides it (Sat or Unsat). An optional
/// wall-clock cap bounds how long one check may keep climbing.
///
/// With `wall_cap: None` (the default) ladder behaviour is a deterministic
/// function of the constraints, so reports stay byte-identical across runs
/// and processes; a cap trades that determinism for bounded latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscalationLadder {
    /// Geometric growth factor per rung (at least 2).
    pub factor: u32,
    /// Number of rungs (0 disables escalation even when
    /// `escalate_budgets` is set).
    pub steps: u32,
    /// Skip remaining rungs once a single check has spent this much
    /// wall-clock time climbing. `None` keeps the ladder deterministic.
    pub wall_cap: Option<Duration>,
}

impl Default for EscalationLadder {
    fn default() -> Self {
        EscalationLadder {
            factor: ESCALATION_FACTOR,
            steps: 2,
            wall_cap: None,
        }
    }
}

impl EscalationLadder {
    /// A ladder that never escalates.
    pub fn disabled() -> Self {
        EscalationLadder {
            steps: 0,
            ..EscalationLadder::default()
        }
    }

    /// The single ×8 retry this ladder generalises (the pre-ladder
    /// behaviour).
    pub fn single_retry() -> Self {
        EscalationLadder {
            steps: 1,
            ..EscalationLadder::default()
        }
    }

    /// The budget multiplier of rung `step` (0-based): `factor^(step+1)`,
    /// saturating.
    pub fn multiplier(&self, step: u32) -> u64 {
        (u64::from(self.factor.max(2))).saturating_pow(step.saturating_add(1))
    }

    /// The solver of rung `step`, raising only the stages that actually
    /// aborted so far: a stage that never hit its budget keeps its base
    /// limits, so escalation spends solver work exactly where the base run
    /// ran out of it.
    fn solver_for(
        &self,
        base: &SolverConfig,
        step: u32,
        raise_fm: bool,
        raise_search: bool,
    ) -> Solver {
        let m = self.multiplier(step);
        Solver::with_config(SolverConfig {
            model_search_tries: if raise_search {
                u32::try_from(u64::from(base.model_search_tries).saturating_mul(m))
                    .unwrap_or(u32::MAX)
            } else {
                base.model_search_tries
            },
            max_fm_constraints: if raise_fm {
                usize::try_from((base.max_fm_constraints as u64).saturating_mul(m))
                    .unwrap_or(usize::MAX)
            } else {
                base.max_fm_constraints
            },
            ..base.clone()
        })
    }
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            prune_prefixes: true,
            validate_counterexamples: true,
            max_composed_paths: 100_000,
            engine: EngineConfig::decomposed(),
            solver: SolverConfig::default(),
            escalate_budgets: true,
            ladder: EscalationLadder::default(),
            parallel: ParallelComposition::sequential(),
        }
    }
}

/// Step 1's product: per-element summaries plus, per element, the indices
/// of its suspect segments.
type Step1Product = (Vec<Arc<ElementSummary>>, Vec<Vec<usize>>);

/// The compositional dataplane verifier.
pub struct Verifier {
    /// Verification options.
    pub options: VerifierOptions,
    pub(crate) solver: Solver,
    pub(crate) cache: SummaryCache,
}

impl Default for Verifier {
    fn default() -> Self {
        Verifier::new()
    }
}

impl Verifier {
    /// A verifier with default options.
    pub fn new() -> Self {
        Verifier::with_options(VerifierOptions::default())
    }

    /// A verifier with explicit options.
    pub fn with_options(options: VerifierOptions) -> Self {
        let solver = Solver::with_config(options.solver.clone());
        Verifier {
            options,
            solver,
            cache: SummaryCache::new(),
        }
    }

    /// Statistics of the summary cache (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Pre-load element summaries computed elsewhere (the parallel
    /// orchestrator's Step-1 workers). Every seeded element behaviour is
    /// then served from the cache during [`Verifier::verify`], so Step 1
    /// performs no exploration of its own and the verdict is exactly what a
    /// sequential run would produce.
    pub fn seed_summaries(&mut self, summaries: impl IntoIterator<Item = Arc<ElementSummary>>) {
        for summary in summaries {
            self.cache.insert(summary);
        }
    }

    /// Decide one composition (Step 2) from pre-computed — typically
    /// *deserialized* — element summaries: seed them, then verify. This is
    /// the entry point a remote worker uses when a composition job arrives
    /// on the wire carrying the scenario and its summaries: every seeded
    /// behaviour is served from the cache, any summary missing (its
    /// exploration exceeded the engine budget) is re-attempted inline, and
    /// the report is byte-identical to a fully local run under the same
    /// options.
    pub fn decide_composition(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        summaries: impl IntoIterator<Item = Arc<ElementSummary>>,
    ) -> Report {
        self.seed_summaries(summaries);
        self.verify(pipeline, property)
    }

    /// Step 1: summaries and suspect tagging, with the stats bookkeeping of
    /// a full run. `Err` carries the exploration-budget failure message.
    fn step1(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        stats: &mut VerificationStats,
    ) -> Result<Step1Product, String> {
        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let summaries = self
            .summarise(pipeline)
            .map_err(|e| format!("element exploration exceeded its budget: {e}"))?;
        stats.summaries_computed = (self.cache.misses() - misses_before) as usize;
        stats.summaries_reused = (self.cache.hits() - hits_before) as usize;
        stats.total_segments = summaries.iter().map(|s| s.segment_count()).sum();

        let mut suspects: Vec<Vec<usize>> = Vec::with_capacity(pipeline.len());
        for (idx, summary) in summaries.iter().enumerate() {
            let node = pipeline.node(idx);
            let mut element_suspects = Vec::new();
            for (seg_idx, segment) in summary.exploration.segments.iter().enumerate() {
                if !self.is_suspect(property, &node.name, segment) {
                    continue;
                }
                // Local feasibility pre-check: a segment that is infeasible
                // even in isolation cannot be violated in any pipeline.
                stats.solver_calls += 1;
                if self.solver.check(&segment.constraint).is_unsat() {
                    continue;
                }
                element_suspects.push(seg_idx);
            }
            stats.suspects += element_suspects.len();
            suspects.push(element_suspects);
        }
        Ok((summaries, suspects))
    }

    /// The Step-2 walk's root node.
    fn root_input(pipeline: &Pipeline) -> WalkInput {
        let entry = pipeline.entry();
        WalkInput {
            element: entry,
            view: View::Original,
            depth: 0,
            constraint: Vec::new(),
            path: vec![pipeline.node(entry).name.clone()],
            elements: vec![entry],
            instructions: 0,
        }
    }

    /// Verify `property` over `pipeline`.
    pub fn verify(&mut self, pipeline: &Pipeline, property: &Property) -> Report {
        self.verify_inner(pipeline, property, None)
    }

    fn verify_inner(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        shard: Option<(&ComposeOutline, BTreeMap<usize, ShardNodeRecord>)>,
    ) -> Report {
        let start = Instant::now();
        let mut stats = VerificationStats {
            elements: pipeline.len(),
            ..Default::default()
        };

        // ---------------- Step 1: summaries and suspects -------------------
        let (summaries, suspects) = match self.step1(pipeline, property, &mut stats) {
            Ok(s) => s,
            Err(reason) => {
                return Report {
                    property: property.clone(),
                    verdict: Verdict::Unknown,
                    counterexamples: vec![],
                    unproven: vec![UnprovenPath {
                        path: vec![],
                        reason,
                    }],
                    stats,
                    elapsed: start.elapsed(),
                }
            }
        };

        // Temporal properties tag no suspects; they are decided by the
        // Büchi-product search over the same Step-1 summaries instead of
        // the suspect × prefix walk.
        if let Property::Temporal(spec) = property {
            return self.verify_temporal(pipeline, spec, &summaries, stats, start);
        }

        if stats.suspects == 0 {
            return Report {
                property: property.clone(),
                verdict: Verdict::Proven,
                counterexamples: vec![],
                unproven: vec![],
                stats,
                elapsed: start.elapsed(),
            };
        }

        // ---------------- Step 2: composition ------------------------------
        // The walk over the pipeline's prefix tree is expressed as tasks:
        // visiting a node decides its suspect × prefix feasibility checks
        // and, for every forwarding segment, *speculatively* schedules the
        // child subtree before the prefix-feasibility (pruning) check for
        // that child has finished — a pruned prefix then cancels its
        // in-flight descendants through a `CancelToken` tree. All composed
        // terms use depth-indexed namespaces, so what a node computes is a
        // pure function of its path, independent of scheduling. A final
        // single-threaded fold replays the sequential walk order over the
        // computed records (computing inline whatever speculation did not
        // cover), which makes the report byte-identical however many
        // workers the configured `ParallelComposition` executor brought.
        let ctx = WalkCtx {
            pipeline,
            property,
            summaries: &summaries,
            suspects: &suspects,
            composer: Composer::new(),
            hints: build_hints(property),
            options: &self.options,
            solver: &self.solver,
            escalate: self.options.escalate_budgets,
            ladder_spec: self.options.ladder.clone(),
        };
        let root = Verifier::root_input(pipeline);
        let mut fold = FoldState {
            ctx: &ctx,
            stats: &mut stats,
            counterexamples: Vec::new(),
            unproven: Vec::new(),
            budget_exhausted: false,
        };
        match shard {
            Some((outline, mut records)) => {
                fold.fold_sharded(root, Some(0), outline, &mut records);
            }
            None => match self.options.parallel.executor() {
                Some(executor) if executor.parallelism() > 1 => {
                    let state = WalkState::new(&ctx, self.options.max_composed_paths);
                    let root_id = state.seed(root);
                    let workers = executor.parallelism();
                    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..workers)
                        .map(|_| {
                            let state = &state;
                            Box::new(move || state.drain()) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    executor.run_batch(jobs);
                    let slot = state.take(root_id);
                    fold.fold_slot(slot, &state);
                }
                _ => fold.fold_input(root, None),
            },
        }
        let budget_exhausted = fold.budget_exhausted;
        let counterexamples = fold.counterexamples;
        let mut unproven = fold.unproven;
        if budget_exhausted {
            unproven.push(UnprovenPath {
                path: vec![],
                reason: format!(
                    "composed-path budget of {} exhausted",
                    self.options.max_composed_paths
                ),
            });
        }

        let verdict = if counterexamples.iter().any(|c| c.confirmed)
            || (!counterexamples.is_empty() && !self.options.validate_counterexamples)
        {
            Verdict::Violated
        } else if !counterexamples.is_empty() || !unproven.is_empty() {
            Verdict::Unknown
        } else {
            Verdict::Proven
        };

        Report {
            property: property.clone(),
            verdict,
            counterexamples,
            unproven,
            stats,
            elapsed: start.elapsed(),
        }
    }

    /// Establish the pipeline's per-packet instruction bound and a witness
    /// packet (the paper's second experiment: "the longest pipeline executes
    /// up to about 3600 instructions per packet, and we also identified the
    /// packet that yields this maximum").
    pub fn max_instructions(&mut self, pipeline: &Pipeline) -> InstructionBoundReport {
        let start = Instant::now();
        let summaries = match self.summarise(pipeline) {
            Ok(s) => s,
            Err(_) => {
                return InstructionBoundReport {
                    max_instructions: 0,
                    witness: None,
                    path: vec![],
                    approximate: true,
                    paths_considered: 0,
                    feasible_paths: 0,
                    elapsed: start.elapsed(),
                }
            }
        };

        struct Best {
            instructions: u64,
            witness: Option<Vec<u8>>,
            path: Vec<String>,
            approximate: bool,
        }
        let mut best = Best {
            instructions: 0,
            witness: None,
            path: vec![],
            approximate: false,
        };
        let mut paths_considered = 0usize;
        let mut feasible_paths = 0usize;

        // Depth-first enumeration of full pipeline paths.
        #[allow(clippy::too_many_arguments)]
        fn walk(
            verifier: &Verifier,
            pipeline: &Pipeline,
            summaries: &[Arc<ElementSummary>],
            composer: &mut Composer,
            element: ElementIdx,
            view: View,
            stride: u32,
            constraint: Vec<TermRef>,
            path: Vec<String>,
            instructions: u64,
            approximate: bool,
            paths_considered: &mut usize,
            feasible_paths: &mut usize,
            best: &mut Best,
            max_paths: usize,
        ) {
            if *paths_considered >= max_paths {
                return;
            }
            let summary = &summaries[element];
            let node = pipeline.node(element);
            for segment in &summary.exploration.segments {
                let mut seg_constraint = constraint.clone();
                seg_constraint.extend(composer.rewrite_all(&view, stride, &segment.constraint));
                let mut seg_path = path.clone();
                seg_path.push(node.name.clone());
                let seg_instr = instructions + segment.instructions;
                let seg_approx = approximate || segment.approximate;
                let next = segment
                    .outcome
                    .port()
                    .and_then(|p| node.successors.get(p as usize).copied().flatten());
                match next {
                    Some(next_element) if !segment.outcome.is_crash() => {
                        let new_view = composer.extend_view(&view, &segment.packet, stride);
                        let new_stride = composer.alloc_stride(next_element);
                        walk(
                            verifier,
                            pipeline,
                            summaries,
                            composer,
                            next_element,
                            new_view,
                            new_stride,
                            seg_constraint,
                            seg_path,
                            seg_instr,
                            seg_approx,
                            paths_considered,
                            feasible_paths,
                            best,
                            max_paths,
                        );
                    }
                    _ => {
                        // Terminal: the packet leaves the pipeline here (or
                        // the path crashes / drops).
                        *paths_considered += 1;
                        match verifier.solver.check(&seg_constraint) {
                            SolverResult::Unsat => {}
                            result => {
                                *feasible_paths += 1;
                                if seg_instr > best.instructions {
                                    best.instructions = seg_instr;
                                    best.approximate = seg_approx;
                                    best.path = seg_path.clone();
                                    best.witness = match result {
                                        SolverResult::Sat(model) => {
                                            Some(materialise_packet(&model))
                                        }
                                        _ => None,
                                    };
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut composer = Composer::new();
        let entry = pipeline.entry();
        let stride = composer.alloc_stride(entry);
        walk(
            self,
            pipeline,
            &summaries,
            &mut composer,
            entry,
            View::Original,
            stride,
            Vec::new(),
            Vec::new(),
            0,
            false,
            &mut paths_considered,
            &mut feasible_paths,
            &mut best,
            self.options.max_composed_paths,
        );

        InstructionBoundReport {
            max_instructions: best.instructions,
            witness: best.witness,
            path: best.path,
            approximate: best.approximate,
            paths_considered,
            feasible_paths,
            elapsed: start.elapsed(),
        }
    }

    /// Build the shard enumeration of one composition: Step 1 plus a
    /// pre-order walk of the interval-pruned prefix tree (capped at the
    /// composed-path budget). Returns `None` when there is nothing to shard
    /// — Step 1 failed (the ordinary verify path reports that) or no
    /// segment is suspect (the composition is decided without Step 2).
    pub fn outline_composition(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        summaries: impl IntoIterator<Item = Arc<ElementSummary>>,
    ) -> Option<ComposeOutline> {
        self.seed_summaries(summaries);
        let mut stats = VerificationStats::default();
        let (summaries, suspects) = self.step1(pipeline, property, &mut stats).ok()?;
        if stats.suspects == 0 {
            return None;
        }
        let ctx = WalkCtx {
            pipeline,
            property,
            summaries: &summaries,
            suspects: &suspects,
            composer: Composer::new(),
            hints: Vec::new(),
            options: &self.options,
            solver: &self.solver,
            escalate: self.options.escalate_budgets,
            ladder_spec: self.options.ladder.clone(),
        };
        let mut outline = ComposeOutline::default();
        outline_walk(
            &ctx,
            Verifier::root_input(pipeline),
            self.options.max_composed_paths,
            &mut outline,
        );
        Some(outline)
    }

    /// Compute one `ComposeShard` job: the solver units in `[start, end)`
    /// of this composition's shard enumeration (the worker side of compose
    /// sharding). The shipped slots are exactly what the fold would compute
    /// inline for those units, so folding them back yields a byte-identical
    /// report. A fired `cancel` token stops the walk at the next node
    /// boundary — finished slots stay valid and ship back.
    pub fn decide_composition_shard(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        summaries: impl IntoIterator<Item = Arc<ElementSummary>>,
        start: usize,
        end: usize,
        cancel: &CancelToken,
    ) -> ComposeShardResult {
        self.decide_composition_shard_split(
            pipeline,
            property,
            summaries,
            start,
            end,
            cancel,
            &CancelToken::new(),
        )
    }

    /// [`Verifier::decide_composition_shard`] with a live `split` channel:
    /// when the coordinator fires `split` (a steal request from an idle
    /// worker), the walk stops at the next unit boundary and reports the
    /// uncovered tail in [`ComposeShardResult::remainder`], which the
    /// coordinator requeues as a fresh job. Splits are pure work movement —
    /// covered units ship normally, so the fold stays byte-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_composition_shard_split(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        summaries: impl IntoIterator<Item = Arc<ElementSummary>>,
        start: usize,
        end: usize,
        cancel: &CancelToken,
        split: &CancelToken,
    ) -> ComposeShardResult {
        self.seed_summaries(summaries);
        let mut stats = VerificationStats::default();
        let Ok((summaries, suspects)) = self.step1(pipeline, property, &mut stats) else {
            return ComposeShardResult::default();
        };
        if stats.suspects == 0 {
            return ComposeShardResult::default();
        }
        let ctx = WalkCtx {
            pipeline,
            property,
            summaries: &summaries,
            suspects: &suspects,
            composer: Composer::new(),
            hints: build_hints(property),
            options: &self.options,
            solver: &self.solver,
            escalate: self.options.escalate_budgets,
            ladder_spec: self.options.ladder.clone(),
        };
        let mut result = ComposeShardResult::default();
        let mut st = ShardWalkState {
            start,
            end,
            unit: 0,
            node: 0,
            cap: self.options.max_composed_paths,
            progress: 0,
            cancel,
            split,
        };
        shard_walk(
            &ctx,
            Verifier::root_input(pipeline),
            true,
            &mut st,
            &mut result,
        );
        result
    }

    /// Fold shard records back into the composition's report, replaying the
    /// sequential walk order: every node with a shipped record consumes it
    /// (several partial records of one node — unit cuts inside the node,
    /// stolen remainders — are merged slot-wise first), and every slot or
    /// node nothing shipped (sparse shards, a cancelled sibling, the
    /// enumeration cap, a dead worker) is computed inline. The result is
    /// byte-identical to [`Verifier::decide_composition`] under the same
    /// options, whatever the shard boundaries or fleet shape were.
    pub fn fold_composition_shards(
        &mut self,
        pipeline: &Pipeline,
        property: &Property,
        summaries: impl IntoIterator<Item = Arc<ElementSummary>>,
        outline: &ComposeOutline,
        records: impl IntoIterator<Item = ShardNodeRecord>,
    ) -> Report {
        self.seed_summaries(summaries);
        let mut merged: BTreeMap<usize, ShardNodeRecord> = BTreeMap::new();
        let mut poisoned: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for rec in records {
            if poisoned.contains(&rec.index) {
                continue;
            }
            match merged.entry(rec.index) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rec);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let have = e.get_mut();
                    if have.checks.len() != rec.checks.len() || have.edges.len() != rec.edges.len()
                    {
                        // Records of one node that disagree on shape cannot
                        // be trusted; drop them all and compute inline.
                        poisoned.insert(rec.index);
                        e.remove();
                        continue;
                    }
                    for (slot, extra) in have.checks.iter_mut().zip(rec.checks) {
                        if slot.is_none() {
                            *slot = extra;
                        }
                    }
                    for (slot, extra) in have.edges.iter_mut().zip(rec.edges) {
                        if slot.is_none() {
                            *slot = extra;
                        }
                    }
                }
            }
        }
        self.verify_inner(pipeline, property, Some((outline, merged)))
    }

    fn summarise(
        &mut self,
        pipeline: &Pipeline,
    ) -> Result<Vec<Arc<ElementSummary>>, dataplane_symbex::ExploreError> {
        let mut summaries = Vec::with_capacity(pipeline.len());
        for (_, node) in pipeline.iter() {
            summaries.push(
                self.cache
                    .get_or_explore(node.element.as_ref(), &self.options.engine)?,
            );
        }
        Ok(summaries)
    }

    fn is_suspect(&self, property: &Property, instance_name: &str, segment: &Segment) -> bool {
        match property {
            Property::Reachability {
                deliver_to,
                may_drop,
                ..
            } => {
                if segment.outcome.is_crash() {
                    return true;
                }
                if matches!(segment.outcome, SegmentOutcome::Dropped) {
                    let name = instance_name.to_string();
                    return !deliver_to.contains(&name) && !may_drop.contains(&name);
                }
                false
            }
            _ => property.is_suspect_segment(segment),
        }
    }
}

/// Build concrete packet bytes from a solver model: the bytes the model
/// mentions, zero-extended to the model's packet length (capped at a sane
/// frame size).
pub fn materialise_packet(model: &dataplane_symbex::Assignment) -> Vec<u8> {
    // The model's packet length is authoritative: the concrete packet must
    // have exactly that many bytes (capped at a sane jumbo-frame size), with
    // any bytes the model did not pin set to zero.
    model.concrete_packet()
}

/// Judge whether a finished concrete execution violates `property` — the
/// replay predicate of the differential-conformance subsystem, and the
/// segment-free generalisation of the verifier's own counterexample
/// confirmation. Crash-freedom is violated by any crash; the instruction
/// bound by a crash or an over-budget run; reachability by a crash, a drop
/// at an element that is neither a delivery target nor a licensed dropper,
/// or an exit anywhere but a delivery target. For reachability the caller
/// is responsible for only judging packets that actually carry the
/// property's destination address (the property says nothing about others).
/// Temporal properties are violated when the run's trace word — `packet`
/// resolves the header atoms — fails the LTL formula.
pub fn run_violates_property(
    pipeline: &Pipeline,
    property: &Property,
    packet: &[u8],
    run: &dataplane_pipeline::ModelRun,
) -> bool {
    match property {
        Property::CrashFreedom => matches!(run.disposition, Disposition::Crashed { .. }),
        Property::BoundedInstructions { max_instructions } => {
            matches!(run.disposition, Disposition::Crashed { .. })
                || run.instructions > *max_instructions
        }
        Property::Reachability {
            deliver_to,
            may_drop,
            ..
        } => match &run.disposition {
            Disposition::Crashed { .. } => true,
            // A drop at a licensed dropper means the packet was judged
            // malformed, which the property explicitly permits.
            Disposition::Dropped { at } => {
                let name = &pipeline.node(*at).name;
                !deliver_to.contains(name) && !may_drop.contains(name)
            }
            Disposition::Exited { at, .. } => {
                let name = &pipeline.node(*at).name;
                !deliver_to.contains(name)
            }
        },
        Property::Temporal(spec) => {
            crate::temporal::run_violates_temporal(pipeline, spec, packet, run)
        }
    }
}

/// Everything that identifies one node of the Step-2 prefix tree: the
/// element reached, the composed view and constraint of the prefix leading
/// to it, and the path metadata reports need. Because composition
/// namespaces are depth-indexed ([`stride_for_depth`] / [`FreshScope`]),
/// the node's entire computation is a pure function of this value.
#[derive(Clone)]
struct WalkInput {
    element: ElementIdx,
    view: View,
    depth: usize,
    constraint: Vec<TermRef>,
    /// Instance names along the path, ending at `element`.
    path: Vec<String>,
    /// Element index per composition depth (for static-state concretisation
    /// of depth-strided data-structure reads).
    elements: Vec<ElementIdx>,
    instructions: u64,
}

/// What one feasibility check established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Infeasible (directly, or via the stateful-element second chance).
    Discharged,
    /// Feasible: a concrete (possibly replay-confirmed) counterexample.
    Violation(Counterexample),
    /// The solver gave up; the reason names the stage that aborted.
    Undecided(UnprovenPath),
}

/// One decided suspect × prefix check, with the bookkeeping the fold turns
/// into `Report.stats`. Because node computation is a pure function of the
/// node's walk input (its prefix path and composed constraint set), a
/// `CheckRecord` computed on a remote worker (as part of a
/// [`ShardNodeRecord`]) is byte-identical to what the fold would have
/// computed inline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckRecord {
    /// What the check established.
    pub outcome: CheckOutcome,
    /// Which solver stages gave up within their budgets.
    pub diag: CheckDiagnostics,
    /// The check aborted a stage under base budgets and entered the
    /// escalation ladder.
    pub escalated: bool,
    /// The 0-based ladder rung whose raised budgets decided the check, if
    /// any rung did.
    pub decided_at_rung: Option<usize>,
    /// The deciding rung had the Fourier–Motzkin budget raised.
    pub raised_fm: bool,
    /// The deciding rung had the model-search try budget raised.
    pub raised_search: bool,
    /// The interval-only pre-filter decided the check (always `Discharged`)
    /// before any budgeted solver stage ran.
    pub prefiltered: bool,
}

/// Where a forwarding edge's child subtree lives.
enum ChildSlot {
    /// Speculatively scheduled into the parallel walk's arena.
    Spawned(usize),
    /// Not scheduled — the fold computes it inline when it commits the edge
    /// (the input is kept even for pruned edges, so the shard walk can keep
    /// enumerating the interval-feasible tree past them).
    Inline(WalkInput),
}

/// One derived forwarding edge: the child node's input and the
/// contextualised prefix constraint the pruning check (and its interval
/// pre-filter) decides.
struct EdgeChild {
    child: WalkInput,
    contextual: Vec<TermRef>,
    /// The interval-only pre-filter proved the prefix infeasible (only
    /// evaluated when the caller asked for it and pruning is on).
    prefiltered: bool,
}

/// One forwarding edge out of a walk node, in segment-enumeration order.
struct EdgeRecord {
    /// The interval-only pre-filter proved the prefix through this edge
    /// infeasible; no pruning solver call was made.
    prefiltered: bool,
    /// A prefix-feasibility solver call was made for this edge.
    pruned_call: bool,
    /// The composed prefix through this edge is (possibly) feasible.
    feasible: bool,
    child: ChildSlot,
}

/// The serialisable form of one forwarding edge's pruning outcome, as a
/// `ComposeShard` job reports it over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardEdge {
    /// The interval-only pre-filter pruned the edge without a solver call.
    pub prefiltered: bool,
    /// A full prefix-feasibility solver call was made.
    pub pruned_call: bool,
    /// The composed prefix through this edge is (possibly) feasible.
    pub feasible: bool,
}

/// Everything one enumerated walk node decided (or the part of it a shard's
/// unit range covered), in the serialisable form a `ComposeShard` job
/// returns, keyed by the node's pre-order index in the [`ComposeOutline`]
/// enumeration. Since shard ranges are *unit* ranges that may cut inside a
/// node's block, both vectors are slot vectors: `None` marks a solver unit
/// this shard's range did not cover (another shard — or the fold itself —
/// supplies it). Free slots (pre-filtered edges, edges with pruning off) are
/// always `Some` when the node was touched at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardNodeRecord {
    /// The node's pre-order index in the shard enumeration.
    pub index: usize,
    /// Decided suspect × prefix checks, in suspect-enumeration order (one
    /// slot per check surviving the instruction-bound skip).
    pub checks: Vec<Option<CheckRecord>>,
    /// Forwarding-edge pruning outcomes, in segment-enumeration order (one
    /// slot per forwarding edge).
    pub edges: Vec<Option<ShardEdge>>,
}

/// Per-node compute time of one shard visit — operational calibration data
/// (never part of the deterministic report): the coordinator feeds it back
/// into the warm store so future shard cuts weigh nodes by observed solver
/// cost instead of unit count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTiming {
    /// The node's pre-order index in the shard enumeration.
    pub index: usize,
    /// Solver units actually computed during this visit.
    pub units: usize,
    /// Wall-clock nanoseconds spent computing them.
    pub ns: u64,
}

/// What one `ComposeShard` job computed: records for every enumerated node
/// in the shard's `[start, end)` unit range that the worker reached (a
/// cancelled shard returns the records it finished; the fold computes the
/// rest inline, so cancellation never changes the report).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComposeShardResult {
    /// Per-node records, in enumeration order.
    pub records: Vec<ShardNodeRecord>,
    /// The shard was cancelled before covering its whole range.
    pub cancelled: bool,
    /// A `split` request arrived mid-walk: the uncovered unit tail
    /// `[first_uncovered, end)` handed back for requeueing. Everything
    /// before it is covered by `records`, so requeueing exactly this range
    /// to another worker reconstructs the full shard.
    pub remainder: Option<(usize, usize)>,
    /// Per-node compute times (operational; excluded from deterministic
    /// report documents).
    pub timings: Vec<ShardTiming>,
}

/// One node of the shard enumeration: its estimated solver weight and the
/// pre-order indices of its enumerated children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutlineNode {
    /// Estimated full-solver calls at this node: suspect checks that survive
    /// the instruction-bound skip, plus one pruning call per enumerated
    /// (non-pre-filtered) edge when pruning is on.
    pub weight: usize,
    /// The pipeline element this node instantiates — the key the
    /// coordinator uses to calibrate unit costs from observed solver times.
    pub element: ElementIdx,
    /// Child pre-order index per forwarding edge, in segment-enumeration
    /// order. `None` where the interval pre-filter pruned the edge (the
    /// child was never enumerated) or where the enumeration cap cut it off.
    pub children: Vec<Option<usize>>,
}

/// The deterministic pre-order enumeration of a composition's Step-2 prefix
/// tree after interval-only pruning — the shared coordinate system of
/// compose sharding. The coordinator builds it to split the tree's *solver
/// units* (each node's surviving suspect checks followed by its weighted
/// pruning calls, in pre-order block order) into contiguous `[start, end)`
/// unit ranges, every worker reproduces the same enumeration to locate its
/// range, and the fold uses the recorded child indices to match worker
/// records back to the nodes of its sequential replay. The enumeration
/// never makes a budgeted solver call, so it is a deterministic function of
/// the scenario alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComposeOutline {
    /// Enumerated nodes, indexed by pre-order position.
    pub nodes: Vec<OutlineNode>,
    /// The enumeration hit the composed-path cap; nodes past it carry no
    /// index and are always computed inline by the fold.
    pub truncated: bool,
}

impl ComposeOutline {
    /// Total estimated solver weight of the enumerated tree — also the
    /// length of the shard *unit* space: every node's units (checks first,
    /// then weighted edges) sit consecutively at its pre-order position,
    /// before its descendants' units, so unit `u` of the enumeration is a
    /// deterministic address every worker resolves identically.
    pub fn total_weight(&self) -> usize {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// The first unit of each node's block, by pre-order index (the prefix
    /// sums of the node weights).
    pub fn unit_offsets(&self) -> Vec<usize> {
        let mut off = Vec::with_capacity(self.nodes.len());
        let mut acc = 0usize;
        for node in &self.nodes {
            off.push(acc);
            acc += node.weight;
        }
        off
    }

    /// Split the unit space `[0, total_weight())` into contiguous
    /// `[start, end)` ranges of at most `max_weight` solver units each.
    /// Cuts may land *inside* a node's block (intra-suspect splits), so one
    /// pathological suspect subtree no longer pins a whole shard; workers
    /// ship partial slot records for straddled nodes and the fold merges
    /// them. Returns no ranges when the enumeration has no units (the fold
    /// then computes the pure traversal inline).
    pub fn shards(&self, max_weight: usize) -> Vec<(usize, usize)> {
        let max_weight = max_weight.max(1);
        let total = self.total_weight();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < total {
            let end = (start + max_weight).min(total);
            out.push((start, end));
            start = end;
        }
        out
    }

    /// Split the unit space into at most `shard_count` ranges balanced by
    /// *observed cost* instead of unit count: `node_costs[i]` is the
    /// calibrated cost of node `i`'s whole block (any scale — nanoseconds
    /// in practice), spread uniformly over the block's units. Falls back to
    /// uniform [`ComposeOutline::shards`] when no calibration is available
    /// (`node_costs` empty, mis-sized, or all zero). The returned ranges
    /// are plain unit addresses, so workers need no knowledge of the
    /// calibration that placed the cuts.
    pub fn shards_by_cost(&self, node_costs: &[u64], shard_count: usize) -> Vec<(usize, usize)> {
        let total = self.total_weight();
        let shard_count = shard_count.max(1);
        if total == 0 {
            return Vec::new();
        }
        let uniform_width = total.div_ceil(shard_count).max(1);
        if node_costs.len() != self.nodes.len() || node_costs.iter().all(|&c| c == 0) {
            return self.shards(uniform_width);
        }
        // Flatten to per-unit costs in enumeration order.
        let mut unit_cost = Vec::with_capacity(total);
        for (node, &cost) in self.nodes.iter().zip(node_costs) {
            if node.weight == 0 {
                continue;
            }
            let per = (cost / node.weight as u64).max(1);
            unit_cost.extend(std::iter::repeat_n(per, node.weight));
        }
        let total_cost: u64 = unit_cost.iter().sum();
        let budget = total_cost.div_ceil(shard_count as u64).max(1);
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (u, &c) in unit_cost.iter().enumerate() {
            if u > start && acc + c > budget && out.len() + 1 < shard_count {
                out.push((start, u));
                start = u;
                acc = 0;
            }
            acc += c;
        }
        out.push((start, total));
        out
    }

    /// The pre-order index of `node`'s `edge`-th forwarding edge's child,
    /// if it was enumerated.
    pub fn child_index(&self, node: usize, edge: usize) -> Option<usize> {
        self.nodes.get(node)?.children.get(edge).copied().flatten()
    }
}

/// Everything one walk node computed: its decided suspect checks and its
/// forwarding edges, both in enumeration order.
struct NodeRecord {
    checks: Vec<CheckRecord>,
    edges: Vec<EdgeRecord>,
}

/// Immutable context shared by the whole Step-2 walk. Everything in here is
/// `Sync`, so walk workers on any [`ComposeExecutor`] can share it.
struct WalkCtx<'a> {
    pipeline: &'a Pipeline,
    property: &'a Property,
    summaries: &'a [Arc<ElementSummary>],
    suspects: &'a [Vec<usize>],
    composer: Composer,
    hints: Vec<dataplane_symbex::Assignment>,
    options: &'a VerifierOptions,
    solver: &'a Solver,
    /// Whether undecided stage-budget aborts climb the escalation ladder.
    escalate: bool,
    /// The ladder configuration (for the wall-clock cap and reporting).
    ladder_spec: EscalationLadder,
}

/// Build hint assignments for the solver's model search: structurally valid
/// packets (correct version, IHL, lengths, checksums) of the classes the
/// paper's workloads contain. The generic constraint search is unlikely to
/// stumble on a packet whose Internet checksum verifies; these templates give
/// it realistic starting points, and every returned model is still verified
/// against the constraints before being reported.
fn build_hints(property: &Property) -> Vec<dataplane_symbex::Assignment> {
    use dataplane_net::workload::{PacketClass, WorkloadConfig, WorkloadGen, WorkloadMix};
    let mut packets: Vec<Vec<u8>> = Vec::new();
    // A spread of well-formed and adversarial frames.
    packets.extend(
        WorkloadGen::adversarial(0x7E57)
            .batch(24)
            .into_iter()
            .map(|p| p.into_bytes()),
    );
    for class in [
        PacketClass::Udp,
        PacketClass::WithIpOptions,
        PacketClass::ExpiringTtl,
        PacketClass::TcpSyn,
    ] {
        packets.extend(
            WorkloadGen::new(WorkloadConfig {
                seed: 0x7E58,
                mix: WorkloadMix::only(class),
                ..WorkloadConfig::default()
            })
            .batch(6)
            .into_iter()
            .map(|p| p.into_bytes()),
        );
    }
    // For reachability the destination is pinned, so provide templates that
    // carry exactly that destination (their checksums are then consistent
    // with the bound bytes).
    if let Property::Reachability {
        dst, dst_offset, ..
    } = property
    {
        let extra: Vec<Vec<u8>> = packets
            .iter()
            .take(16)
            .map(|bytes| {
                let mut b = bytes.clone();
                let off = *dst_offset as usize;
                if b.len() >= off + 4 {
                    b[off..off + 4].copy_from_slice(&dst.octets());
                    // Fix the IPv4 header checksum if the destination sits in
                    // a plausible IPv4 header (offset >= 16 implies an
                    // Ethernet + IP layout with the header at 14, offset 16
                    // implies a bare IP packet).
                    let ip_start = if *dst_offset >= 30 { 14 } else { 0 };
                    if b.len() >= ip_start + 20 {
                        let mut hdr = b[ip_start..].to_vec();
                        if dataplane_net::Ipv4Header::rewrite_checksum(&mut hdr) {
                            let hl = ((hdr[0] & 0x0f) as usize) * 4;
                            b[ip_start..ip_start + hl].copy_from_slice(&hdr[..hl]);
                        }
                    }
                }
                b
            })
            .collect();
        packets.extend(extra);
    }
    packets
        .into_iter()
        .map(|bytes| dataplane_symbex::Assignment::from_packet(&bytes))
        .collect()
}

/// Replace reads of *static* data structures with the values installed by
/// the element's configuration (the paper's "certain properties can only
/// be proved for a specific configuration"): reads with a concrete key
/// are looked up directly; reads of small tables with a symbolic key
/// become a select chain over the table's populated entries.
fn concretise_static_reads(
    pipeline: &Pipeline,
    elements: &[ElementIdx],
    mut terms: Vec<TermRef>,
) -> Vec<TermRef> {
    // The select-chain expansion is only worthwhile (and only bounded)
    // for small tables.
    const MAX_CHAIN: usize = 32;
    // Concretising one read can make another read's key concrete, so run
    // a few passes until the terms stop changing.
    for _ in 0..3 {
        let next: Vec<TermRef> = terms
            .iter()
            .map(|t| {
                term::substitute(t, &|leaf| {
                    if let Term::DsRead {
                        ds,
                        key,
                        seq,
                        width,
                    } = leaf
                    {
                        let element_idx = *elements.get(depth_of_id(*seq)?)?;
                        let element = pipeline.node(element_idx).element.as_ref();
                        let program = element.model();
                        let decl = program.ds(*ds)?;
                        if decl.class != DsClass::Static {
                            return None;
                        }
                        let contents = element.model_state().get(ds).cloned().unwrap_or_default();
                        if let Some(k) = key.as_const() {
                            let value = contents
                                .iter()
                                .find(|(ck, _)| *ck == k.as_u64())
                                .map(|(_, v)| *v)
                                .unwrap_or(decl.default);
                            return Some(term::constant(dataplane_ir::BitVec::new(*width, value)));
                        }
                        if contents.len() <= MAX_CHAIN {
                            // Symbolic key over a small table: expand to
                            // select(key == k1, v1, select(key == k2, ...)).
                            let mut chain =
                                term::constant(dataplane_ir::BitVec::new(*width, decl.default));
                            for (k, v) in &contents {
                                chain = term::select(
                                    term::binary(
                                        dataplane_ir::BinOp::Eq,
                                        key.clone(),
                                        term::constant(dataplane_ir::BitVec::new(
                                            decl.key_width,
                                            *k,
                                        )),
                                    ),
                                    term::constant(dataplane_ir::BitVec::new(*width, *v)),
                                    chain,
                                );
                            }
                            return Some(chain);
                        }
                        None
                    } else {
                        None
                    }
                })
            })
            .collect();
        let changed = next != terms;
        terms = next;
        if !changed {
            break;
        }
    }
    terms
}

impl<'a> WalkCtx<'a> {
    /// Enumerate and decide everything local to one walk node: its suspect ×
    /// prefix feasibility checks and the feasibility of each forwarding
    /// edge. When `spawn` is given (the parallel walk), every child input is
    /// handed to it *before* that child's pruning check runs — speculative
    /// subtree exploration — together with a derived [`CancelToken`]; a
    /// pruning check that then defeats the edge cancels the token, stopping
    /// the child's in-flight descendants however deep they have got.
    fn compute_node(
        &self,
        input: &WalkInput,
        cancel: &CancelToken,
        mut spawn: Option<&mut dyn FnMut(WalkInput, CancelToken) -> usize>,
    ) -> NodeRecord {
        let mut checks = Vec::new();
        for seg_idx in self.surviving_suspects(input) {
            let constraint = self.check_constraint(input, seg_idx);
            checks.push(self.run_check(input.element, seg_idx, &constraint, &input.path, cancel));
        }

        let mut edges = Vec::new();
        for ec in self.edge_children(input, true) {
            let EdgeChild {
                child,
                contextual,
                prefiltered,
            } = ec;
            // Speculate first, prune second: the child subtree may already
            // be exploring on another worker while its prefix is checked.
            let (slot, child_token) = match spawn.as_deref_mut() {
                Some(spawn) => {
                    let token = cancel.child();
                    (ChildSlot::Spawned(spawn(child, token.clone())), Some(token))
                }
                None => (ChildSlot::Inline(child), None),
            };
            let (pruned_call, feasible) = if prefiltered {
                // The interval-only pre-filter already proved the prefix
                // infeasible: prune without a full solver call.
                (false, false)
            } else if self.options.prune_prefixes {
                let infeasible = self
                    .solver
                    .check_diagnosed_cancel(&contextual, cancel)
                    .0
                    .is_unsat();
                (true, !infeasible)
            } else {
                (false, true)
            };
            if !feasible {
                // The prefix through this edge is infeasible: cancel the
                // speculative subtree (its in-flight solver calls abort).
                if let Some(token) = child_token {
                    token.cancel();
                }
            }
            edges.push(EdgeRecord {
                prefiltered,
                pruned_call,
                feasible,
                child: slot,
            });
        }
        NodeRecord { checks, edges }
    }

    /// Derive the forwarding edges of `input`, in segment-enumeration
    /// order: the child [`WalkInput`] plus the contextualised prefix
    /// constraint its pruning check decides. When `prefilter` is set (and
    /// pruning is on) each edge is also run through the interval-only
    /// pre-filter; callers that already know the pruning outcome (the fold
    /// consuming a shard record) skip that evaluation.
    fn edge_children(&self, input: &WalkInput, prefilter: bool) -> Vec<EdgeChild> {
        let node = self.pipeline.node(input.element);
        let summary = &self.summaries[input.element];
        let stride = stride_for_depth(input.depth);
        let mut out = Vec::new();
        for segment in &summary.exploration.segments {
            let Some(port) = segment.outcome.port() else {
                continue;
            };
            let Some(Some(next)) = node.successors.get(port as usize).copied() else {
                continue;
            };
            let scope = FreshScope::for_depth(input.depth);
            let mut constraint = input.constraint.clone();
            constraint.extend(self.composer.rewrite_all_scoped(
                &input.view,
                stride,
                &segment.constraint,
                &scope,
            ));
            let child = WalkInput {
                element: next,
                view: self
                    .composer
                    .extend_view(&input.view, &segment.packet, stride),
                depth: input.depth + 1,
                constraint: constraint.clone(),
                path: {
                    let mut p = input.path.clone();
                    p.push(self.pipeline.node(next).name.clone());
                    p
                },
                elements: {
                    let mut e = input.elements.clone();
                    e.push(next);
                    e
                },
                instructions: input.instructions + segment.instructions,
            };
            let contextual = self.apply_property_context(constraint, &input.elements);
            let prefiltered =
                prefilter && self.options.prune_prefixes && interval_infeasible(&contextual);
            out.push(EdgeChild {
                child,
                contextual,
                prefiltered,
            });
        }
        out
    }

    /// The suspect segments of `input` that will actually be checked (after
    /// the instruction-bound skip), in suspect-enumeration order — the
    /// check units of the node's shard block.
    fn surviving_suspects(&self, input: &WalkInput) -> Vec<usize> {
        let summary = &self.summaries[input.element];
        self.suspects[input.element]
            .iter()
            .copied()
            .filter(|&seg_idx| {
                let segment = &summary.exploration.segments[seg_idx];
                // For the instruction-bound property, only paths whose
                // cumulative count exceeds the bound matter.
                if let Property::BoundedInstructions { max_instructions } = self.property {
                    segment.outcome.is_crash()
                        || input.instructions + segment.instructions > *max_instructions
                } else {
                    true
                }
            })
            .collect()
    }

    /// The fully contextualised constraint of one suspect check at `input`.
    fn check_constraint(&self, input: &WalkInput, seg_idx: usize) -> Vec<TermRef> {
        let summary = &self.summaries[input.element];
        let segment = &summary.exploration.segments[seg_idx];
        let scope = FreshScope::for_depth(input.depth);
        let mut constraint = input.constraint.clone();
        constraint.extend(self.composer.rewrite_all_scoped(
            &input.view,
            stride_for_depth(input.depth),
            &segment.constraint,
            &scope,
        ));
        self.apply_property_context(constraint, &input.elements)
    }

    /// How many suspect checks `input` will actually run (after the
    /// instruction-bound skip) — the check part of an [`OutlineNode`]'s
    /// weight.
    fn check_count(&self, input: &WalkInput) -> usize {
        self.surviving_suspects(input).len()
    }

    /// Compute the subset of `input`'s suspect checks selected by `want`
    /// (by surviving-check position), returning a slot vector aligned with
    /// the node's check enumeration. The fold uses this to fill the check
    /// slots no shard's unit range covered.
    fn compute_checks_where(
        &self,
        input: &WalkInput,
        mut want: impl FnMut(usize) -> bool,
        cancel: &CancelToken,
    ) -> Vec<Option<CheckRecord>> {
        self.surviving_suspects(input)
            .into_iter()
            .enumerate()
            .map(|(k, seg_idx)| {
                want(k).then(|| {
                    let constraint = self.check_constraint(input, seg_idx);
                    self.run_check(input.element, seg_idx, &constraint, &input.path, cancel)
                })
            })
            .collect()
    }

    /// Decide one forwarding edge's pruning outcome exactly as the
    /// sequential walk would: interval pre-filter first, then the pruning
    /// solver call. The fold uses this for edge slots no shard covered.
    fn decide_edge(&self, contextual: &[TermRef], cancel: &CancelToken) -> ShardEdge {
        if !self.options.prune_prefixes {
            return ShardEdge {
                prefiltered: false,
                pruned_call: false,
                feasible: true,
            };
        }
        if interval_infeasible(contextual) {
            return ShardEdge {
                prefiltered: true,
                pruned_call: false,
                feasible: false,
            };
        }
        let infeasible = self
            .solver
            .check_diagnosed_cancel(contextual, cancel)
            .0
            .is_unsat();
        ShardEdge {
            prefiltered: false,
            pruned_call: true,
            feasible: !infeasible,
        }
    }

    /// Add the property's input assumptions (e.g. the reachability
    /// destination binding) and concretise static state.
    fn apply_property_context(
        &self,
        constraint: Vec<TermRef>,
        elements: &[ElementIdx],
    ) -> Vec<TermRef> {
        match self.property {
            Property::Reachability {
                dst, dst_offset, ..
            } => {
                let octets = dst.octets();
                let bindings: Vec<(i64, u8)> = octets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (*dst_offset as i64 + i as i64, *b))
                    .collect();
                let bound = bind_packet_bytes(&constraint, &bindings);
                concretise_static_reads(self.pipeline, elements, bound)
            }
            _ => constraint,
        }
    }

    /// Decide one suspect × prefix feasibility check: base solver budgets,
    /// then the stateful-element second chance, then (for stage-budget
    /// aborts) adaptive retries up the geometric escalation ladder.
    fn run_check(
        &self,
        element: ElementIdx,
        seg_idx: usize,
        constraint: &[TermRef],
        path: &[String],
        cancel: &CancelToken,
    ) -> CheckRecord {
        // Interval-only pre-filter: a prefix the cheap analytic stages
        // already prove infeasible is discharged without touching the
        // hint-repair, Fourier–Motzkin, or model-search machinery. Sound
        // because the pre-filter is a prefix of the full decision procedure
        // (`true` implies the full solver would answer Unsat).
        if interval_infeasible(constraint) {
            return CheckRecord {
                outcome: CheckOutcome::Discharged,
                diag: CheckDiagnostics::default(),
                escalated: false,
                decided_at_rung: None,
                raised_fm: false,
                raised_search: false,
                prefiltered: true,
            };
        }
        let node = self.pipeline.node(element);
        let segment = &self.summaries[element].exploration.segments[seg_idx];
        let violation = |model: &dataplane_symbex::Assignment| {
            let packet = self.materialise_counterexample(model);
            let confirmed =
                self.options.validate_counterexamples && self.confirm(&packet, element, segment);
            CheckOutcome::Violation(Counterexample {
                packet,
                path: path.to_vec(),
                description: format!(
                    "{} at element '{}'",
                    describe_outcome(&segment.outcome),
                    node.name
                ),
                confirmed,
            })
        };
        let check_started = Instant::now();
        let (result, diag) =
            self.solver
                .check_with_hints_diagnosed_cancel(constraint, &self.hints, cancel);
        let mut escalated = false;
        let mut decided_at_rung = None;
        let mut rungs_climbed = 0u32;
        let mut raised_fm = false;
        let mut raised_search = false;
        let outcome = match result {
            SolverResult::Unsat => CheckOutcome::Discharged,
            SolverResult::Sat(model) => violation(&model),
            SolverResult::Unknown => {
                // Second chance: the stateful-element analysis (reads of
                // never-written private state can be replaced by the
                // default value).
                if self.discharged_by_ds_analysis(constraint, element) {
                    CheckOutcome::Discharged
                } else {
                    // Adaptive budgets: a stage gave up at its limit — climb
                    // the geometric escalation ladder, raising only the
                    // stages that have aborted so far and stopping at the
                    // first rung that decides (or at the optional wall-clock
                    // cap). A stage that first aborts mid-climb (say the
                    // model search only runs out once a raised FM budget
                    // lets it start) joins the raised set at the next rung.
                    let mut retried = None;
                    let mut abort_fm = diag.fm_budget_exhausted;
                    let mut abort_search = diag.model_search_exhausted;
                    if (abort_fm || abort_search) && self.escalate && !cancel.is_cancelled() {
                        for rung in 0..self.ladder_spec.steps as usize {
                            if self
                                .ladder_spec
                                .wall_cap
                                .is_some_and(|cap| check_started.elapsed() >= cap)
                                || cancel.is_cancelled()
                            {
                                break;
                            }
                            escalated = true;
                            rungs_climbed = rung as u32 + 1;
                            let solver = self.ladder_spec.solver_for(
                                self.solver.config(),
                                rung as u32,
                                abort_fm,
                                abort_search,
                            );
                            let (retry, retry_diag) = solver.check_with_hints_diagnosed_cancel(
                                constraint,
                                &self.hints,
                                cancel,
                            );
                            if !matches!(retry, SolverResult::Unknown) {
                                decided_at_rung = Some(rung);
                                raised_fm = abort_fm;
                                raised_search = abort_search;
                                retried = Some(retry);
                                break;
                            }
                            // A rung that no longer aborts any stage gave
                            // the solver its full analysis and still said
                            // Unknown: higher budgets cannot change that.
                            if !retry_diag.fm_budget_exhausted && !retry_diag.model_search_exhausted
                            {
                                break;
                            }
                            abort_fm |= retry_diag.fm_budget_exhausted;
                            abort_search |= retry_diag.model_search_exhausted;
                        }
                    }
                    match retried {
                        Some(SolverResult::Unsat) => CheckOutcome::Discharged,
                        Some(SolverResult::Sat(model)) => violation(&model),
                        _ => {
                            let stages = diag.describe();
                            let why = if stages.is_empty() {
                                String::new()
                            } else if escalated {
                                format!(
                                    " ({stages}; budgets escalated to x{} without a verdict)",
                                    self.ladder_spec.multiplier(rungs_climbed.saturating_sub(1))
                                )
                            } else {
                                format!(" ({stages})")
                            };
                            CheckOutcome::Undecided(UnprovenPath {
                                path: path.to_vec(),
                                reason: format!(
                                    "could not decide feasibility of {} at '{}'{why}",
                                    describe_outcome(&segment.outcome),
                                    node.name
                                ),
                            })
                        }
                    }
                }
            }
        };
        CheckRecord {
            outcome,
            diag,
            escalated,
            decided_at_rung,
            raised_fm,
            raised_search,
            prefiltered: false,
        }
    }

    /// Turn a solver model into the packet reported to the user. For the
    /// reachability property the destination bytes were substituted away
    /// before solving, so they are restored here (and the IPv4 header
    /// checksum recomputed) to keep the witness a well-formed packet with the
    /// destination the property talks about.
    fn materialise_counterexample(&self, model: &dataplane_symbex::Assignment) -> Vec<u8> {
        let mut packet = materialise_packet(model);
        if let Property::Reachability {
            dst, dst_offset, ..
        } = self.property
        {
            let off = *dst_offset as usize;
            if packet.len() < off + 4 {
                packet.resize(off + 4, 0);
            }
            packet[off..off + 4].copy_from_slice(&dst.octets());
            let ip_start = (off).saturating_sub(16);
            if packet.len() >= ip_start + 20 {
                let mut hdr = packet[ip_start..].to_vec();
                if dataplane_net::Ipv4Header::rewrite_checksum(&mut hdr) {
                    let hl = (((hdr[0] & 0x0f) as usize) * 4).min(hdr.len());
                    packet[ip_start..ip_start + hl].copy_from_slice(&hdr[..hl]);
                }
            }
        }
        packet
    }

    /// Try to discharge a constraint the solver could not decide by replacing
    /// reads of private data structures that the element never writes with
    /// their default values.
    fn discharged_by_ds_analysis(&self, constraint: &[TermRef], element: ElementIdx) -> bool {
        let node = self.pipeline.node(element);
        let program = node.element.model();
        let summary = &self.summaries[element];
        // Data structures this element ever writes (on any segment).
        let written: Vec<DsId> = summary
            .exploration
            .segments
            .iter()
            .flat_map(|s| s.ds_writes.iter().map(|w| w.ds))
            .collect();
        let substituted: Vec<TermRef> = constraint
            .iter()
            .map(|t| {
                term::substitute(t, &|leaf| {
                    if let Term::DsRead { ds, width, .. } = leaf {
                        let decl = program.ds(*ds)?;
                        if decl.class == DsClass::Private && !written.contains(ds) {
                            return Some(term::constant(dataplane_ir::BitVec::new(
                                *width,
                                decl.default,
                            )));
                        }
                    }
                    None
                })
            })
            .collect();
        self.solver.check(&substituted).is_unsat()
    }

    /// Replay a counterexample packet on a fresh concrete pipeline and check
    /// that the predicted violation really occurs.
    fn confirm(&self, packet: &[u8], element: ElementIdx, segment: &Segment) -> bool {
        // Rebuild the pipeline via its model runtime so private state starts
        // fresh; a single packet suffices for the properties we check.
        let mut runtime = dataplane_pipeline::ModelRuntime::new(self.pipeline);
        let run = runtime.push(Packet::from_bytes(packet.to_vec()));
        match (self.property, &segment.outcome) {
            (Property::CrashFreedom, _) => {
                matches!(run.disposition, Disposition::Crashed { .. })
            }
            (Property::BoundedInstructions { max_instructions }, outcome) => {
                if outcome.is_crash() {
                    matches!(run.disposition, Disposition::Crashed { .. })
                } else {
                    run.instructions > *max_instructions
                }
            }
            (
                Property::Reachability {
                    deliver_to,
                    may_drop,
                    ..
                },
                _,
            ) => {
                let last = *run.hops.last().unwrap_or(&element);
                let last_name = self.pipeline.node(last).name.clone();
                match run.disposition {
                    Disposition::Crashed { .. } => true,
                    // A drop at a header checker means the witness was
                    // malformed, which the property explicitly permits — that
                    // is not a confirmation.
                    Disposition::Dropped { .. } => {
                        !deliver_to.contains(&last_name) && !may_drop.contains(&last_name)
                    }
                    Disposition::Exited { .. } => !deliver_to.contains(&last_name),
                }
            }
            // Temporal counterexamples are confirmed by the Büchi-product
            // search itself (the trace evaluator); suspect-walk checks
            // never see a temporal property.
            (Property::Temporal(spec), _) => {
                crate::temporal::run_violates_temporal(self.pipeline, spec, packet, &run)
            }
        }
    }
}

/// Arena slot for one node of the parallel walk.
enum Slot {
    /// Scheduled, not yet processed.
    Pending,
    /// Fully processed.
    Done(NodeRecord),
    /// Skipped because the speculation cap was reached; the fold computes
    /// it inline if it commits the node.
    Deferred(WalkInput),
    /// Skipped (or abandoned mid-computation) because its token fired. A
    /// cancelled node sits behind a pruned edge, which the fold never
    /// commits; the input is kept so even a logic slip stays recoverable
    /// instead of panicking.
    Cancelled(WalkInput),
}

/// One scheduled subtree visit of the parallel walk.
struct QueueItem {
    id: usize,
    input: WalkInput,
    token: CancelToken,
}

/// Shared state of the speculative parallel walk: the work queue of
/// scheduled subtree visits and the arena their results land in. Workers
/// are plain closures over [`WalkState::drain`], so any [`ComposeExecutor`]
/// can run them.
struct WalkState<'w, 'a> {
    ctx: &'w WalkCtx<'a>,
    queue: Mutex<VecDeque<QueueItem>>,
    /// Results per node. Processed nodes drop their composed constraints
    /// (a `Done` record keeps only outcomes and edge bits); inputs survive
    /// only in unprocessed queue items and `Deferred`/`Cancelled` slots,
    /// all bounded through `cap` — a different memory shape from the old
    /// 1024-check buffer, bounded by the composed-path budget instead.
    arena: Mutex<Vec<Slot>>,
    /// Scheduled-but-unfinished items (queued or mid-process).
    pending: AtomicUsize,
    /// Nodes actually processed. Bounds speculative work at the composed-
    /// path budget, so a walk the sequential verifier would abandon cannot
    /// explode under speculation; anything past the cap is deferred to the
    /// fold, which applies the real budget.
    entered: AtomicUsize,
    cap: usize,
    /// Parked-worker wakeup: the epoch bumps whenever new work may exist.
    signal: (Mutex<u64>, Condvar),
}

impl<'w, 'a> WalkState<'w, 'a> {
    fn new(ctx: &'w WalkCtx<'a>, cap: usize) -> Self {
        WalkState {
            ctx,
            queue: Mutex::new(VecDeque::new()),
            arena: Mutex::new(Vec::new()),
            pending: AtomicUsize::new(0),
            entered: AtomicUsize::new(0),
            cap,
            signal: (Mutex::new(0), Condvar::new()),
        }
    }

    /// Schedule the root node; returns its arena id.
    fn seed(&self, input: WalkInput) -> usize {
        self.spawn(input, CancelToken::new())
    }

    fn spawn(&self, input: WalkInput, token: CancelToken) -> usize {
        let id = {
            let mut arena = self.arena.lock().expect("walk arena");
            arena.push(Slot::Pending);
            arena.len() - 1
        };
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.queue
            .lock()
            .expect("walk queue")
            .push_back(QueueItem { id, input, token });
        self.wake();
        id
    }

    fn wake(&self) {
        let mut epoch = self.signal.0.lock().expect("walk signal");
        *epoch += 1;
        self.signal.1.notify_all();
    }

    /// Remove and return the slot for `id` (the fold consumes each node
    /// exactly once).
    fn take(&self, id: usize) -> Slot {
        std::mem::replace(
            &mut self.arena.lock().expect("walk arena")[id],
            Slot::Pending,
        )
    }

    /// Worker loop: process scheduled visits until every one has finished.
    fn drain(&self) {
        loop {
            // Snapshot the epoch before looking for work so the parked wait
            // below cannot miss a wake-up.
            let seen_epoch = *self.signal.0.lock().expect("walk signal");
            let item = self.queue.lock().expect("walk queue").pop_front();
            match item {
                Some(item) => {
                    self.process(item);
                    if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.wake();
                    }
                }
                None => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    let mut epoch = self.signal.0.lock().expect("walk signal");
                    while *epoch == seen_epoch && self.pending.load(Ordering::Acquire) > 0 {
                        epoch = self.signal.1.wait(epoch).expect("walk signal");
                    }
                }
            }
        }
    }

    fn process(&self, item: QueueItem) {
        let QueueItem { id, input, token } = item;
        let slot = if token.is_cancelled() {
            Slot::Cancelled(input)
        } else if self.entered.fetch_add(1, Ordering::Relaxed) >= self.cap {
            Slot::Deferred(input)
        } else {
            let mut spawn = |child: WalkInput, child_token: CancelToken| -> usize {
                self.spawn(child, child_token)
            };
            let record = self.ctx.compute_node(&input, &token, Some(&mut spawn));
            if token.is_cancelled() {
                // Cancelled mid-computation: the record may contain
                // early-aborted solver results; never publish it.
                Slot::Cancelled(input)
            } else {
                Slot::Done(record)
            }
        };
        self.arena.lock().expect("walk arena")[id] = slot;
    }
}

/// Folds walk records in exact sequential-walk (depth-first enumeration)
/// order, producing outcomes, statistics, and budget accounting identical
/// to a one-thread walk — whatever speculation computed, over-computed, or
/// skipped. Missing nodes are computed inline, so the fold is also the
/// entire sequential mode.
struct FoldState<'f, 'a> {
    ctx: &'f WalkCtx<'a>,
    stats: &'f mut VerificationStats,
    counterexamples: Vec<Counterexample>,
    unproven: Vec<UnprovenPath>,
    budget_exhausted: bool,
}

impl<'f, 'a> FoldState<'f, 'a> {
    /// The sequential walk's node-entry bookkeeping: budget, then count.
    fn enter(&mut self) -> bool {
        if self.stats.composed_paths >= self.ctx.options.max_composed_paths {
            self.budget_exhausted = true;
            return false;
        }
        self.stats.composed_paths += 1;
        true
    }

    /// Commit a node the parallel walk may have precomputed.
    fn fold_slot(&mut self, slot: Slot, state: &WalkState<'_, 'a>) {
        if !self.enter() {
            return;
        }
        match slot {
            Slot::Done(record) => self.consume(record, Some(state)),
            Slot::Deferred(input) | Slot::Cancelled(input) => {
                let record = self.ctx.compute_node(&input, &CancelToken::new(), None);
                self.consume(record, Some(state));
            }
            Slot::Pending => unreachable!("walk drained with a pending node"),
        }
    }

    /// Commit a node nobody precomputed (sequential mode, or a deferred
    /// subtree's descendants).
    fn fold_input(&mut self, input: WalkInput, state: Option<&WalkState<'_, 'a>>) {
        if !self.enter() {
            return;
        }
        let record = self.ctx.compute_node(&input, &CancelToken::new(), None);
        self.consume(record, state);
    }

    /// Stats and outcome bookkeeping of one decided check.
    fn tally_check(&mut self, check: CheckRecord) {
        if check.prefiltered {
            self.stats.prefilter_decided += 1;
        } else {
            self.stats.solver_calls += 1;
            self.stats.prefilter_passed += 1;
        }
        self.stats.fm_budget_aborts += usize::from(check.diag.fm_budget_exhausted);
        self.stats.model_search_aborts += usize::from(check.diag.model_search_exhausted);
        self.stats.budget_escalations += usize::from(check.escalated);
        if let Some(rung) = check.decided_at_rung {
            self.stats.escalations_decided += 1;
            let bump = |rungs: &mut Vec<usize>| {
                if rungs.len() <= rung {
                    rungs.resize(rung + 1, 0);
                }
                rungs[rung] += 1;
            };
            bump(&mut self.stats.escalations_by_step);
            if check.raised_fm {
                bump(&mut self.stats.escalations_fm);
            }
            if check.raised_search {
                bump(&mut self.stats.escalations_search);
            }
        }
        match check.outcome {
            CheckOutcome::Discharged => self.stats.discharged += 1,
            CheckOutcome::Violation(ce) => self.counterexamples.push(ce),
            CheckOutcome::Undecided(up) => self.unproven.push(up),
        }
    }

    /// Stats bookkeeping of one forwarding edge's pruning outcome.
    fn tally_edge(&mut self, prefiltered: bool, pruned_call: bool) {
        if prefiltered {
            self.stats.prefilter_decided += 1;
        } else if pruned_call {
            self.stats.solver_calls += 1;
            self.stats.prefilter_passed += 1;
        }
    }

    fn consume(&mut self, record: NodeRecord, state: Option<&WalkState<'_, 'a>>) {
        for check in record.checks {
            self.tally_check(check);
        }
        for edge in record.edges {
            self.tally_edge(edge.prefiltered, edge.pruned_call);
            if !edge.feasible {
                continue;
            }
            match edge.child {
                ChildSlot::Spawned(id) => {
                    let state = state.expect("spawned children only exist in the parallel walk");
                    let slot = state.take(id);
                    self.fold_slot(slot, state);
                }
                ChildSlot::Inline(input) => self.fold_input(input, state),
            }
        }
    }

    /// Commit one node of the sharded walk: consume its shipped record if a
    /// shard covered it (and the record's shape matches this build), else
    /// compute it inline. `index` is the node's pre-order position in the
    /// shard enumeration (`None` once the walk leaves the enumerated tree —
    /// past the cap, or below a node whose record a cancelled shard never
    /// shipped).
    fn fold_sharded(
        &mut self,
        input: WalkInput,
        index: Option<usize>,
        outline: &ComposeOutline,
        records: &mut BTreeMap<usize, ShardNodeRecord>,
    ) {
        if !self.enter() {
            return;
        }
        let record = index.and_then(|i| records.remove(&i));
        match record {
            Some(rec) => {
                // The record carries the pruning outcomes, so the edge
                // derivation can skip re-evaluating the interval pre-filter.
                let children = self.ctx.edge_children(&input, false);
                if children.len() != rec.edges.len()
                    || rec.checks.len() != self.ctx.check_count(&input)
                {
                    // A record whose shape disagrees with this build cannot
                    // be trusted; recompute the node instead.
                    let record = self.ctx.compute_node(&input, &CancelToken::new(), None);
                    return self.consume_sharded(record, index, outline, records);
                }
                // Fill the check slots no shard covered (unit cuts inside
                // the node, a stolen remainder that never landed, a dead
                // worker mid-block), then replay them in enumeration order.
                let token = CancelToken::new();
                let filled =
                    self.ctx
                        .compute_checks_where(&input, |k| rec.checks[k].is_none(), &token);
                for (slot, fallback) in rec.checks.into_iter().zip(filled) {
                    let check = slot
                        .or(fallback)
                        .expect("every check slot is shipped or computed inline");
                    self.tally_check(check);
                }
                for (k, (slot, ec)) in rec.edges.iter().zip(children).enumerate() {
                    let edge = match slot {
                        Some(edge) => *edge,
                        None => self.ctx.decide_edge(&ec.contextual, &token),
                    };
                    self.tally_edge(edge.prefiltered, edge.pruned_call);
                    if !edge.feasible {
                        continue;
                    }
                    let child_index = index.and_then(|i| outline.child_index(i, k));
                    self.fold_sharded(ec.child, child_index, outline, records);
                }
            }
            None => {
                let record = self.ctx.compute_node(&input, &CancelToken::new(), None);
                self.consume_sharded(record, index, outline, records);
            }
        }
    }

    /// Consume an inline-computed record inside the sharded walk, keeping
    /// the enumeration indices of its children so deeper shard records can
    /// still be matched.
    fn consume_sharded(
        &mut self,
        record: NodeRecord,
        index: Option<usize>,
        outline: &ComposeOutline,
        records: &mut BTreeMap<usize, ShardNodeRecord>,
    ) {
        for check in record.checks {
            self.tally_check(check);
        }
        for (k, edge) in record.edges.into_iter().enumerate() {
            self.tally_edge(edge.prefiltered, edge.pruned_call);
            if !edge.feasible {
                continue;
            }
            let child_index = index.and_then(|i| outline.child_index(i, k));
            match edge.child {
                ChildSlot::Inline(child) => self.fold_sharded(child, child_index, outline, records),
                ChildSlot::Spawned(_) => {
                    unreachable!("the sharded fold never runs the speculative walk")
                }
            }
        }
    }
}

/// Pre-order enumeration of the interval-pruned prefix tree, recording each
/// node's estimated solver weight and its children's indices. Returns the
/// node's index, or `None` when the cap cut the subtree off.
fn outline_walk(
    ctx: &WalkCtx<'_>,
    input: WalkInput,
    cap: usize,
    out: &mut ComposeOutline,
) -> Option<usize> {
    if out.nodes.len() >= cap {
        out.truncated = true;
        return None;
    }
    let idx = out.nodes.len();
    let element = input.element;
    out.nodes.push(OutlineNode {
        weight: 0,
        element,
        children: Vec::new(),
    });
    let mut weight = ctx.check_count(&input);
    let mut children = Vec::new();
    for ec in ctx.edge_children(&input, true) {
        if ec.prefiltered {
            // Interval-pruned: the child is never enumerated (every walk —
            // outline, shard, fold — prunes it the same way without a
            // budgeted solver call).
            children.push(None);
        } else {
            if ctx.options.prune_prefixes {
                weight += 1;
            }
            children.push(outline_walk(ctx, ec.child, cap, out));
        }
    }
    out.nodes[idx] = OutlineNode {
        weight,
        element,
        children,
    };
    Some(idx)
}

/// Mutable state threaded through one shard's worker walk.
struct ShardWalkState<'s> {
    /// The shard's `[start, end)` unit range.
    start: usize,
    end: usize,
    /// Next unclaimed unit (units of visited node blocks are claimed at
    /// node entry, so this grows in pre-order block order).
    unit: usize,
    /// Next pre-order node index.
    node: usize,
    /// The enumeration's node cap (the composed-path budget); nodes past
    /// it were never outlined and always fold inline.
    cap: usize,
    /// Units actually computed so far — split requests are honoured only
    /// after some progress, so a handoff always shrinks the range.
    progress: usize,
    /// Hard cancellation: sibling shard found a violation; stop and ship
    /// what is finished.
    cancel: &'s CancelToken,
    /// Soft split request: stop at the next unit boundary and report the
    /// uncovered tail as a remainder for an idle worker.
    split: &'s CancelToken,
}

/// The worker side of one shard: replay the enumeration, computing the
/// solver units inside the `[start, end)` unit range (while the subtree is
/// still live — not behind an edge this shard itself proved infeasible) and
/// traversing shape-only outside it. A node whose unit block straddles the
/// range boundary yields a partial slot record; units behind an edge whose
/// feasibility this shard did not itself decide are computed optimistically
/// (the fold ignores records behind edges it prunes). Returns `false` once
/// the walk is past `end`, cancelled, or split, unwinding the recursion.
fn shard_walk(
    ctx: &WalkCtx<'_>,
    input: WalkInput,
    live: bool,
    st: &mut ShardWalkState<'_>,
    out: &mut ComposeShardResult,
) -> bool {
    if st.unit >= st.end || st.node >= st.cap {
        // Unit blocks grow in pre-order, so nothing at or below this point
        // can intersect the range any more.
        return false;
    }
    if st.cancel.is_cancelled() {
        out.cancelled = true;
        return false;
    }
    let idx = st.node;
    st.node += 1;
    let suspects = ctx.surviving_suspects(&input);
    let edges = ctx.edge_children(&input, true);
    let prune = ctx.options.prune_prefixes;
    let weighted = if prune {
        edges.iter().filter(|e| !e.prefiltered).count()
    } else {
        0
    };
    let weight = suspects.len() + weighted;
    let u0 = st.unit;
    st.unit += weight;

    let covered = live && weight > 0 && u0 < st.end && u0 + weight > st.start;
    if !covered {
        // Out of range (or already dead): advance the enumeration counters
        // through the subtree without any budgeted solver call.
        for ec in edges {
            if ec.prefiltered {
                continue;
            }
            if !shard_walk(ctx, ec.child, live, st, out) {
                return false;
            }
        }
        return true;
    }

    // In range (at least partly): decide the covered units for real. The
    // node gets a fresh token so a cancellation between nodes never
    // truncates a solver call mid-flight — shipped slots are always exact.
    let started = Instant::now();
    let mut units_done = 0usize;
    let token = CancelToken::new();
    let mut split_at: Option<usize> = None;

    let mut checks: Vec<Option<CheckRecord>> = Vec::with_capacity(suspects.len());
    for (k, &seg_idx) in suspects.iter().enumerate() {
        let u = u0 + k;
        let in_range = u >= st.start && u < st.end;
        if in_range && split_at.is_none() && !(st.split.is_cancelled() && st.progress > 0) {
            let constraint = ctx.check_constraint(&input, seg_idx);
            checks.push(Some(ctx.run_check(
                input.element,
                seg_idx,
                &constraint,
                &input.path,
                &token,
            )));
            st.progress += 1;
            units_done += 1;
        } else {
            if in_range && split_at.is_none() {
                split_at = Some(u);
            }
            checks.push(None);
        }
    }

    let mut edge_slots: Vec<Option<ShardEdge>> = Vec::with_capacity(edges.len());
    let mut recurse: Vec<(WalkInput, bool)> = Vec::new();
    let mut wu = u0 + suspects.len();
    for ec in edges {
        if ec.prefiltered {
            // Free slot: the pre-filter already decided it, no unit spent.
            edge_slots.push(Some(ShardEdge {
                prefiltered: true,
                pruned_call: false,
                feasible: false,
            }));
            continue; // not enumerated
        }
        if !prune {
            edge_slots.push(Some(ShardEdge {
                prefiltered: false,
                pruned_call: false,
                feasible: true,
            }));
            recurse.push((ec.child, live));
            continue;
        }
        let u = wu;
        wu += 1;
        let in_range = u >= st.start && u < st.end;
        if in_range && split_at.is_none() && !(st.split.is_cancelled() && st.progress > 0) {
            let infeasible = ctx
                .solver
                .check_diagnosed_cancel(&ec.contextual, &token)
                .0
                .is_unsat();
            edge_slots.push(Some(ShardEdge {
                prefiltered: false,
                pruned_call: true,
                feasible: !infeasible,
            }));
            recurse.push((ec.child, !infeasible));
            st.progress += 1;
            units_done += 1;
        } else {
            if in_range && split_at.is_none() {
                split_at = Some(u);
            }
            // Feasibility unknown to this shard: recurse optimistically —
            // wasted work at worst, never a wrong report (the fold skips
            // records behind edges it prunes).
            edge_slots.push(None);
            recurse.push((ec.child, live));
        }
    }

    out.records.push(ShardNodeRecord {
        index: idx,
        checks,
        edges: edge_slots,
    });
    if units_done > 0 {
        out.timings.push(ShardTiming {
            index: idx,
            units: units_done,
            ns: started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        });
    }
    if let Some(at) = split_at {
        out.remainder = Some((at, st.end));
        return false;
    }
    for (child, child_live) in recurse {
        if !shard_walk(ctx, child, child_live, st, out) {
            return false;
        }
    }
    true
}

fn describe_outcome(outcome: &SegmentOutcome) -> String {
    match outcome {
        SegmentOutcome::Emitted(p) => format!("emission on port {p}"),
        SegmentOutcome::Dropped => "packet drop".to_string(),
        SegmentOutcome::Crashed(kind) => format!("crash ({kind})"),
    }
}

/// Convenience map view of a pipeline's suspect counts per element, used by
/// examples and benches to show Step-1 results.
pub fn suspect_overview(report: &Report) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    m.insert("suspects", report.stats.suspects);
    m.insert("discharged", report.stats.discharged);
    m.insert("counterexamples", report.counterexamples.len());
    m.insert("unproven", report.unproven.len());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::presets::{buggy_pipeline, ip_router_pipeline};

    /// Shard the composition at `max_weight`, compute every shard on a
    /// fresh "worker" verifier, fold on a fresh "coordinator" verifier, and
    /// require the result to match an unsharded run field for field.
    fn assert_shard_identity(pipeline: &Pipeline, property: &Property, max_weight: usize) {
        let mut baseline = Verifier::new();
        let base = baseline.verify(pipeline, property);

        let mut outliner = Verifier::new();
        let Some(outline) = outliner.outline_composition(pipeline, property, Vec::new()) else {
            // No suspects: the sharded path is never taken for this scenario.
            return;
        };
        let ranges = outline.shards(max_weight);
        // The ranges tile the unit space: contiguous, disjoint, complete.
        let mut expected_start = 0usize;
        for &(start, end) in &ranges {
            assert_eq!(start, expected_start);
            assert!(end > start);
            assert!(end - start <= max_weight);
            expected_start = end;
        }
        assert_eq!(expected_start, outline.total_weight());

        let offsets = outline.unit_offsets();
        let mut records = Vec::new();
        for (start, end) in ranges {
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard(
                pipeline,
                property,
                Vec::new(),
                start,
                end,
                &CancelToken::new(),
            );
            assert!(!shard.cancelled);
            assert!(shard.remainder.is_none());
            for rec in &shard.records {
                // Every record names an enumerated node whose unit block
                // intersects the shard's range, with build-matching shape.
                let node = &outline.nodes[rec.index];
                let u0 = offsets[rec.index];
                assert!(u0 < end && u0 + node.weight > start);
                assert_eq!(rec.edges.len(), node.children.len());
            }
            records.extend(shard.records);
        }

        let mut folder = Verifier::new();
        let folded =
            folder.fold_composition_shards(pipeline, property, Vec::new(), &outline, records);
        assert_eq!(folded.verdict, base.verdict, "{property:?}");
        assert_eq!(folded.counterexamples, base.counterexamples);
        assert_eq!(folded.unproven, base.unproven);
        assert_eq!(folded.stats, base.stats);
    }

    #[test]
    fn sharded_compose_matches_in_process_ip_router() {
        let pipeline = ip_router_pipeline();
        for max_weight in [1, 4] {
            assert_shard_identity(&pipeline, &Property::CrashFreedom, max_weight);
        }
    }

    #[test]
    fn sharded_compose_matches_in_process_buggy_violation() {
        let pipeline = buggy_pipeline();
        for max_weight in [1, 8] {
            assert_shard_identity(&pipeline, &Property::CrashFreedom, max_weight);
        }
    }

    #[test]
    fn fold_without_records_computes_everything_inline() {
        // A fully cancelled fleet ships no records at all; the fold must
        // still reproduce the unsharded report exactly.
        let pipeline = buggy_pipeline();
        let property = Property::CrashFreedom;
        let mut baseline = Verifier::new();
        let base = baseline.verify(&pipeline, &property);
        let mut outliner = Verifier::new();
        let outline = outliner
            .outline_composition(&pipeline, &property, Vec::new())
            .expect("buggy pipeline has suspects");
        let mut folder = Verifier::new();
        let folded =
            folder.fold_composition_shards(&pipeline, &property, Vec::new(), &outline, Vec::new());
        assert_eq!(folded.verdict, base.verdict);
        assert_eq!(folded.counterexamples, base.counterexamples);
        assert_eq!(folded.stats, base.stats);
    }

    #[test]
    fn unit_shards_cut_inside_a_node() {
        // With one unit per shard, any node worth more than one solver unit
        // is split across shards; each shard ships a partial slot record
        // for it and the fold merges them back (identity is asserted by
        // `sharded_compose_matches_in_process_*`; here we check a split
        // really happens).
        let pipeline = ip_router_pipeline();
        let property = Property::CrashFreedom;
        let mut outliner = Verifier::new();
        let outline = outliner
            .outline_composition(&pipeline, &property, Vec::new())
            .expect("ip router has suspects");
        assert!(
            outline.nodes.iter().any(|n| n.weight > 1),
            "preset should have a multi-unit node"
        );
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for (start, end) in outline.shards(1) {
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard(
                &pipeline,
                &property,
                Vec::new(),
                start,
                end,
                &CancelToken::new(),
            );
            for rec in &shard.records {
                *seen.entry(rec.index).or_default() += 1;
            }
        }
        assert!(
            seen.values().any(|&n| n > 1),
            "no node was split across unit shards: {seen:?}"
        );
    }

    #[test]
    fn split_request_hands_back_a_remainder_and_preserves_identity() {
        let pipeline = ip_router_pipeline();
        let property = Property::CrashFreedom;
        let mut baseline = Verifier::new();
        let base = baseline.verify(&pipeline, &property);
        let mut outliner = Verifier::new();
        let outline = outliner
            .outline_composition(&pipeline, &property, Vec::new())
            .expect("ip router has suspects");
        let total = outline.total_weight();
        assert!(total > 1, "need at least two units to split");

        // A pre-fired split token: the worker makes minimal progress then
        // hands the tail back; chase the remainders until the range drains,
        // as the dispatch steal loop would across workers.
        let mut records = Vec::new();
        let mut range = (0usize, total);
        let mut handoffs = 0usize;
        loop {
            let split = CancelToken::new();
            split.cancel();
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard_split(
                &pipeline,
                &property,
                Vec::new(),
                range.0,
                range.1,
                &CancelToken::new(),
                &split,
            );
            assert!(!shard.cancelled);
            records.extend(shard.records);
            match shard.remainder {
                Some((r, e)) => {
                    assert!(r > range.0 && r < e && e == range.1);
                    range = (r, e);
                    handoffs += 1;
                }
                None => break,
            }
        }
        assert!(
            handoffs > 0,
            "a pre-fired split should hand off at least once"
        );

        let mut folder = Verifier::new();
        let folded =
            folder.fold_composition_shards(&pipeline, &property, Vec::new(), &outline, records);
        assert_eq!(folded.verdict, base.verdict);
        assert_eq!(folded.counterexamples, base.counterexamples);
        assert_eq!(folded.unproven, base.unproven);
        assert_eq!(folded.stats, base.stats);
    }

    #[test]
    fn cost_calibrated_shards_rebalance_a_skewed_tree() {
        // A synthetic outline whose first node dominates observed cost:
        // uniform unit cuts leave one shard carrying nearly everything,
        // cost-calibrated cuts split inside that node's block and the
        // heaviest-shard cost ratio drops.
        let outline = ComposeOutline {
            nodes: vec![
                OutlineNode {
                    weight: 4,
                    element: 0,
                    children: vec![Some(1), Some(2)],
                },
                OutlineNode {
                    weight: 4,
                    element: 1,
                    children: vec![],
                },
                OutlineNode {
                    weight: 4,
                    element: 2,
                    children: vec![],
                },
            ],
            truncated: false,
        };
        let node_costs = vec![120_000u64, 1_200, 1_200];
        let total = outline.total_weight();
        let shard_count = 3;

        let unit_costs: Vec<u64> = outline
            .nodes
            .iter()
            .zip(&node_costs)
            .flat_map(|(n, &c)| std::iter::repeat_n(c / n.weight as u64, n.weight))
            .collect();
        let shard_cost =
            |&(s, e): &(usize, usize)| -> u64 { unit_costs[s..e].iter().copied().sum() };
        let total_cost: u64 = unit_costs.iter().sum();

        let uniform = outline.shards(total.div_ceil(shard_count).max(1));
        let calibrated = outline.shards_by_cost(&node_costs, shard_count);

        // The calibrated ranges still tile the unit space.
        let mut expected_start = 0usize;
        for &(s, e) in &calibrated {
            assert_eq!(s, expected_start);
            assert!(e > s);
            expected_start = e;
        }
        assert_eq!(expected_start, total);
        assert!(calibrated.len() <= shard_count);

        let heaviest_uniform = uniform.iter().map(shard_cost).max().unwrap();
        let heaviest_calibrated = calibrated.iter().map(shard_cost).max().unwrap();
        assert!(
            heaviest_calibrated < heaviest_uniform,
            "calibration should shrink the heaviest shard: {heaviest_calibrated} vs {heaviest_uniform}"
        );
        // Ratio of the heaviest shard to the whole tree drops well below
        // the uniform split's near-total share.
        assert!(heaviest_uniform * 2 > total_cost);
        assert!(heaviest_calibrated * 2 < total_cost + heaviest_uniform);
    }

    #[test]
    fn cancelled_shard_keeps_complete_records_only() {
        let pipeline = buggy_pipeline();
        let property = Property::CrashFreedom;
        let mut outliner = Verifier::new();
        let outline = outliner
            .outline_composition(&pipeline, &property, Vec::new())
            .expect("buggy pipeline has suspects");
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut worker = Verifier::new();
        let shard = worker.decide_composition_shard(
            &pipeline,
            &property,
            Vec::new(),
            0,
            outline.total_weight(),
            &cancel,
        );
        assert!(shard.cancelled);
        assert!(shard.records.is_empty());
    }
}

//! Step 1: per-element symbolic summaries.
//!
//! Each distinct element behaviour (type name + configuration key) is
//! symbolically explored **once**; the resulting [`ElementSummary`] is cached
//! and reused at every pipeline position where that element appears — the
//! compositional reuse that gives the paper its `k·2^n` (instead of
//! `2^{k·n}`) scaling.

use dataplane_pipeline::Element;
use dataplane_symbex::{explore, EngineConfig, Exploration, ExploreError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The symbolic summary of one element behaviour.
#[derive(Clone, Debug)]
pub struct ElementSummary {
    /// Element type name.
    pub type_name: String,
    /// Element configuration key.
    pub config_key: String,
    /// The exploration result: every segment of the element.
    pub exploration: Exploration,
    /// Wall-clock time the exploration took.
    pub explore_time: Duration,
}

impl ElementSummary {
    /// Number of segments in the summary.
    pub fn segment_count(&self) -> usize {
        self.exploration.segments.len()
    }
}

/// A cache of element summaries keyed by `(type name, config key)`.
#[derive(Default)]
pub struct SummaryCache {
    entries: HashMap<(String, String), Arc<ElementSummary>>,
    hits: u64,
    misses: u64,
}

/// The cache key of an element's summary: `(type name, config key)`.
/// Elements agreeing on both share one summary (the paper's "every distinct
/// element behaviour is explored once").
pub fn summary_key(element: &dyn Element) -> (String, String) {
    (element.type_name().to_string(), element.config_key())
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> Self {
        SummaryCache::default()
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses (fresh explorations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct summaries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Get the summary for `element`, exploring its model if it is not cached
    /// yet.
    pub fn get_or_explore(
        &mut self,
        element: &dyn Element,
        config: &EngineConfig,
    ) -> Result<Arc<ElementSummary>, ExploreError> {
        let key = summary_key(element);
        if let Some(summary) = self.entries.get(&key) {
            self.hits += 1;
            return Ok(summary.clone());
        }
        self.misses += 1;
        let program = element.model();
        let start = Instant::now();
        let exploration = explore(&program, config)?;
        let summary = Arc::new(ElementSummary {
            type_name: key.0.clone(),
            config_key: key.1.clone(),
            exploration,
            explore_time: start.elapsed(),
        });
        self.entries.insert(key, summary.clone());
        Ok(summary)
    }

    /// Install a summary computed elsewhere (e.g. by a parallel worker of
    /// the verification orchestrator) under its own `(type name, config key)`
    /// pair. Subsequent [`SummaryCache::get_or_explore`] calls for matching
    /// elements are served from the cache without exploring.
    pub fn insert(&mut self, summary: Arc<ElementSummary>) {
        self.entries.insert(
            (summary.type_name.clone(), summary.config_key.clone()),
            summary,
        );
    }

    /// Drop every cached summary (used by the ablation benches to measure the
    /// cost of re-exploring each element at every pipeline position).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_pipeline::elements::{CheckIPHeader, DecTTL, IPLookup};

    #[test]
    fn summaries_are_cached_by_type_and_config() {
        let mut cache = SummaryCache::new();
        let config = EngineConfig::decomposed();
        let a = cache
            .get_or_explore(&CheckIPHeader::new(), &config)
            .unwrap();
        let b = cache
            .get_or_explore(&CheckIPHeader::new(), &config)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());

        // A different element type is a different entry.
        cache.get_or_explore(&DecTTL::new(), &config).unwrap();
        assert_eq!(cache.len(), 2);

        // Same type, different configuration: also a different entry.
        cache
            .get_or_explore(&IPLookup::two_port_default(), &config)
            .unwrap();
        cache
            .get_or_explore(
                &IPLookup::new(vec![dataplane_pipeline::elements::Route::new(
                    std::net::Ipv4Addr::new(10, 0, 0, 0),
                    8,
                    0,
                )]),
                &config,
            )
            .unwrap();
        assert_eq!(cache.len(), 4);

        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn summaries_contain_segments_and_timing() {
        let mut cache = SummaryCache::new();
        let summary = cache
            .get_or_explore(&DecTTL::new(), &EngineConfig::decomposed())
            .unwrap();
        assert!(summary.segment_count() >= 2, "drop path and emit path");
        assert_eq!(summary.type_name, "DecTTL");
        assert!(summary.exploration.max_instructions() > 0);
    }
}

//! Verifiable properties.
//!
//! The paper's target properties are "crash freedom", "bounded latency"
//! (expressed as a bound on the number of instructions executed per packet),
//! and higher-level reachability properties for specific configurations.
//! A [`Property`] determines which segments Step 1 tags as *suspect*.

use dataplane_symbex::{Segment, SegmentOutcome};
use dataplane_temporal::LtlSpec;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A property the verifier can try to prove about a pipeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Property {
    /// No packet sequence can make any element of the pipeline crash
    /// (segmentation fault, failed assertion, division by zero, runaway
    /// loop, ...).
    CrashFreedom,
    /// No packet executes more than `max_instructions` IR instructions across
    /// the whole pipeline.
    BoundedInstructions {
        /// The per-packet instruction bound to prove.
        max_instructions: u64,
    },
    /// Every well-formed packet whose IPv4 destination address equals `dst`
    /// is delivered to one of the `deliver_to` elements (it is never dropped
    /// elsewhere in the pipeline and never crashes). "Well-formed" means the
    /// packet takes the accepting path of the pipeline's header checker;
    /// malformed packets are exempt, exactly as the paper phrases it
    /// ("... will never be dropped unless it is malformed").
    Reachability {
        /// The destination address of interest.
        dst: Ipv4Addr,
        /// Byte offset of the IPv4 destination field in the packet as the
        /// pipeline entry element receives it (30 for an Ethernet frame,
        /// 16 for a bare IP packet).
        dst_offset: u32,
        /// Instance names of elements where delivery counts as success
        /// (typically the sinks, or the last element before the packet
        /// leaves the pipeline).
        deliver_to: Vec<String>,
        /// Instance names of elements that are allowed to drop the packet —
        /// the header checkers whose job is to reject malformed packets (the
        /// property's "unless it is malformed" escape hatch).
        may_drop: Vec<String>,
    },
    /// A linear-temporal-logic property over the pipeline trace of each
    /// packet: the sequence of element instances it visits, extended to an
    /// infinite word by repeating the final disposition (forwarded /
    /// dropped / crashed) forever. Checked by compiling the negated spec to
    /// a Büchi automaton and searching the product with the per-element
    /// summary transition system for an accepting lasso — compositional
    /// like every other property class.
    Temporal(LtlSpec),
}

impl Property {
    /// Human-readable name used in reports.
    pub fn name(&self) -> String {
        match self {
            Property::CrashFreedom => "crash-freedom".to_string(),
            Property::BoundedInstructions { max_instructions } => {
                format!("bounded-instructions(<= {max_instructions})")
            }
            Property::Reachability { dst, .. } => format!("reachability(dst {dst})"),
            Property::Temporal(spec) => format!("temporal({spec})"),
        }
    }

    /// Does `segment` of a single element, considered in isolation, possibly
    /// violate this property? (Step 1's conservative tagging.)
    pub fn is_suspect_segment(&self, segment: &Segment) -> bool {
        match self {
            Property::CrashFreedom => segment.outcome.is_crash(),
            // A single element exceeding the whole-pipeline bound is suspect;
            // pipeline-level accounting happens during composition.
            Property::BoundedInstructions { max_instructions } => {
                segment.outcome.is_crash() || segment.instructions > *max_instructions
            }
            // For reachability, any way an element can drop or crash a packet
            // is suspect; composition then decides whether a well-formed
            // packet with the right destination can reach that segment.
            Property::Reachability { .. } => {
                matches!(segment.outcome, SegmentOutcome::Dropped) || segment.outcome.is_crash()
            }
            // Temporal properties are not decided by the suspect×prefix
            // walk at all: the Büchi-product search enumerates its own
            // candidate lassos, so no segment is "suspect" in the Step-2
            // sense (this also keeps compose sharding a no-op for them).
            Property::Temporal(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_symbex::{CrashKind, SymPacket};

    fn segment(outcome: SegmentOutcome, instructions: u64) -> Segment {
        Segment {
            constraint: vec![],
            outcome,
            packet: SymPacket::new(),
            ds_reads: vec![],
            ds_writes: vec![],
            instructions,
            approximate: false,
        }
    }

    #[test]
    fn crash_freedom_flags_only_crashes() {
        let p = Property::CrashFreedom;
        assert!(p.is_suspect_segment(&segment(
            SegmentOutcome::Crashed(CrashKind::DivisionByZero),
            5
        )));
        assert!(!p.is_suspect_segment(&segment(SegmentOutcome::Emitted(0), 5)));
        assert!(!p.is_suspect_segment(&segment(SegmentOutcome::Dropped, 5)));
    }

    #[test]
    fn bounded_instructions_flags_expensive_segments() {
        let p = Property::BoundedInstructions {
            max_instructions: 100,
        };
        assert!(p.is_suspect_segment(&segment(SegmentOutcome::Emitted(0), 101)));
        assert!(!p.is_suspect_segment(&segment(SegmentOutcome::Emitted(0), 100)));
        assert!(p.is_suspect_segment(&segment(
            SegmentOutcome::Crashed(CrashKind::PacketOutOfBounds),
            1
        )));
    }

    #[test]
    fn reachability_flags_drops_and_crashes() {
        let p = Property::Reachability {
            dst: Ipv4Addr::new(192, 168, 0, 1),
            dst_offset: 30,
            deliver_to: vec!["out1".to_string()],
            may_drop: vec!["chk".to_string()],
        };
        assert!(p.is_suspect_segment(&segment(SegmentOutcome::Dropped, 1)));
        assert!(p.is_suspect_segment(&segment(
            SegmentOutcome::Crashed(CrashKind::LoopBoundExceeded),
            1
        )));
        assert!(!p.is_suspect_segment(&segment(SegmentOutcome::Emitted(1), 1)));
    }

    #[test]
    fn temporal_segments_are_never_suspect() {
        let spec = LtlSpec::parse("G (at(chk) -> F (forwarded | dropped))").unwrap();
        let p = Property::Temporal(spec);
        assert!(!p.is_suspect_segment(&segment(
            SegmentOutcome::Crashed(CrashKind::DivisionByZero),
            5
        )));
        assert!(!p.is_suspect_segment(&segment(SegmentOutcome::Dropped, 5)));
        assert!(p.name().starts_with("temporal("));
        assert!(p.name().contains("at(chk)"));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Property::CrashFreedom.name(), "crash-freedom");
        assert!(Property::BoundedInstructions {
            max_instructions: 3600
        }
        .name()
        .contains("3600"));
        assert!(Property::Reachability {
            dst: Ipv4Addr::new(10, 0, 0, 1),
            dst_offset: 30,
            deliver_to: vec![],
            may_drop: vec![],
        }
        .name()
        .contains("10.0.0.1"));
    }
}

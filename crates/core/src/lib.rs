//! # dataplane-verifier — compositional verification of software dataplanes
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! verifier that proves pipeline-level properties (crash freedom, bounded
//! per-packet instruction counts, reachability) by symbolically executing
//! each packet-processing element **in isolation** and then composing the
//! per-element results, instead of symbolically executing the pipeline as one
//! program.
//!
//! The verification process follows §3 of Dobrescu & Argyraki, *Toward a
//! Verifiable Software Dataplane* (HotNets 2013):
//!
//! 1. **Step 1** ([`summary`]) — every distinct element behaviour is explored
//!    once with the symbolic engine; segments that could violate the target
//!    property are tagged *suspect* ([`property`]).
//! 2. **Step 2** ([`compose`], [`verifier`]) — suspect segments are stitched
//!    onto every feasible pipeline prefix; the solver either discharges the
//!    stitched path as infeasible or produces a concrete counterexample
//!    packet, which is then confirmed by replaying it on the pipeline.
//!
//! The [`monolithic`] module implements the baseline the paper compares
//! against (whole-pipeline symbolic execution with unrolled loops and no
//! summary reuse), and the benches in `crates/bench` regenerate the paper's
//! evaluation from these two code paths.
//!
//! ## Example
//!
//! ```
//! use dataplane_pipeline::presets::ip_router_pipeline;
//! use dataplane_verifier::{Property, Verifier};
//!
//! let router = ip_router_pipeline();
//! let mut verifier = Verifier::new();
//! let report = verifier.verify(&router, &Property::CrashFreedom);
//! assert!(report.is_proven(), "{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compose;
pub mod monolithic;
pub mod property;
pub mod report;
pub mod summary;
pub mod temporal;
pub mod verifier;

pub use dataplane_temporal::LtlSpec;
pub use monolithic::{explore_monolithic, MonolithicConfig, MonolithicResult};
pub use property::Property;
pub use report::{
    Counterexample, InstructionBoundReport, Report, UnprovenPath, Verdict, VerificationStats,
};
pub use summary::{summary_key, ElementSummary, SummaryCache};
pub use verifier::{
    materialise_packet, run_violates_property, CheckOutcome, CheckRecord, ComposeExecutor,
    ComposeOutline, ComposeShardResult, EscalationLadder, OutlineNode, ParallelComposition,
    ShardEdge, ShardNodeRecord, ShardTiming, Verifier, VerifierOptions, ESCALATION_FACTOR,
};

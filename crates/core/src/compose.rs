//! Step 2: composing per-element segments into pipeline paths.
//!
//! A segment's constraint and packet transform are expressed over the symbols
//! of *that element's input packet*. To reason about a pipeline path we
//! rewrite ("stitch", in the paper's terms) every downstream term into the
//! symbol space of the *original* packet entering the pipeline, by
//! substituting each `PacketByte(i)` / `PacketLen` with the symbolic output
//! of the upstream prefix, and renaming per-element fresh variables and
//! data-structure reads so that different pipeline positions cannot collide.

use dataplane_symbex::term::{self, Term, TermRef};
use dataplane_symbex::{SymPacket, VarId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Stride between the variable/read namespaces of consecutive pipeline
/// stages.
pub const STAGE_STRIDE: u32 = 1_000_000;
/// First variable id used for over-approximation variables created during
/// composition (far above any renamed engine variable).
const FRESH_BASE: u32 = 0x4000_0000;
/// Span of the over-approximation variable namespace owned by one
/// composition depth (see [`FreshScope`]).
const FRESH_SPAN: u32 = 1 << 20;
/// Deepest composition depth the depth-indexed namespaces support: past
/// this, stage strides would run into `FRESH_BASE` (and fresh spans would
/// approach `u32::MAX`), silently aliasing ids from different depths. No
/// real pipeline path approaches this (paths are acyclic, so depth is
/// bounded by the element count), and aliased namespaces could corrupt
/// verdicts — so exceeding the bound is a loud panic, never an alias.
pub const MAX_COMPOSE_DEPTH: usize = 1024;

/// The variable namespace of composition depth `depth` (0 = the pipeline
/// entry element). Depth-indexed strides make the rewritten terms of a
/// composed path a pure function of the path itself — independent of the
/// order in which paths are explored — which is what lets a parallel Step-2
/// walk produce terms identical to the sequential walk.
pub fn stride_for_depth(depth: usize) -> u32 {
    assert!(
        depth < MAX_COMPOSE_DEPTH,
        "composed path depth {depth} exceeds MAX_COMPOSE_DEPTH ({MAX_COMPOSE_DEPTH})"
    );
    (depth as u32 + 1) * STAGE_STRIDE
}

/// The composition depth owning renamed variable/read id `id`, if any
/// (inverse of [`stride_for_depth`]; `None` for original-namespace ids and
/// for over-approximation variables).
pub fn depth_of_id(id: u32) -> Option<usize> {
    if id >= FRESH_BASE {
        return None;
    }
    (id / STAGE_STRIDE).checked_sub(1).map(|d| d as usize)
}

/// A deterministic allocator for over-approximation variables, scoped to one
/// rewrite call at one composition depth. Within a composed path each depth
/// contributes exactly one rewrite call, so per-depth bases keep the ids
/// unique within any one constraint set while staying reproducible across
/// walk orders (unlike [`Composer`]'s process-global counter).
pub struct FreshScope {
    next: AtomicU32,
}

impl FreshScope {
    /// The allocator for a rewrite performed at composition depth `depth`.
    pub fn for_depth(depth: usize) -> FreshScope {
        assert!(
            depth < MAX_COMPOSE_DEPTH,
            "composed path depth {depth} exceeds MAX_COMPOSE_DEPTH ({MAX_COMPOSE_DEPTH})"
        );
        FreshScope {
            next: AtomicU32::new(FRESH_BASE + depth as u32 * FRESH_SPAN),
        }
    }

    fn fresh(&self, width: u8) -> TermRef {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        Arc::new(Term::Var {
            id: VarId(id),
            width,
        })
    }
}

/// The symbolic view of the packet at some point in the pipeline, expressed
/// over the original input packet's symbols.
#[derive(Clone)]
pub enum View {
    /// The packet exactly as it entered the pipeline.
    Original,
    /// The packet after one more element.
    Stage(Arc<StageView>),
}

/// One composition stage: the previous view plus the packet transform of the
/// segment taken through the element at this stage.
pub struct StageView {
    prev: View,
    packet: SymPacket,
    stride: u32,
}

/// Shared composition context: allocates stage strides and over-approximation
/// variables, and remembers which pipeline element owns each stride (needed
/// to concretise static state later).
pub struct Composer {
    next_stride: u32,
    /// Atomic (rather than `Cell`) so a fully-composed `Composer` can be
    /// shared across the worker threads of a parallel Step-2 run.
    next_fresh: AtomicU32,
    /// `(stride, element index)` pairs in allocation order.
    pub stride_elements: Vec<(u32, usize)>,
}

impl Default for Composer {
    fn default() -> Self {
        Composer::new()
    }
}

impl Composer {
    /// A fresh composer.
    pub fn new() -> Self {
        Composer {
            next_stride: STAGE_STRIDE,
            next_fresh: AtomicU32::new(FRESH_BASE),
            stride_elements: Vec::new(),
        }
    }

    /// Allocate the variable namespace for the next stage, owned by
    /// `element_idx`.
    pub fn alloc_stride(&mut self, element_idx: usize) -> u32 {
        let stride = self.next_stride;
        self.next_stride += STAGE_STRIDE;
        self.stride_elements.push((stride, element_idx));
        stride
    }

    /// Which element owns the namespace that variable/read id `id` falls in,
    /// if any. Serves the legacy allocation-order stride scheme
    /// ([`Composer::alloc_stride`], still used by the monolithic baseline
    /// and the instruction-bound walk); the Step-2 walk's depth-indexed
    /// scheme resolves elements through [`depth_of_id`] instead.
    pub fn element_of_id(&self, id: u32) -> Option<usize> {
        if id >= FRESH_BASE {
            return None;
        }
        let stride = (id / STAGE_STRIDE) * STAGE_STRIDE;
        self.stride_elements
            .iter()
            .find(|(s, _)| *s == stride)
            .map(|(_, e)| *e)
    }

    fn fresh(&self, width: u8) -> TermRef {
        let id = self.next_fresh.fetch_add(1, Ordering::Relaxed);
        Arc::new(Term::Var {
            id: VarId(id),
            width,
        })
    }

    /// Allocate an over-approximation variable from `scope` when one is
    /// given (the deterministic Step-2 walk), else from the process-global
    /// counter (legacy sequential callers).
    fn fresh_in(&self, scope: Option<&FreshScope>, width: u8) -> TermRef {
        match scope {
            Some(scope) => scope.fresh(width),
            None => self.fresh(width),
        }
    }

    /// Extend `view` with the packet transform of a segment taken at
    /// `stride`.
    pub fn extend_view(&self, view: &View, packet: &SymPacket, stride: u32) -> View {
        View::Stage(Arc::new(StageView {
            prev: view.clone(),
            packet: packet.clone(),
            stride,
        }))
    }

    /// Byte `j` of the packet described by `view`, as a term over the
    /// original input symbols.
    pub fn view_byte(&self, view: &View, j: i64) -> TermRef {
        self.view_byte_in(view, j, None)
    }

    fn view_byte_in(&self, view: &View, j: i64, scope: Option<&FreshScope>) -> TermRef {
        match view {
            View::Original => {
                if j >= 0 {
                    Arc::new(Term::PacketByte(j))
                } else {
                    term::constant(dataplane_ir::BitVec::u8(0))
                }
            }
            View::Stage(stage) => {
                if stage.packet.out_byte_is_unknown(j) {
                    // Unknown content after a symbolic-offset rewrite that
                    // may have reached this byte. Bytes outside the clobber
                    // range stay precise — that is what lets fixed header
                    // fields flow through option-processing elements.
                    return self.fresh_in(scope, 8);
                }
                let local = stage.packet.out_byte(j);
                self.rewrite_in(&stage.prev, stage.stride, &local, scope)
            }
        }
    }

    /// The length of the packet described by `view`, over original symbols.
    pub fn view_len(&self, view: &View) -> TermRef {
        self.view_len_in(view, None)
    }

    fn view_len_in(&self, view: &View, scope: Option<&FreshScope>) -> TermRef {
        match view {
            View::Original => Arc::new(Term::PacketLen),
            View::Stage(stage) => {
                let local = stage.packet.out_len();
                self.rewrite_in(&stage.prev, stage.stride, &local, scope)
            }
        }
    }

    /// The net front-shift of `view` relative to the original packet when the
    /// view is a pure shift (no byte rewritten anywhere along the prefix).
    fn pure_shift(&self, view: &View) -> Option<i64> {
        match view {
            View::Original => Some(0),
            View::Stage(stage) => {
                if stage.packet.rewrites_bytes() {
                    None
                } else {
                    Some(self.pure_shift(&stage.prev)? + stage.packet.base())
                }
            }
        }
    }

    /// Rewrite a term expressed over the input symbols of the element sitting
    /// *after* `view` (whose fresh-variable namespace is `stride`) into a
    /// term over the original input symbols.
    pub fn rewrite(&self, view: &View, stride: u32, t: &TermRef) -> TermRef {
        self.rewrite_in(view, stride, t, None)
    }

    fn rewrite_in(
        &self,
        view: &View,
        stride: u32,
        t: &TermRef,
        scope: Option<&FreshScope>,
    ) -> TermRef {
        term::substitute(t, &|leaf| match leaf {
            Term::PacketByte(i) => Some(self.view_byte_in(view, *i, scope)),
            Term::PacketLen => Some(self.view_len_in(view, scope)),
            Term::Var { id, width } => Some(Arc::new(Term::Var {
                id: VarId(id.0 + stride),
                width: *width,
            })),
            Term::DsRead {
                ds,
                key,
                seq,
                width,
            } => Some(Arc::new(Term::DsRead {
                ds: *ds,
                key: self.rewrite_in(view, stride, key, scope),
                seq: seq + stride,
                width: *width,
            })),
            Term::PacketByteAt { index } => {
                let rewritten_index = self.rewrite_in(view, stride, index, scope);
                match self.pure_shift(view) {
                    Some(shift) => {
                        let shifted = if shift == 0 {
                            rewritten_index
                        } else if shift > 0 {
                            term::binary(
                                dataplane_ir::BinOp::Add,
                                rewritten_index,
                                term::constant(dataplane_ir::BitVec::u32(shift as u32)),
                            )
                        } else {
                            term::binary(
                                dataplane_ir::BinOp::Sub,
                                rewritten_index,
                                term::constant(dataplane_ir::BitVec::u32((-shift) as u32)),
                            )
                        };
                        Some(Arc::new(Term::PacketByteAt { index: shifted }))
                    }
                    // Bytes may have been rewritten upstream: the value read
                    // at a symbolic offset is unknown.
                    None => Some(self.fresh_in(scope, 8)),
                }
            }
            _ => None,
        })
    }

    /// Rewrite a whole constraint (conjunct list).
    pub fn rewrite_all(&self, view: &View, stride: u32, terms: &[TermRef]) -> Vec<TermRef> {
        terms
            .iter()
            .map(|t| self.rewrite(view, stride, t))
            .collect()
    }

    /// [`Composer::rewrite_all`] with over-approximation variables drawn from
    /// `scope` instead of the process-global counter: the resulting terms are
    /// a pure function of `(view, stride, terms)`, which the parallel Step-2
    /// walk relies on for order-independent (and thus sequential-identical)
    /// composition.
    pub fn rewrite_all_scoped(
        &self,
        view: &View,
        stride: u32,
        terms: &[TermRef],
        scope: &FreshScope,
    ) -> Vec<TermRef> {
        terms
            .iter()
            .map(|t| self.rewrite_in(view, stride, t, Some(scope)))
            .collect()
    }
}

/// Substitute concrete values for chosen original packet bytes (used by the
/// reachability property to pin the destination address).
pub fn bind_packet_bytes(terms: &[TermRef], bindings: &[(i64, u8)]) -> Vec<TermRef> {
    terms
        .iter()
        .map(|t| {
            term::substitute(t, &|leaf| match leaf {
                Term::PacketByte(i) => bindings
                    .iter()
                    .find(|(j, _)| j == i)
                    .map(|(_, v)| term::constant(dataplane_ir::BitVec::u8(*v))),
                _ => None,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane_ir::{BinOp, BitVec};
    use dataplane_symbex::term::{binary, constant, eval, Assignment};

    fn c32(v: u32) -> TermRef {
        constant(BitVec::u32(v))
    }

    #[test]
    fn original_view_is_identity() {
        let composer = Composer::new();
        let v = View::Original;
        assert_eq!(composer.view_byte(&v, 3).to_string(), "pkt[3]");
        assert_eq!(composer.view_len(&v).to_string(), "pkt.len");
        assert_eq!(
            composer.view_byte(&v, -1).as_const().unwrap(),
            BitVec::u8(0)
        );
    }

    #[test]
    fn strip_stage_shifts_downstream_bytes() {
        let mut composer = Composer::new();
        let stride = composer.alloc_stride(0);
        let mut packet = SymPacket::new();
        packet.strip_front(14);
        let view = composer.extend_view(&View::Original, &packet, stride);
        // Byte 0 after the strip is original byte 14.
        assert_eq!(composer.view_byte(&view, 0).to_string(), "pkt[14]");
        // Length shrinks by 14.
        let len = composer.view_len(&view);
        let mut a = Assignment::from_packet(&[0u8; 64]);
        a.packet_len = 64;
        assert_eq!(eval(&len, &a).unwrap(), BitVec::u32(50));
    }

    #[test]
    fn rewrites_rename_vars_and_reads() {
        let mut composer = Composer::new();
        let stride = composer.alloc_stride(2);
        let var = Arc::new(Term::Var {
            id: VarId(3),
            width: 8,
        });
        let read = Arc::new(Term::DsRead {
            ds: dataplane_ir::DsId(1),
            key: Arc::new(Term::PacketByte(0)),
            seq: 7,
            width: 16,
        });
        let t = binary(
            BinOp::Eq,
            term::cast(dataplane_ir::CastKind::ZExt, 16, var),
            read,
        );
        let rewritten = composer.rewrite(&View::Original, stride, &t);
        let s = rewritten.to_string();
        assert!(s.contains(&format!("v{}", 3 + stride)), "{s}");
        assert!(s.contains(&format!("#{}", 7 + stride)), "{s}");
        assert_eq!(composer.element_of_id(3 + stride), Some(2));
        assert_eq!(composer.element_of_id(FRESH_BASE + 1), None);
    }

    #[test]
    fn written_bytes_flow_into_downstream_terms() {
        // Upstream writes byte 1 to (pkt[0] + 1); downstream constraint
        // "byte 1 == 5" must become "pkt[0] + 1 == 5".
        let mut composer = Composer::new();
        let stride0 = composer.alloc_stride(0);
        let mut packet = SymPacket::new();
        let mut no_fresh = || panic!("unexpected fresh var");
        let incremented = binary(
            BinOp::Add,
            Arc::new(Term::PacketByte(0)),
            constant(BitVec::u8(1)),
        );
        packet.store(&c32(1), 1, &incremented, &mut no_fresh);
        let view = composer.extend_view(&View::Original, &packet, stride0);

        let stride1 = composer.alloc_stride(1);
        let downstream = binary(
            BinOp::Eq,
            Arc::new(Term::PacketByte(1)),
            constant(BitVec::u8(5)),
        );
        let composed = composer.rewrite(&view, stride1, &downstream);
        // Evaluate under a concrete original packet: byte0 = 4 satisfies it.
        let a = Assignment::from_packet(&[4, 9, 9]);
        assert!(eval(&composed, &a).unwrap().is_true());
        let a = Assignment::from_packet(&[7, 9, 9]);
        assert!(!eval(&composed, &a).unwrap().is_true());
    }

    #[test]
    fn clobbered_stage_over_approximates_bytes() {
        let mut composer = Composer::new();
        let stride = composer.alloc_stride(0);
        let mut packet = SymPacket::new();
        let mut counter = 0;
        let mut fresh = || {
            counter += 1;
            Arc::new(Term::Var {
                id: VarId(100 + counter),
                width: 8,
            })
        };
        // A store at a symbolic offset clobbers the overlay.
        packet.store(
            &Arc::new(Term::PacketLen),
            1,
            &constant(BitVec::u8(1)),
            &mut fresh,
        );
        let view = composer.extend_view(&View::Original, &packet, stride);
        let b = composer.view_byte(&view, 3);
        assert!(
            b.to_string().starts_with('v'),
            "expected a fresh var, got {b}"
        );
        // Length is still precise.
        assert_eq!(composer.view_len(&view).to_string(), "pkt.len");
    }

    #[test]
    fn depth_strides_round_trip() {
        assert_eq!(stride_for_depth(0), STAGE_STRIDE);
        assert_eq!(depth_of_id(stride_for_depth(3) + 17), Some(3));
        assert_eq!(depth_of_id(5), None, "original namespace has no depth");
        assert_eq!(depth_of_id(FRESH_BASE + 1), None, "fresh vars have none");
    }

    #[test]
    fn scoped_rewrites_are_order_independent() {
        // A clobbered view forces fresh-variable allocation; scoped rewrites
        // must produce identical terms regardless of unrelated allocations
        // in between (the global counter would drift).
        let mut composer = Composer::new();
        let stride = composer.alloc_stride(0);
        let mut packet = SymPacket::new();
        let mut counter = 0;
        let mut fresh = || {
            counter += 1;
            Arc::new(Term::Var {
                id: VarId(100 + counter),
                width: 8,
            })
        };
        packet.store(
            &Arc::new(Term::PacketLen),
            1,
            &constant(BitVec::u8(1)),
            &mut fresh,
        );
        let view = composer.extend_view(&View::Original, &packet, stride);
        let t = binary(
            BinOp::Eq,
            Arc::new(Term::PacketByte(3)),
            constant(BitVec::u8(7)),
        );
        let a = composer.rewrite_all_scoped(
            &view,
            stride_for_depth(1),
            std::slice::from_ref(&t),
            &FreshScope::for_depth(1),
        );
        composer.fresh(8); // perturb the global counter
        composer.fresh(8);
        let b = composer.rewrite_all_scoped(
            &view,
            stride_for_depth(1),
            &[t],
            &FreshScope::for_depth(1),
        );
        assert_eq!(a, b, "scoped rewrite must be a pure function");
        assert!(
            a[0].to_string().contains('v'),
            "clobber produced a fresh var"
        );
    }

    #[test]
    fn binding_packet_bytes_substitutes_constants() {
        let t = binary(
            BinOp::Eq,
            Arc::new(Term::PacketByte(30)),
            constant(BitVec::u8(0xc0)),
        );
        let bound = bind_packet_bytes(&[t], &[(30, 0xc0)]);
        assert!(bound[0].is_true());
        let t = binary(
            BinOp::Eq,
            Arc::new(Term::PacketByte(30)),
            constant(BitVec::u8(0x01)),
        );
        let bound = bind_packet_bytes(&[t], &[(30, 0xc0)]);
        assert!(bound[0].is_false());
    }

    #[test]
    fn stacked_strips_accumulate() {
        let mut composer = Composer::new();
        let s0 = composer.alloc_stride(0);
        let mut p0 = SymPacket::new();
        p0.strip_front(14);
        let v1 = composer.extend_view(&View::Original, &p0, s0);
        let s1 = composer.alloc_stride(1);
        let mut p1 = SymPacket::new();
        p1.strip_front(20);
        let v2 = composer.extend_view(&v1, &p1, s1);
        assert_eq!(composer.view_byte(&v2, 0).to_string(), "pkt[34]");
        let len = composer.view_len(&v2);
        let mut a = Assignment::from_packet(&[0u8; 100]);
        a.packet_len = 100;
        assert_eq!(eval(&len, &a).unwrap(), BitVec::u32(66));
    }
}

//! Byte-identity of the shard fold under adversarial fleet shapes.
//!
//! `fold_composition_shards` promises the same report as an unsharded
//! `Verifier::verify`, whatever the shard boundaries or fleet behaviour
//! were. This property test throws randomized tilings at that promise:
//! cut points landing *inside* a suspect node's unit block (intra-suspect
//! splits), shards whose worker "dies" mid-slice and ships nothing,
//! shards cancelled before they start, and shards that honour a steal
//! request and hand a remainder back to be recomputed elsewhere. The fold
//! must reproduce the baseline verdict, counterexamples, unproven paths,
//! and stats field for field — field identity of the deterministic report
//! is byte identity of its serialised form.

use dataplane_pipeline::presets::{
    buggy_pipeline, firewall_pipeline, ip_router_pipeline, linear_router_pipeline,
    middlebox_pipeline,
};
use dataplane_pipeline::Pipeline;
use dataplane_symbex::CancelToken;
use dataplane_verifier::{Property, Verifier};
use proptest::prelude::*;

/// The preset pipelines the random tilings are checked against.
fn presets() -> Vec<(&'static str, Pipeline)> {
    vec![
        ("ip_router", ip_router_pipeline()),
        ("linear_router", linear_router_pipeline()),
        ("middlebox", middlebox_pipeline()),
        ("firewall", firewall_pipeline(vec![])),
        ("buggy", buggy_pipeline()),
    ]
}

/// Random cut points mapped into `(0, total)`: the resulting ranges tile
/// `[0, total)` but ignore node boundaries entirely, so multi-unit
/// suspects routinely end up split across shards.
fn ranges_from_cuts(total: usize, cuts: &[u64]) -> Vec<(usize, usize)> {
    let mut points: Vec<usize> = cuts
        .iter()
        .filter(|_| total > 1)
        .map(|&c| 1 + (c as usize) % (total - 1))
        .collect();
    points.sort_unstable();
    points.dedup();
    points.push(total);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    for end in points {
        if end > start {
            ranges.push((start, end));
            start = end;
        }
    }
    ranges
}

/// What the randomized fleet does with one shard.
#[derive(Clone, Copy, Debug)]
enum Fate {
    /// The worker computes the slice and ships every record.
    Normal,
    /// The worker dies mid-slice: nothing ships, the fold computes the
    /// uncovered units inline.
    Dead,
    /// The shard's group was cancelled before the walk started; whatever
    /// complete slots survived (none, for a pre-fired token) still ship.
    Cancelled,
    /// A steal request fires before the walk starts: the worker makes
    /// minimal progress, ships it, and the remainder is recomputed by a
    /// fresh "idle" worker — the dispatch steal path in miniature.
    Split,
}

fn fate(pick: u64) -> Fate {
    match pick % 4 {
        0 => Fate::Normal,
        1 => Fate::Dead,
        2 => Fate::Cancelled,
        _ => Fate::Split,
    }
}

/// Run one shard under its fate, appending whatever records "arrive" at
/// the coordinator.
fn run_shard(
    pipeline: &Pipeline,
    property: &Property,
    range: (usize, usize),
    fate: Fate,
    records: &mut Vec<dataplane_verifier::ShardNodeRecord>,
) {
    let (start, end) = range;
    match fate {
        Fate::Normal => {
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard(
                pipeline,
                property,
                Vec::new(),
                start,
                end,
                &CancelToken::new(),
            );
            assert!(!shard.cancelled);
            assert!(shard.remainder.is_none());
            records.extend(shard.records);
        }
        Fate::Dead => {
            // The worker's partial results are lost with the connection.
        }
        Fate::Cancelled => {
            let cancel = CancelToken::new();
            cancel.cancel();
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard(
                pipeline,
                property,
                Vec::new(),
                start,
                end,
                &cancel,
            );
            records.extend(shard.records);
        }
        Fate::Split => {
            let split = CancelToken::new();
            split.cancel();
            let mut worker = Verifier::new();
            let shard = worker.decide_composition_shard_split(
                pipeline,
                property,
                Vec::new(),
                start,
                end,
                &CancelToken::new(),
                &split,
            );
            records.extend(shard.records);
            if let Some((r_start, r_end)) = shard.remainder {
                assert!(start <= r_start && r_start < r_end && r_end == end);
                let mut idle = Verifier::new();
                let rest = idle.decide_composition_shard(
                    pipeline,
                    property,
                    Vec::new(),
                    r_start,
                    r_end,
                    &CancelToken::new(),
                );
                assert!(rest.remainder.is_none());
                records.extend(rest.records);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the tiling and however the fleet misbehaves, the fold
    /// matches the unsharded baseline field for field.
    #[test]
    fn fold_is_byte_identical_under_random_tilings(
        preset in 0usize..5,
        cuts in proptest::collection::vec(any::<u64>(), 0..6),
        fates in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let (_name, pipeline) = presets().swap_remove(preset);
        let property = Property::CrashFreedom;

        let mut baseline = Verifier::new();
        let base = baseline.verify(&pipeline, &property);

        let mut outliner = Verifier::new();
        let Some(outline) =
            outliner.outline_composition(&pipeline, &property, Vec::new())
        else {
            // No suspects: the sharded path is never taken for this scenario.
            return Ok(());
        };
        let total = outline.total_weight();
        prop_assert!(total > 0);
        let ranges = ranges_from_cuts(total, &cuts);
        prop_assert_eq!(ranges.last().copied(), Some((ranges[ranges.len() - 1].0, total)));

        let mut records = Vec::new();
        for (i, &range) in ranges.iter().enumerate() {
            run_shard(
                &pipeline,
                &property,
                range,
                fate(fates[i % fates.len()]),
                &mut records,
            );
        }

        let mut folder = Verifier::new();
        let folded = folder.fold_composition_shards(
            &pipeline,
            &property,
            Vec::new(),
            &outline,
            records,
        );
        prop_assert_eq!(folded.verdict, base.verdict);
        prop_assert_eq!(folded.counterexamples, base.counterexamples);
        prop_assert_eq!(folded.unproven, base.unproven);
        prop_assert_eq!(folded.stats, base.stats);
    }

    /// A cut inside every multi-unit node: one-unit shards with random
    /// fates are the most fragmented fleet possible, and the fold still
    /// reproduces the baseline.
    #[test]
    fn unit_granular_tiling_survives_random_fates(
        preset in 0usize..5,
        fates in proptest::collection::vec(any::<u64>(), 8),
    ) {
        let (_name, pipeline) = presets().swap_remove(preset);
        let property = Property::CrashFreedom;

        let mut baseline = Verifier::new();
        let base = baseline.verify(&pipeline, &property);

        let mut outliner = Verifier::new();
        let Some(outline) =
            outliner.outline_composition(&pipeline, &property, Vec::new())
        else {
            return Ok(());
        };

        let mut records = Vec::new();
        for (i, range) in outline.shards(1).into_iter().enumerate() {
            run_shard(
                &pipeline,
                &property,
                range,
                fate(fates[i % fates.len()]),
                &mut records,
            );
        }

        let mut folder = Verifier::new();
        let folded = folder.fold_composition_shards(
            &pipeline,
            &property,
            Vec::new(),
            &outline,
            records,
        );
        prop_assert_eq!(folded.verdict, base.verdict);
        prop_assert_eq!(folded.counterexamples, base.counterexamples);
        prop_assert_eq!(folded.unproven, base.unproven);
        prop_assert_eq!(folded.stats, base.stats);
    }
}

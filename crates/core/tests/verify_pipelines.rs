//! End-to-end verification tests: the paper's headline results in miniature.
//!
//! * the reference IP-router pipeline is proven crash-free for any input
//!   (§3 "Preliminary Results"),
//! * removing the upstream `CheckIPHeader` makes the same options-processing
//!   code unsafe, and the verifier produces a concrete crashing packet
//!   (the Figure-2 effect, in both directions),
//! * planted bugs are found with confirmed witness packets,
//! * the stateful middlebox (NetFlow + NAT) is proven crash-free,
//! * the toy pipeline of Figure 2 is proven crash-free by composition.

use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_net::Packet;
use dataplane_pipeline::elements::*;
use dataplane_pipeline::presets::{
    buggy_pipeline, firewall_pipeline, ip_router_pipeline, linear_router_pipeline,
    middlebox_pipeline,
};
use dataplane_pipeline::{Action, Element, Pipeline};
use dataplane_verifier::{Property, Verdict, Verifier};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// E1: crash freedom of the router pipelines
// ---------------------------------------------------------------------------

#[test]
fn router_pipeline_is_crash_free() {
    let router = ip_router_pipeline();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&router, &Property::CrashFreedom);
    assert!(report.is_proven(), "expected proof, got:\n{report}");
    // The interesting part: Step 1 must have found suspects (the options
    // walker can crash in isolation) and Step 2 must have discharged them.
    assert!(report.stats.suspects > 0, "{report}");
    assert!(report.stats.discharged >= report.stats.suspects);
}

#[test]
fn linear_router_is_crash_free_too() {
    let router = linear_router_pipeline();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&router, &Property::CrashFreedom);
    assert!(report.is_proven(), "expected proof, got:\n{report}");
}

#[test]
fn options_walker_without_header_check_is_unsafe() {
    // The same IPOptions element, composed without the protective
    // CheckIPHeader: the verifier must find a crashing packet and confirm it
    // by replay.
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let opts = b.add("opts", Box::new(IPOptions::with_default_addr()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, opts, out]);
    let pipeline = b.build().unwrap();

    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(
        report.is_violated(),
        "expected a confirmed violation, got:\n{report}"
    );
    let ce = report
        .counterexamples
        .iter()
        .find(|c| c.confirmed)
        .expect("confirmed counterexample");
    // Replaying the witness on the native pipeline crashes as well.
    let mut native = {
        let mut b = Pipeline::builder();
        let strip = b.add("strip", Box::new(EthDecap::new()));
        let opts = b.add("opts", Box::new(IPOptions::with_default_addr()));
        let out = b.add("out", Box::new(Sink::new()));
        b.chain(&[strip, opts, out]);
        b.build().unwrap()
    };
    let outcome = native.push(Packet::from_bytes(ce.packet.clone()));
    assert!(
        outcome.is_crash(),
        "witness must crash natively: {outcome:?}"
    );
}

// ---------------------------------------------------------------------------
// Failure injection: planted bugs are found with witnesses
// ---------------------------------------------------------------------------

#[test]
fn buggy_ttl_element_is_caught_with_witness() {
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let ttl = b.add("ttl", Box::new(BuggyDecTTL::new()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, chk, ttl, out]);
    let pipeline = b.build().unwrap();

    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(report.is_violated(), "{report}");
    let ce = &report.counterexamples[0];
    assert!(ce.confirmed);
    assert!(
        ce.description.contains("division by zero"),
        "{}",
        ce.description
    );
    // The witness packet has TTL zero in its IPv4 header.
    assert_eq!(ce.packet[14 + 8], 0);
}

#[test]
fn buggy_pipeline_from_presets_is_violated() {
    let pipeline = buggy_pipeline();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(report.is_violated(), "{report}");
    assert!(report.counterexamples.iter().any(|c| c.confirmed));
}

#[test]
fn correct_dec_ttl_is_not_flagged() {
    // Sanity: the correct DecTTL in the same position produces no violation.
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let ttl = b.add("ttl", Box::new(DecTTL::new()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, chk, ttl, out]);
    let pipeline = b.build().unwrap();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(report.is_proven(), "{report}");
}

// ---------------------------------------------------------------------------
// Stateful elements (the paper's "currently experimenting with" set)
// ---------------------------------------------------------------------------

#[test]
fn middlebox_with_netflow_and_nat_is_crash_free() {
    let pipeline = middlebox_pipeline();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(report.is_proven(), "{report}");
}

#[test]
fn overflowing_counter_is_reported() {
    // The planted counter-overflow bug (the paper lists counter overflow as a
    // target defect class): the verifier must not prove it safe.
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let ctr = b.add("ctr", Box::new(OverflowingCounter::new()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, chk, ctr, out]);
    let pipeline = b.build().unwrap();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    assert!(
        !report.is_proven(),
        "a counter that can overflow must not be proven crash-free:\n{report}"
    );
}

// ---------------------------------------------------------------------------
// Figure 2: the toy two-element pipeline
// ---------------------------------------------------------------------------

/// Element E1 of Figure 2: clamps negative inputs to zero.
struct ToyE1;
/// Element E2 of Figure 2: asserts its input is non-negative.
struct ToyE2;

impl Element for ToyE1 {
    fn type_name(&self) -> &'static str {
        "ToyE1"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        let v = packet.get_u32(0).unwrap_or(0) as i32;
        let out = if v < 0 { 0 } else { v as u32 };
        packet.set_u32(0, out);
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("ToyE1", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.if_else(
            slt(l(input), c(32, 0)),
            Block::with(|bb| {
                bb.assign(out, c(32, 0));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).unwrap()
    }
}

impl Element for ToyE2 {
    fn type_name(&self) -> &'static str {
        "ToyE2"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: Packet) -> Action {
        let v = packet.get_u32(0).unwrap_or(0) as i32;
        if v < 0 {
            return Action::Crash(dataplane_ir::CrashReason::AssertionFailed {
                message: "in >= 0".into(),
            });
        }
        let out = if v < 10 { 10 } else { v as u32 };
        packet.set_u32(0, out);
        Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("ToyE2", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.assert(sle(c(32, 0), l(input)), "in >= 0");
        b.if_else(
            slt(l(input), c(32, 10)),
            Block::with(|bb| {
                bb.assign(out, c(32, 10));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).unwrap()
    }
}

fn figure2_pipeline() -> Pipeline {
    let mut b = Pipeline::builder();
    let pad = b.add("pad", Box::new(CheckLength::new(4, 4096)));
    let e1 = b.add("e1", Box::new(ToyE1));
    let e2 = b.add("e2", Box::new(ToyE2));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[pad, e1, e2, out]);
    b.build().unwrap()
}

#[test]
fn figure2_composition_discharges_the_crash() {
    // E2 alone can crash; after E1 the crash segment is infeasible, so the
    // composed pipeline is crash-free — exactly the paper's Figure 2.
    let mut verifier = Verifier::new();

    // E2 alone (behind the length guard) is NOT crash-free.
    let mut b = Pipeline::builder();
    let pad = b.add("pad", Box::new(CheckLength::new(4, 4096)));
    let e2 = b.add("e2", Box::new(ToyE2));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[pad, e2, out]);
    let alone = b.build().unwrap();
    let report = verifier.verify(&alone, &Property::CrashFreedom);
    assert!(report.is_violated(), "{report}");
    let ce = &report.counterexamples[0];
    assert!(ce.confirmed);
    assert!(ce.packet[0] & 0x80 != 0, "witness word must be negative");

    // The full E1 -> E2 pipeline is crash-free.
    let report = verifier.verify(&figure2_pipeline(), &Property::CrashFreedom);
    assert!(report.is_proven(), "{report}");
    assert!(report.stats.suspects > 0);
}

// ---------------------------------------------------------------------------
// E2: bounded instructions
// ---------------------------------------------------------------------------

#[test]
fn router_instruction_bound_covers_concrete_executions() {
    let router = linear_router_pipeline();
    let mut verifier = Verifier::new();
    let bound = verifier.max_instructions(&router);
    assert!(bound.max_instructions > 0, "{bound}");
    assert!(bound.feasible_paths > 0, "{bound}");

    // Every concrete execution over a varied workload stays below the bound.
    let concrete_pipeline = linear_router_pipeline();
    let mut model_runtime = dataplane_pipeline::ModelRuntime::new(&concrete_pipeline);
    let mut max_concrete = 0u64;
    for pkt in dataplane_net::WorkloadGen::adversarial(99).batch(300) {
        let run = model_runtime.push(pkt);
        max_concrete = max_concrete.max(run.instructions);
    }
    assert!(
        bound.max_instructions >= max_concrete,
        "bound {} must cover the concrete maximum {}",
        bound.max_instructions,
        max_concrete
    );
    // And the bound is not absurdly loose (same order of magnitude as the
    // paper's ~3600-instruction figure).
    assert!(
        bound.max_instructions < 100_000,
        "bound {} is unreasonably loose",
        bound.max_instructions
    );

    // Proving the bound as a property succeeds, and proving a bound below the
    // concrete maximum fails.
    let report = verifier.verify(
        &linear_router_pipeline(),
        &Property::BoundedInstructions {
            max_instructions: bound.max_instructions,
        },
    );
    assert!(report.is_proven(), "{report}");
    let report = verifier.verify(
        &linear_router_pipeline(),
        &Property::BoundedInstructions {
            max_instructions: max_concrete / 2,
        },
    );
    assert!(!report.is_proven(), "{report}");
}

// ---------------------------------------------------------------------------
// E6: reachability for a specific configuration
// ---------------------------------------------------------------------------

#[test]
fn reachability_holds_for_routed_destination() {
    let pipeline = firewall_pipeline(vec![]);
    let mut verifier = Verifier::new();
    let property = Property::Reachability {
        dst: Ipv4Addr::new(192, 168, 7, 7),
        dst_offset: 30,
        deliver_to: vec!["out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };
    let report = verifier.verify(&pipeline, &property);
    assert!(report.is_proven(), "{report}");
}

#[test]
fn reachability_fails_for_unrouted_destination() {
    let pipeline = firewall_pipeline(vec![]);
    let mut verifier = Verifier::new();
    let property = Property::Reachability {
        dst: Ipv4Addr::new(8, 8, 8, 8),
        dst_offset: 30,
        deliver_to: vec!["out0".to_string(), "out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };
    let report = verifier.verify(&pipeline, &property);
    assert!(
        report.is_violated(),
        "a destination with no route must be unreachable:\n{report}"
    );
    assert!(report.counterexamples.iter().any(|c| c.confirmed));
}

#[test]
fn reachability_with_blocking_filter_is_not_proven() {
    // A filter that can drop some sources means the destination is not
    // reachable from *every* source; the verifier must not claim a proof.
    let pipeline = firewall_pipeline(vec![Ipv4Addr::new(10, 0, 0, 66)]);
    let mut verifier = Verifier::new();
    let property = Property::Reachability {
        dst: Ipv4Addr::new(192, 168, 7, 7),
        dst_offset: 30,
        deliver_to: vec!["out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };
    let report = verifier.verify(&pipeline, &property);
    assert_ne!(report.verdict, Verdict::Proven, "{report}");
}

// ---------------------------------------------------------------------------
// Adaptive solver budgets
// ---------------------------------------------------------------------------

#[test]
fn aborted_budgets_escalate_once_and_are_counted() {
    use dataplane_symbex::SolverConfig;
    use dataplane_verifier::VerifierOptions;
    // Starve the solver so checks abort a stage; the firewall reachability
    // scenario is proven under default budgets, so any Unknown here is a
    // budget artefact — exactly what escalation exists for.
    let tiny = SolverConfig {
        model_search_tries: 8,
        max_fm_constraints: 4,
        ..SolverConfig::default()
    };
    let property = Property::Reachability {
        dst: Ipv4Addr::new(192, 168, 7, 7),
        dst_offset: 30,
        deliver_to: vec!["out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };

    let mut fixed = Verifier::with_options(VerifierOptions {
        solver: tiny.clone(),
        escalate_budgets: false,
        ..VerifierOptions::default()
    });
    let base = fixed.verify(&firewall_pipeline(vec![]), &property);
    assert_eq!(base.stats.budget_escalations, 0);
    assert!(
        base.stats.fm_budget_aborts + base.stats.model_search_aborts > 0,
        "starved budgets must abort at least one stage:\n{base}"
    );
    assert!(
        !base.unproven.is_empty(),
        "starved budgets should leave undecided checks:\n{base}"
    );

    let mut adaptive = Verifier::with_options(VerifierOptions {
        solver: tiny,
        escalate_budgets: true,
        ..VerifierOptions::default()
    });
    let report = adaptive.verify(&firewall_pipeline(vec![]), &property);
    assert!(
        report.stats.budget_escalations > 0,
        "every aborted undecided check must be retried escalated:\n{report}"
    );
    assert!(
        report.unproven.len() <= base.unproven.len(),
        "escalation must not lose decisions"
    );
    assert!(
        report.stats.escalations_decided <= report.stats.budget_escalations,
        "decided escalations are a subset of escalations"
    );
    assert_eq!(
        report.stats.escalations_by_step.iter().sum::<usize>(),
        report.stats.escalations_decided,
        "per-rung counters must sum to the decided escalations"
    );
}

#[test]
fn escalation_ladder_rungs_grow_geometrically_and_are_counted_per_rung() {
    use dataplane_symbex::SolverConfig;
    use dataplane_verifier::{EscalationLadder, VerifierOptions};

    let ladder = EscalationLadder::default();
    assert_eq!(ladder.multiplier(0), 8);
    assert_eq!(ladder.multiplier(1), 64);
    assert_eq!(EscalationLadder::disabled().steps, 0);
    assert_eq!(EscalationLadder::single_retry().steps, 1);

    // Starve the solver hard enough that the first rung (×8) still aborts
    // for some checks; a two-rung ladder then decides strictly no fewer
    // checks than the single retry, and every decision lands in a per-rung
    // counter.
    let starved = SolverConfig {
        model_search_tries: 2,
        max_fm_constraints: 2,
        ..SolverConfig::default()
    };
    let property = Property::Reachability {
        dst: Ipv4Addr::new(192, 168, 7, 7),
        dst_offset: 30,
        deliver_to: vec!["out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };
    let verify_with = |ladder: EscalationLadder| {
        Verifier::with_options(VerifierOptions {
            solver: starved.clone(),
            escalate_budgets: true,
            ladder,
            ..VerifierOptions::default()
        })
        .verify(&firewall_pipeline(vec![]), &property)
    };

    let single = verify_with(EscalationLadder::single_retry());
    let two_rungs = verify_with(EscalationLadder::default());
    assert!(
        two_rungs.stats.escalations_decided >= single.stats.escalations_decided,
        "a taller ladder must not decide fewer checks"
    );
    assert!(
        two_rungs.unproven.len() <= single.unproven.len(),
        "a taller ladder must not lose decisions"
    );
    assert_eq!(
        two_rungs.stats.escalations_by_step.iter().sum::<usize>(),
        two_rungs.stats.escalations_decided,
    );
    assert!(
        two_rungs.stats.escalations_by_step.len() <= 2,
        "a two-rung ladder cannot decide at rung 3"
    );

    // A zero-height ladder behaves exactly like escalation off.
    let off = verify_with(EscalationLadder::disabled());
    assert_eq!(off.stats.budget_escalations, 0);
    assert!(off.stats.escalations_by_step.is_empty());
}

// ---------------------------------------------------------------------------
// Summary reuse
// ---------------------------------------------------------------------------

#[test]
fn summaries_are_reused_across_positions_and_pipelines() {
    let mut verifier = Verifier::new();
    // The reference router instantiates DecTTL, EthEncap, and Sink twice
    // each; summaries must be computed only once per distinct behaviour.
    let report = verifier.verify(&ip_router_pipeline(), &Property::CrashFreedom);
    assert!(report.stats.summaries_reused >= 3, "{report}");
    let computed_first = report.stats.summaries_computed;
    // Verifying a second pipeline built from the same element types computes
    // (almost) nothing new.
    let report = verifier.verify(&linear_router_pipeline(), &Property::CrashFreedom);
    assert!(report.stats.summaries_computed < computed_first, "{report}");
}

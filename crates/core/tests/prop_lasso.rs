//! Soundness of reported temporal counterexample lassos.
//!
//! The Büchi-product search reports a `Violated` verdict only after a
//! candidate lasso's materialised packet has been replayed through the
//! concrete model runtime and judged by the direct trace evaluator. This
//! property test re-runs that judgement *from scratch* for every reported
//! counterexample: a fresh `model_run_fresh` of the reported packet must
//! genuinely violate the LTL property. Mirrors
//! `crates/symbex/tests/prop_prefilter.rs`: the cheap layer (here the
//! symbolic lasso search) must never contradict the ground truth (here
//! concrete execution).

use dataplane_net::Packet;
use dataplane_pipeline::presets::{
    buggy_pipeline, firewall_pipeline, ip_router_pipeline, linear_router_pipeline,
    middlebox_pipeline,
};
use dataplane_pipeline::{model_run_fresh, Pipeline};
use dataplane_temporal::{Atom, Ltl};
use dataplane_verifier::{run_violates_property, LtlSpec, Property, Verdict, Verifier};
use proptest::prelude::*;

/// The preset pipelines the random specs are checked against.
fn presets() -> Vec<(&'static str, Pipeline)> {
    vec![
        ("ip_router", ip_router_pipeline()),
        ("linear_router", linear_router_pipeline()),
        ("middlebox", middlebox_pipeline()),
        ("firewall", firewall_pipeline(vec![])),
        ("buggy", buggy_pipeline()),
    ]
}

/// Atom pool: element names drawn from the presets (atoms naming elements
/// a pipeline lacks are simply false there), the three terminals, and one
/// header atom to push the solver through the dst case split.
fn atom(pick: u64) -> Ltl {
    let atoms = [
        Atom::At("chk".into()),
        Atom::At("rt".into()),
        Atom::At("nat".into()),
        Atom::At("strip".into()),
        Atom::Forwarded,
        Atom::Dropped,
        Atom::Crashed,
        Atom::Dst([10, 0, 0, 1]),
    ];
    Ltl::Atom(atoms[(pick % atoms.len() as u64) as usize].clone())
}

/// Deterministic random formula from a pick stream, like the parser
/// round-trip test's builder: small depth keeps the Büchi automata and
/// the product search cheap enough for a debug-profile sweep.
fn formula(picks: &mut impl Iterator<Item = u64>, depth: usize) -> Ltl {
    let pick = picks.next().unwrap_or(0);
    if depth == 0 {
        return atom(pick);
    }
    match pick % 8 {
        0 => atom(pick >> 3),
        1 => Ltl::Not(Box::new(formula(picks, depth - 1))),
        2 => Ltl::And(
            Box::new(formula(picks, depth - 1)),
            Box::new(formula(picks, depth - 1)),
        ),
        3 => Ltl::Or(
            Box::new(formula(picks, depth - 1)),
            Box::new(formula(picks, depth - 1)),
        ),
        4 => Ltl::Implies(
            Box::new(formula(picks, depth - 1)),
            Box::new(formula(picks, depth - 1)),
        ),
        5 => Ltl::Eventually(Box::new(formula(picks, depth - 1))),
        6 => Ltl::Always(Box::new(formula(picks, depth - 1))),
        _ => Ltl::Until(
            Box::new(formula(picks, depth - 1)),
            Box::new(formula(picks, depth - 1)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reported lasso counterexample replays, from a fresh runtime,
    /// to a concrete run that violates the property; a `Violated` verdict
    /// always rests on at least one such confirmed replay.
    #[test]
    fn reported_lassos_replay_to_real_violations(
        picks in proptest::collection::vec(any::<u64>(), 1..24),
        preset in 0usize..5,
    ) {
        let mut stream = picks.iter().copied();
        let f = formula(&mut stream, 2);
        // Round-trip through the parser so the checked spec is exactly
        // what would arrive over the wire.
        let spec = LtlSpec::parse(&f.to_string()).expect("printed formulas re-parse");
        let property = Property::Temporal(spec);
        let (name, pipeline) = presets().swap_remove(preset);

        let mut verifier = Verifier::new();
        let report = verifier.verify(&pipeline, &property);

        for ce in &report.counterexamples {
            if !ce.confirmed {
                continue;
            }
            let run = model_run_fresh(&pipeline, Packet::from_bytes(ce.packet.clone()));
            prop_assert!(
                run_violates_property(&pipeline, &property, &ce.packet, &run),
                "{name}: confirmed lasso does not reproduce for {}\n{report}",
                property.name(),
            );
        }
        if report.verdict == Verdict::Violated {
            prop_assert!(
                report.counterexamples.iter().any(|c| c.confirmed),
                "{name}: Violated without a confirmed lasso for {}\n{report}",
                property.name(),
            );
        }
        // Proven means the product search discharged everything: no
        // counterexamples may survive in the report.
        if report.verdict == Verdict::Proven {
            prop_assert!(report.counterexamples.is_empty(), "{name}:\n{report}");
        }
    }
}

/// The bundled planted-violation specs ship confirmed, reproducing lassos
/// (the fixed-spec complement of the random sweep above).
#[test]
fn bundled_violations_ship_reproducing_lassos() {
    for (pipeline, spec) in [
        (firewall_pipeline(vec![]), "G !dropped"),
        (buggy_pipeline(), "F (forwarded | dropped)"),
    ] {
        let property = Property::Temporal(LtlSpec::parse(spec).unwrap());
        let mut verifier = Verifier::new();
        let report = verifier.verify(&pipeline, &property);
        assert_eq!(report.verdict, Verdict::Violated, "{spec}\n{report}");
        let confirmed: Vec<_> = report
            .counterexamples
            .iter()
            .filter(|c| c.confirmed)
            .collect();
        assert!(!confirmed.is_empty(), "{spec}\n{report}");
        for ce in confirmed {
            let run = model_run_fresh(&pipeline, Packet::from_bytes(ce.packet.clone()));
            assert!(
                run_violates_property(&pipeline, &property, &ce.packet, &run),
                "{spec}: lasso does not reproduce\n{report}"
            );
        }
    }
}

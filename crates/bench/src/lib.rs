//! Shared helpers for the benchmark harness.
//!
//! Each bench target in `benches/` regenerates one of the paper's evaluation
//! artefacts (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
//! for the recorded results). The helpers here build the toy programs of the
//! paper's figures and the router-element chains used by the scaling
//! experiments.

#![forbid(unsafe_code)]

use dataplane_ir::builder::{Block, ProgramBuilder};
use dataplane_ir::expr::dsl::*;
use dataplane_ir::Program;
use dataplane_pipeline::elements::*;
use dataplane_pipeline::{Element, Pipeline, PipelineBuilder};
use std::net::Ipv4Addr;

/// The toy program of Figure 1 (three feasible paths, one crashing).
pub fn figure1_program() -> Program {
    let mut pb = ProgramBuilder::new("Figure1", 1);
    let input = pb.local("in", 32);
    let out = pb.local("out", 32);
    let mut b = Block::new();
    b.assign(input, pkt(0, 4));
    b.assert(sle(c(32, 0), l(input)), "in >= 0");
    b.if_else(
        slt(l(input), c(32, 10)),
        Block::with(|bb| {
            bb.assign(out, c(32, 10));
        }),
        Block::with(|bb| {
            bb.assign(out, l(input));
        }),
    );
    b.pkt_store(0, 4, l(out));
    b.emit(0);
    pb.finish(b).expect("figure 1 program is valid")
}

/// Element E1 of Figure 2 (clamps negative inputs to zero).
pub struct ToyE1;
/// Element E2 of Figure 2 (crashes on negative inputs).
pub struct ToyE2;

impl Element for ToyE1 {
    fn type_name(&self) -> &'static str {
        "ToyE1"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: dataplane_net::Packet) -> dataplane_pipeline::Action {
        let v = packet.get_u32(0).unwrap_or(0) as i32;
        let out = if v < 0 { 0 } else { v as u32 };
        packet.set_u32(0, out);
        dataplane_pipeline::Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("ToyE1", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.if_else(
            slt(l(input), c(32, 0)),
            Block::with(|bb| {
                bb.assign(out, c(32, 0));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).expect("toy E1 model is valid")
    }
}

impl Element for ToyE2 {
    fn type_name(&self) -> &'static str {
        "ToyE2"
    }
    fn output_ports(&self) -> usize {
        1
    }
    fn process(&mut self, mut packet: dataplane_net::Packet) -> dataplane_pipeline::Action {
        let v = packet.get_u32(0).unwrap_or(0) as i32;
        if v < 0 {
            return dataplane_pipeline::Action::Crash(dataplane_ir::CrashReason::AssertionFailed {
                message: "in >= 0".into(),
            });
        }
        let out = if v < 10 { 10 } else { v as u32 };
        packet.set_u32(0, out);
        dataplane_pipeline::Action::Emit(0, packet)
    }
    fn model(&self) -> Program {
        let mut pb = ProgramBuilder::new("ToyE2", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.assert(sle(c(32, 0), l(input)), "in >= 0");
        b.if_else(
            slt(l(input), c(32, 10)),
            Block::with(|bb| {
                bb.assign(out, c(32, 10));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).expect("toy E2 model is valid")
    }
}

/// The Figure-2 pipeline: a length guard, then E1 → E2, then a sink.
pub fn figure2_pipeline() -> Pipeline {
    let mut b = Pipeline::builder();
    let pad = b.add("pad", Box::new(CheckLength::new(4, 4096)));
    let e1 = b.add("e1", Box::new(ToyE1));
    let e2 = b.add("e2", Box::new(ToyE2));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[pad, e1, e2, out]);
    b.build().expect("figure 2 pipeline is valid")
}

/// A named element constructor of the router chain.
pub type ChainElement = (&'static str, fn() -> Box<dyn Element>);

/// The ordered router-element constructors used by the scaling experiment:
/// prefixes of this chain give pipelines of length 1..=7.
pub fn router_chain_elements() -> Vec<ChainElement> {
    vec![
        ("cls", || {
            Box::new(Classifier::ipv4_only()) as Box<dyn Element>
        }),
        ("strip", || Box::new(EthDecap::new())),
        ("chk", || Box::new(CheckIPHeader::new())),
        ("opts", || {
            Box::new(IPOptions::new(Ipv4Addr::new(10, 255, 255, 254)))
        }),
        ("rt", || Box::new(IPLookup::two_port_default())),
        ("ttl", || Box::new(DecTTL::new())),
        ("enc", || Box::new(EthEncap::ipv4_default())),
    ]
}

/// Build the router-chain pipeline of length `k` (1..=7) followed by a sink.
pub fn router_prefix_pipeline(k: usize) -> Pipeline {
    let chain = router_chain_elements();
    assert!(k >= 1 && k <= chain.len(), "prefix length out of range");
    let mut b = PipelineBuilder::new();
    let mut idxs = Vec::new();
    for (name, make) in chain.into_iter().take(k) {
        idxs.push(b.add(name, make()));
    }
    let sink = b.add("sink", Box::new(Sink::new()));
    idxs.push(sink);
    b.chain(&idxs);
    b.build().expect("router prefix pipeline is valid")
}

/// Print a result row in the uniform `key=value` style the benches use, so
/// EXPERIMENTS.md can quote the output directly.
pub fn row(experiment: &str, fields: &[(&str, String)]) {
    let mut line = format!("[{experiment}]");
    for (k, v) in fields {
        line.push_str(&format!(" {k}={v}"));
    }
    println!("{line}");
}

use std::sync::Mutex;

/// One recorded bench row: name plus its numeric metrics.
type JsonRow = (String, Vec<(&'static str, f64)>);

static JSON_ROWS: Mutex<Vec<JsonRow>> = Mutex::new(Vec::new());

/// Record one machine-readable bench row (row name → numeric metrics such
/// as `ns_per_op`, `packets_per_second`, `bytes_shipped`). Rows accumulate
/// across the whole bench run; [`json_write`] emits them at the end. A
/// name recorded twice keeps its latest metrics.
pub fn json_record(name: &str, metrics: &[(&'static str, f64)]) {
    let mut rows = JSON_ROWS.lock().expect("bench json rows");
    rows.retain(|(n, _)| n != name);
    rows.push((name.to_string(), metrics.to_vec()));
}

/// When the bench's argv contains `--json [PATH]`, write every recorded
/// row as one JSON object `{row: {metric: value}}` to PATH (default
/// `BENCH_<tag>.json` in the working directory) and return the path.
/// Without `--json` this is a no-op — the human-readable [`row`] lines
/// stay the only output. Hand-rendered: the bench harness stays free of
/// serialisation dependencies.
pub fn json_write(tag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let at = args.iter().position(|a| a == "--json")?;
    let path = match args.get(at + 1) {
        Some(p) if !p.starts_with('-') => p.clone(),
        _ => format!("BENCH_{tag}.json"),
    };
    let rows = JSON_ROWS.lock().expect("bench json rows");
    let mut text = String::from("{\n");
    for (i, (name, metrics)) in rows.iter().enumerate() {
        text.push_str(&format!("  {:?}: {{", name));
        for (j, (key, value)) in metrics.iter().enumerate() {
            // f64 Display never uses exponent notation, so every value is
            // a plain JSON number.
            text.push_str(&format!(
                "{}{:?}: {}",
                if j > 0 { ", " } else { "" },
                key,
                value
            ));
        }
        text.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    text.push_str("}\n");
    match std::fs::write(&path, text) {
        Ok(()) => {
            println!("bench json written to {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("bench json: cannot write {path}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_valid_artifacts() {
        assert_eq!(figure1_program().name, "Figure1");
        assert_eq!(figure2_pipeline().len(), 4);
        assert_eq!(router_chain_elements().len(), 7);
        for k in 1..=7 {
            assert_eq!(router_prefix_pipeline(k).len(), k + 1);
        }
        row("test", &[("a", "1".into())]);
    }

    #[test]
    #[should_panic]
    fn prefix_length_is_checked() {
        router_prefix_pipeline(0);
    }
}

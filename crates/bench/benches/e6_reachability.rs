//! E6 — the reachability use case of §2: "any packet with destination IP
//! address X will never be dropped unless it is malformed", proved for a
//! specific forwarding/filtering configuration and shown to fail when the
//! configuration has no route for X.

use dataplane_bench::row;
use dataplane_pipeline::presets::firewall_pipeline;
use dataplane_verifier::{Property, Verifier};
use std::net::Ipv4Addr;

fn main() {
    let cases = [
        ("routed-dst", Ipv4Addr::new(192, 168, 7, 7), true),
        ("unrouted-dst", Ipv4Addr::new(8, 8, 8, 8), false),
    ];
    for (label, dst, expect_proof) in cases {
        let pipeline = firewall_pipeline(vec![]);
        let mut verifier = Verifier::new();
        let property = Property::Reachability {
            dst,
            dst_offset: 30,
            deliver_to: vec!["out0".to_string(), "out1".to_string()],
            may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
        };
        let report = verifier.verify(&pipeline, &property);
        row(
            "e6-reachability",
            &[
                ("case", label.to_string()),
                ("dst", dst.to_string()),
                ("verdict", format!("{:?}", report.verdict)),
                ("expected_proof", expect_proof.to_string()),
                ("suspects", report.stats.suspects.to_string()),
                ("discharged", report.stats.discharged.to_string()),
                (
                    "confirmed_counterexamples",
                    report
                        .counterexamples
                        .iter()
                        .filter(|c| c.confirmed)
                        .count()
                        .to_string(),
                ),
                ("seconds", format!("{:.3}", report.elapsed.as_secs_f64())),
            ],
        );
    }
}

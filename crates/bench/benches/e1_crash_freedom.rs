//! E1 — "We proved that any pipeline that consists of these elements will
//! not crash for any input." Verifies crash freedom for the reference
//! branching router, the linear router chain, and every prefix of the chain,
//! reporting suspects/discharges and wall-clock time for each.

use dataplane_bench::{router_prefix_pipeline, row};
use dataplane_pipeline::presets::ip_router_pipeline;
use dataplane_verifier::{Property, Verifier};

fn main() {
    // The branching reference router.
    let mut verifier = Verifier::new();
    let report = verifier.verify(&ip_router_pipeline(), &Property::CrashFreedom);
    row(
        "e1-crash-freedom",
        &[
            ("pipeline", "ip-router".to_string()),
            ("elements", report.stats.elements.to_string()),
            ("verdict", format!("{:?}", report.verdict)),
            ("suspects", report.stats.suspects.to_string()),
            ("discharged", report.stats.discharged.to_string()),
            ("seconds", format!("{:.3}", report.elapsed.as_secs_f64())),
        ],
    );

    // Every prefix of the linear chain (each is itself a pipeline built from
    // the paper's element set, all expected crash-free).
    for k in 1..=7 {
        let mut verifier = Verifier::new();
        let pipeline = router_prefix_pipeline(k);
        let report = verifier.verify(&pipeline, &Property::CrashFreedom);
        row(
            "e1-crash-freedom",
            &[
                ("pipeline", format!("chain-{k}")),
                ("elements", report.stats.elements.to_string()),
                ("verdict", format!("{:?}", report.verdict)),
                ("suspects", report.stats.suspects.to_string()),
                ("discharged", report.stats.discharged.to_string()),
                ("seconds", format!("{:.3}", report.elapsed.as_secs_f64())),
            ],
        );
    }
}

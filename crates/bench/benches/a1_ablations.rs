//! A1 — ablations of the design choices DESIGN.md calls out:
//! summary-cache reuse on/off and prefix feasibility pruning on/off, measured
//! on the reference router's crash-freedom proof.

use dataplane_bench::row;
use dataplane_pipeline::presets::ip_router_pipeline;
use dataplane_symbex::EngineConfig;
use dataplane_verifier::{Property, Verifier, VerifierOptions};
use std::time::Instant;

fn run(label: &str, options: VerifierOptions, reuse_cache_across_runs: bool) {
    // "cache off" is approximated by re-creating the verifier for every run
    // so nothing is reused; "cache on" verifies twice with the same verifier
    // and reports the second (warm) run.
    let runs = if reuse_cache_across_runs { 2 } else { 1 };
    let mut verifier = Verifier::with_options(options);
    let mut last = None;
    let mut secs = 0.0;
    for _ in 0..runs {
        let start = Instant::now();
        let report = verifier.verify(&ip_router_pipeline(), &Property::CrashFreedom);
        secs = start.elapsed().as_secs_f64();
        last = Some(report);
    }
    let report = last.expect("at least one run");
    row(
        "a1-ablation",
        &[
            ("variant", label.to_string()),
            ("verdict", format!("{:?}", report.verdict)),
            ("solver_calls", report.stats.solver_calls.to_string()),
            ("composed_paths", report.stats.composed_paths.to_string()),
            (
                "summaries_computed",
                report.stats.summaries_computed.to_string(),
            ),
            ("seconds", format!("{secs:.3}")),
        ],
    );
}

fn main() {
    run("baseline", VerifierOptions::default(), false);
    run("warm-summary-cache", VerifierOptions::default(), true);
    run(
        "no-prefix-pruning",
        VerifierOptions {
            prune_prefixes: false,
            ..VerifierOptions::default()
        },
        false,
    );
    run(
        "no-counterexample-validation",
        VerifierOptions {
            validate_counterexamples: false,
            ..VerifierOptions::default()
        },
        false,
    );
    run(
        "decomposed-engine-explicit",
        VerifierOptions {
            engine: EngineConfig::decomposed(),
            ..VerifierOptions::default()
        },
        false,
    );
}

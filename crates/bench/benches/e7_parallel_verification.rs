//! E7 — parallel verification: the paper argues compositional verification
//! is embarrassingly parallel (elements are independent) and cacheable
//! (summaries are reusable). This bench quantifies both on the full preset
//! scenario matrix (every preset pipeline × crash freedom, bounded
//! execution, reachability):
//!
//! * `sequential_fresh`  — one fresh `Verifier` per scenario (no reuse),
//! * `sequential_shared` — one `Verifier` for the whole matrix (the seed's
//!   best sequential configuration: summaries reused within the process),
//! * `parallel_cold`     — the verification service with an empty summary store,
//! * `parallel_warm`     — the service with a pre-warmed store (the
//!   re-verification case: zero element jobs),
//! * `step2_sequential` / `step2_parallel` — a warm full-matrix composition
//!   pass with the suspect × prefix feasibility checks inline vs fanned out
//!   over the work-stealing pool (`ParallelComposition`); Step 1 is cached,
//!   so these isolate the Step-2 scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use dataplane_bench::{json_record, json_write, row};
use dataplane_orchestrator::conformance::{plan_fuzz_shards, run_fuzz_jobs};
use dataplane_orchestrator::json::Json;
use dataplane_orchestrator::{
    join_fleet, parallel_composition, preset_scenarios, serve_listener, verify_sequential,
    ComposeShardMode, CompositionMode, Daemon, DaemonClient, DaemonConfig, Executor, ScenarioSpec,
    SummaryStore, VerifyRequest, VerifyService, WorkerAddr, WorkerFleet,
};
use dataplane_verifier::{Verifier, VerifierOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sequential_fresh() -> usize {
    let options = VerifierOptions::default();
    preset_scenarios()
        .iter()
        .map(|s| {
            let report = verify_sequential(&s.pipeline, &s.property, &options);
            report.counterexamples.len()
        })
        .sum()
}

fn sequential_shared() -> usize {
    let mut verifier = Verifier::new();
    preset_scenarios()
        .iter()
        .map(|s| {
            verifier
                .verify(&s.pipeline, &s.property)
                .counterexamples
                .len()
        })
        .sum()
}

/// One warm composition pass over the whole matrix: the verifier's summary
/// cache is pre-filled, so the measured time is Step 2 (composition +
/// feasibility checks) only.
fn warm_composition_pass(options: &VerifierOptions) -> (Duration, usize) {
    let mut verifier = Verifier::with_options(options.clone());
    for s in preset_scenarios() {
        verifier.verify(&s.pipeline, &s.property);
    }
    let start = Instant::now();
    let counterexamples = preset_scenarios()
        .iter()
        .map(|s| {
            verifier
                .verify(&s.pipeline, &s.property)
                .counterexamples
                .len()
        })
        .sum();
    (start.elapsed(), counterexamples)
}

fn parallel(threads: usize, service: &VerifyService) -> usize {
    let matrix = service.run_matrix(preset_scenarios());
    assert_eq!(matrix.threads, threads);
    matrix
        .scenarios
        .iter()
        .map(|s| s.report.counterexamples.len())
        .sum()
}

fn report() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores.max(4);

    let start = Instant::now();
    let fresh_counterexamples = sequential_fresh();
    let t_fresh = start.elapsed();

    let start = Instant::now();
    let shared_counterexamples = sequential_shared();
    let t_shared = start.elapsed();

    let service = VerifyService::new().with_threads(threads);
    let start = Instant::now();
    let cold_counterexamples = parallel(threads, &service);
    let t_cold = start.elapsed();

    // Same service again: the store is warm, all element jobs skipped.
    let start = Instant::now();
    let warm_counterexamples = parallel(threads, &service);
    let t_warm = start.elapsed();

    // Step-2 isolation: warm composition passes, inline vs parallel checks.
    let (t_step2_seq, step2_seq_counterexamples) =
        warm_composition_pass(&VerifierOptions::default());
    let (t_step2_par, step2_par_counterexamples) = warm_composition_pass(&VerifierOptions {
        parallel: parallel_composition(threads),
        ..VerifierOptions::default()
    });

    assert_eq!(fresh_counterexamples, shared_counterexamples);
    assert_eq!(fresh_counterexamples, cold_counterexamples);
    assert_eq!(fresh_counterexamples, warm_counterexamples);
    assert_eq!(fresh_counterexamples, step2_seq_counterexamples);
    assert_eq!(fresh_counterexamples, step2_par_counterexamples);

    row(
        "e7-parallel-verification",
        &[
            ("mode", "step2_parallel_vs_sequential".to_string()),
            ("threads", threads.to_string()),
            (
                "step2_sequential_seconds",
                format!("{:.3}", t_step2_seq.as_secs_f64()),
            ),
            (
                "step2_parallel_seconds",
                format!("{:.3}", t_step2_par.as_secs_f64()),
            ),
            (
                "step2_speedup",
                format!(
                    "{:.2}",
                    t_step2_seq.as_secs_f64() / t_step2_par.as_secs_f64()
                ),
            ),
        ],
    );

    // Scheduling-mode comparison on a warm store: the shared pool (one
    // thread budget for scenario- and check-level work; live solver threads
    // bounded by the pool size) vs the legacy per-composition scoped
    // budgets (ceiling `scenarios × step2_threads` live threads) vs inline
    // Step-2.
    let step2_threads = 2usize;
    let mut scheduler_rows = Vec::new();
    for (scheduler, mode) in [
        ("shared_pool", CompositionMode::SharedPool),
        ("per_composition", CompositionMode::Scoped(step2_threads)),
        ("sequential_step2", CompositionMode::Sequential),
    ] {
        let service = VerifyService::new()
            .with_threads(threads)
            .with_composition_mode(mode);
        let warm_count = parallel(threads, &service); // warm the store
        assert_eq!(warm_count, fresh_counterexamples);
        let start = Instant::now();
        let matrix = service.run_matrix(preset_scenarios());
        let elapsed = start.elapsed();
        let thread_ceiling = match mode {
            CompositionMode::SharedPool => threads,
            CompositionMode::Scoped(n) => threads * n,
            CompositionMode::Sequential => threads,
        };
        assert!(
            matrix.peak_live_threads <= threads,
            "pool budget exceeded: {}",
            matrix.peak_live_threads
        );
        scheduler_rows.push((scheduler, elapsed, matrix.peak_live_threads, thread_ceiling));
    }
    for (scheduler, elapsed, peak, ceiling) in scheduler_rows {
        row(
            "e7-parallel-verification",
            &[
                ("mode", format!("scheduler_{scheduler}")),
                ("threads", threads.to_string()),
                ("seconds", format!("{:.3}", elapsed.as_secs_f64())),
                ("pool_peak_live_threads", peak.to_string()),
                ("solver_thread_ceiling", ceiling.to_string()),
            ],
        );
    }

    for (mode, used_threads, elapsed) in [
        ("sequential_fresh", 1, t_fresh),
        ("sequential_shared", 1, t_shared),
        ("parallel_cold", threads, t_cold),
        ("parallel_warm", threads, t_warm),
    ] {
        row(
            "e7-parallel-verification",
            &[
                ("mode", mode.to_string()),
                ("threads", used_threads.to_string()),
                ("seconds", format!("{:.3}", elapsed.as_secs_f64())),
                (
                    "speedup_vs_fresh",
                    format!("{:.2}", t_fresh.as_secs_f64() / elapsed.as_secs_f64()),
                ),
            ],
        );
        json_record(
            mode,
            &[
                ("ns_per_op", elapsed.as_secs_f64() * 1e9),
                (
                    "speedup_vs_fresh",
                    t_fresh.as_secs_f64() / elapsed.as_secs_f64(),
                ),
            ],
        );
    }
    if cores >= 4 && t_cold >= t_fresh {
        println!(
            "[e7-parallel-verification] WARNING: no parallel speedup on {cores} cores \
             (cold {:.3}s vs sequential {:.3}s)",
            t_cold.as_secs_f64(),
            t_fresh.as_secs_f64()
        );
    }

    fuzz_report();
    shard_report();
    daemon_report();
    temporal_report();
}

/// Temporal (LTL) verification economics: the bundled Büchi-product
/// scenarios — one `Property::Temporal` per preset pipeline — run
/// in-process, then over a 2-worker TCP fleet as `JobSpec::Temporal`
/// wire jobs. The artefact records automaton and product sizes alongside
/// latency, and the fleet report must stay byte-identical.
fn temporal_report() {
    use std::sync::mpsc;

    fn temporal_request() -> VerifyRequest {
        VerifyRequest::Matrix {
            scenarios: preset_scenarios()
                .into_iter()
                .filter(|s| matches!(s.property, dataplane_verifier::Property::Temporal(_)))
                .collect(),
        }
    }

    fn spawn_worker() -> WorkerAddr {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut tx = Some(tx);
            let mut log = move |line: &str| {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    if let Some(tx) = tx.take() {
                        let _ = tx.send(addr.to_string());
                    }
                }
            };
            let _ = serve_listener(&WorkerAddr::Tcp("127.0.0.1:0".into()), 2, false, &mut log);
        });
        WorkerAddr::Tcp(rx.recv().expect("worker announced its address"))
    }

    let service = VerifyService::new().with_threads(2);
    let start = Instant::now();
    let served = service.serve(temporal_request()).expect("temporal matrix");
    let secs = start.elapsed().as_secs_f64();
    let reference = served.deterministic_json().to_text();
    let matrix = served.matrix().expect("matrix report");
    let scenarios = matrix.scenarios.len();
    let sum = |f: fn(&dataplane_verifier::VerificationStats) -> usize| -> usize {
        matrix.scenarios.iter().map(|s| f(&s.report.stats)).sum()
    };
    let (buchi, product, lassos) = (
        sum(|s| s.buchi_states),
        sum(|s| s.product_states),
        sum(|s| s.lasso_found),
    );
    assert!(buchi > 0, "temporal scenarios compile Büchi automata");
    assert!(lassos > 0, "the planted violations yield lassos");
    row(
        "e7-parallel-verification",
        &[
            ("mode", "temporal_matrix".to_string()),
            ("scenarios", scenarios.to_string()),
            ("buchi_states", buchi.to_string()),
            ("product_states", product.to_string()),
            ("lassos", lassos.to_string()),
            ("seconds", format!("{secs:.3}")),
        ],
    );
    json_record(
        "temporal_matrix",
        &[
            ("ns_per_op", secs * 1e9 / scenarios.max(1) as f64),
            ("buchi_states", buchi as f64),
            ("product_states", product as f64),
            ("lassos", lassos as f64),
        ],
    );

    // The same request dispatched as wire jobs: best of three sessions
    // against two persistent TCP workers (the first session ships the
    // summary documents; later hellos advertise them).
    let fleet = WorkerFleet::sockets(vec![spawn_worker(), spawn_worker()]);
    let fresh = VerifyService::new().with_threads(2);
    let plan = fresh.plan_request(&temporal_request()).expect("plan");
    let mut best = f64::INFINITY;
    let mut executed = None;
    for _ in 0..3 {
        let start = Instant::now();
        executed = Some(fresh.execute_plan(&plan, &fleet).expect("fleet run"));
        best = best.min(start.elapsed().as_secs_f64());
    }
    let executed = executed.expect("at least one measured run");
    assert_eq!(
        executed.deterministic_json().to_text(),
        reference,
        "fleet temporal run must reproduce the in-process report byte for byte"
    );
    let stats = executed.matrix().unwrap().stats.clone().expect("stats");
    // The fleet registry accumulates across the three measured sessions.
    assert!(
        stats.temporal_jobs >= scenarios,
        "every scenario went remote as a temporal job: {stats:?}"
    );
    row(
        "e7-parallel-verification",
        &[
            ("mode", "temporal_fleet_2w".to_string()),
            ("workers", "2".to_string()),
            ("temporal_jobs_per_session", scenarios.to_string()),
            ("seconds", format!("{best:.3}")),
        ],
    );
    json_record(
        "temporal_fleet_2w",
        &[
            ("ns_per_op", best * 1e9 / scenarios.max(1) as f64),
            ("temporal_jobs", scenarios as f64),
        ],
    );
}

/// Compose-shard fleet scaling (`--compose-shard` on the wire): the
/// heaviest preset scenario — ip_router × crash freedom, the largest
/// suspect set of the matrix — has its Step-2 suspect×prefix enumeration
/// split into wire shards pulled by capacity-1 TCP workers. Every run
/// shares one pre-warmed summary store, so the measured time is shard
/// dispatch + decide + fold only, and the deterministic report must stay
/// byte-identical to the in-process run at every fleet size.
fn shard_report() {
    use std::sync::mpsc;

    fn heavy_request() -> VerifyRequest {
        VerifyRequest::Matrix {
            scenarios: preset_scenarios()
                .into_iter()
                .filter(|s| {
                    s.pipeline_name == "ip_router"
                        && matches!(s.property, dataplane_verifier::Property::CrashFreedom)
                })
                .collect(),
        }
    }

    fn spawn_worker(capacity: usize) -> WorkerAddr {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut tx = Some(tx);
            let mut log = move |line: &str| {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    if let Some(tx) = tx.take() {
                        let _ = tx.send(addr.to_string());
                    }
                }
            };
            let _ = serve_listener(
                &WorkerAddr::Tcp("127.0.0.1:0".into()),
                capacity,
                false,
                &mut log,
            );
        });
        WorkerAddr::Tcp(rx.recv().expect("shard worker announced its address"))
    }

    let reference = VerifyService::new()
        .with_threads(2)
        .serve(heavy_request())
        .expect("in-process reference run")
        .deterministic_json()
        .to_text();

    // One shared, pre-warmed store: every fleet run below is compose-only.
    let store = Arc::new(SummaryStore::in_memory());
    VerifyService::new()
        .with_threads(2)
        .with_store(store.clone())
        .serve(heavy_request())
        .expect("store warm-up run");

    let mut single_worker_seconds = f64::NAN;
    for workers in [1usize, 2, 4] {
        // Capacity 1: fleet size alone sets the shard parallelism.
        let fleet = WorkerFleet::sockets((0..workers).map(|_| spawn_worker(1)).collect());
        let service = VerifyService::new()
            .with_threads(2)
            .with_compose_shard(16)
            .with_store(store.clone());
        let plan = service.plan_request(&heavy_request()).expect("shard plan");
        // Unmeasured warm-up session: ships the summary documents once;
        // the workers' next hello advertises them all, so the measured
        // sessions ship none (protocol-v4 dedup).
        service
            .execute_plan(&plan, &fleet)
            .expect("fleet warm-up run");
        let mut best = f64::INFINITY;
        let mut executed = None;
        for _ in 0..3 {
            let start = Instant::now();
            executed = Some(
                service
                    .execute_plan(&plan, &fleet)
                    .expect("fleet shard run"),
            );
            best = best.min(start.elapsed().as_secs_f64());
        }
        let executed = executed.expect("at least one measured run");
        assert_eq!(
            executed.deterministic_json().to_text(),
            reference,
            "a {workers}-worker sharded run must reproduce the in-process report byte for byte"
        );
        let matrix = executed.matrix().expect("matrix report");
        let stats = matrix.stats.as_ref().expect("fleet runs report stats");
        assert!(stats.compose_shards > 0, "the heavy scenario must shard");
        if workers == 1 {
            single_worker_seconds = best;
        }
        let name = format!("compose_shard_fleet_{workers}w");
        row(
            "e7-parallel-verification",
            &[
                ("mode", name.clone()),
                ("workers", workers.to_string()),
                ("compose_shards", stats.compose_shards.to_string()),
                ("seconds", format!("{best:.3}")),
                (
                    "summary_bytes_shipped",
                    stats.summary_bytes_shipped.to_string(),
                ),
                (
                    "speedup_vs_1w",
                    format!("{:.2}", single_worker_seconds / best),
                ),
            ],
        );
        json_record(
            &name,
            &[
                ("ns_per_op", best * 1e9),
                ("bytes_shipped", stats.summary_bytes_shipped as f64),
                ("speedup_vs_1w", single_worker_seconds / best),
            ],
        );
    }

    // `--compose-shard auto` (the default): shard counts derived from live
    // fleet capacity and calibrated per-node solver costs, with idle
    // workers stealing remainders from loaded ones. The heterogeneous row
    // (capacity 1 + 2) is where calibration and stealing earn their keep:
    // the fast worker drains its slice and steals from the slow one.
    for (name, capacities) in [
        ("compose_shard_auto_2w", vec![1usize, 1]),
        ("compose_shard_auto_4w", vec![1, 1, 1, 1]),
        ("compose_shard_auto_hetero_1p2", vec![1, 2]),
    ] {
        let fleet = WorkerFleet::sockets(capacities.iter().map(|&c| spawn_worker(c)).collect());
        let service = VerifyService::new()
            .with_threads(2)
            .with_compose_shard_mode(ComposeShardMode::Auto)
            .with_store(store.clone());
        let plan = service.plan_request(&heavy_request()).expect("auto plan");
        service
            .execute_plan(&plan, &fleet)
            .expect("auto fleet warm-up run");
        let mut best = f64::INFINITY;
        let mut executed = None;
        for _ in 0..3 {
            let start = Instant::now();
            executed = Some(
                service
                    .execute_plan(&plan, &fleet)
                    .expect("auto fleet shard run"),
            );
            best = best.min(start.elapsed().as_secs_f64());
        }
        let executed = executed.expect("at least one measured run");
        assert_eq!(
            executed.deterministic_json().to_text(),
            reference,
            "an auto-sharded {name} run must reproduce the in-process report byte for byte"
        );
        let matrix = executed.matrix().expect("matrix report");
        let stats = matrix.stats.as_ref().expect("fleet runs report stats");
        assert!(
            stats.compose_shards > 0,
            "auto mode must shard the scenario"
        );
        let prefilter_decided: usize = matrix
            .scenarios
            .iter()
            .map(|s| s.report.stats.prefilter_decided)
            .sum();
        row(
            "e7-parallel-verification",
            &[
                ("mode", name.to_string()),
                ("workers", capacities.len().to_string()),
                ("capacity", capacities.iter().sum::<usize>().to_string()),
                ("compose_shards", stats.compose_shards.to_string()),
                ("shards_split", stats.shards_split.to_string()),
                ("shards_stolen", stats.shards_stolen.to_string()),
                ("prefilter_decided", prefilter_decided.to_string()),
                ("seconds", format!("{best:.3}")),
                (
                    "speedup_vs_1w",
                    format!("{:.2}", single_worker_seconds / best),
                ),
            ],
        );
        json_record(
            name,
            &[
                ("ns_per_op", best * 1e9),
                ("prefilter_decided", prefilter_decided as f64),
                ("shards_stolen", stats.shards_stolen as f64),
                ("speedup_vs_1w", single_worker_seconds / best),
            ],
        );
    }
}

/// `vericlick serve` economics: cold-plan vs warm-daemon latency for the
/// preset matrix over a real client connection, then the wire-dedup win
/// against a socket worker — the first session ships every summary
/// document, the second session's hello advertises them all and ships
/// none (worker protocol v4).
fn daemon_report() {
    use std::sync::{mpsc, Arc, Mutex};
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().max(4))
        .unwrap_or(4);

    let daemon = Daemon::new(DaemonConfig {
        threads,
        ..DaemonConfig::default()
    });
    let serving = daemon.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let tx = Mutex::new(Some(tx));
        let log: Arc<dyn Fn(&str) + Send + Sync> = Arc::new(move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.lock().unwrap().take() {
                    let _ = tx.send(addr.to_string());
                }
            }
        });
        let _ = serving.serve(&WorkerAddr::Tcp("127.0.0.1:0".into()), false, log);
    });
    let addr = WorkerAddr::Tcp(rx.recv().expect("daemon announced its address"));
    let request = || VerifyRequest::Matrix {
        scenarios: preset_scenarios(),
    };
    let explores = |reply: &dataplane_orchestrator::ClientReply| {
        reply
            .report
            .get("explore_jobs")
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    // Session one against the cold daemon: Step-1 explorations run.
    let mut client = DaemonClient::connect(&addr, None).expect("connect to daemon");
    let start = Instant::now();
    let cold = client.verify(&request()).expect("cold daemon plan");
    let t_cold = start.elapsed();
    drop(client);

    // A new session, same daemon: the shared store is warm, zero element
    // jobs — the latency a long-lived daemon buys every client after the
    // first.
    let mut client = DaemonClient::connect(&addr, None).expect("reconnect to daemon");
    let start = Instant::now();
    let warm = client.verify(&request()).expect("warm daemon plan");
    let t_warm = start.elapsed();
    assert_eq!(explores(&warm), 0, "a warm daemon re-plans element jobs");
    for (mode, elapsed, reply) in [
        ("daemon_cold_plan", t_cold, &cold),
        ("daemon_warm_plan", t_warm, &warm),
    ] {
        row(
            "e7-parallel-verification",
            &[
                ("mode", mode.to_string()),
                ("threads", threads.to_string()),
                ("seconds", format!("{:.3}", elapsed.as_secs_f64())),
                ("explore_jobs", explores(reply).to_string()),
                (
                    "speedup_vs_cold",
                    format!("{:.2}", t_cold.as_secs_f64() / elapsed.as_secs_f64()),
                ),
            ],
        );
    }

    // Wire dedup: join a socket worker to the running daemon, then run
    // the matrix twice more on one session. Both runs are compose-only
    // (the store is warm); the first ships every summary document, the
    // second ships none — the worker's hello advertises its held set.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut tx = Some(tx);
        let mut log = move |line: &str| {
            if let Some(addr) = line.strip_prefix("listening on ") {
                if let Some(tx) = tx.take() {
                    let _ = tx.send(addr.to_string());
                }
            }
        };
        let _ = serve_listener(&WorkerAddr::Tcp("127.0.0.1:0".into()), 2, false, &mut log);
    });
    let worker = WorkerAddr::Tcp(rx.recv().expect("worker announced its address"));
    join_fleet(&addr, &worker).expect("worker joins the fleet");
    let mut client = DaemonClient::connect(&addr, None).expect("reconnect to daemon");
    for (mode, reply) in [
        (
            "daemon_fleet_cold_worker",
            client.verify(&request()).expect("fleet run"),
        ),
        (
            "daemon_fleet_warm_worker",
            client.verify(&request()).expect("fleet rerun"),
        ),
    ] {
        let stat = |key: &str| reply.dispatch_stat(key).unwrap_or(0);
        row(
            "e7-parallel-verification",
            &[
                ("mode", mode.to_string()),
                ("summaries_shipped", stat("summaries_shipped").to_string()),
                ("summaries_deduped", stat("summaries_deduped").to_string()),
                (
                    "summary_bytes_shipped",
                    stat("summary_bytes_shipped").to_string(),
                ),
                (
                    "summary_bytes_deduped",
                    stat("summary_bytes_deduped").to_string(),
                ),
            ],
        );
        json_record(
            mode,
            &[
                ("bytes_shipped", stat("summary_bytes_shipped") as f64),
                ("bytes_deduped", stat("summary_bytes_deduped") as f64),
            ],
        );
    }
}

/// Conformance-fuzz throughput: the same seeded shard plan (every proven
/// preset, fixed seed) pushed through the model runtime on the shared
/// pool at 1/2/4/8 threads, then sharded over a 2-worker stdio fleet
/// (the `vericlick fuzz --workers 2` wire path).
fn fuzz_report() {
    // Proven presets only: buggy violates everything, and the firewall's
    // bundled temporal spec is a planted violation — fuzzing measures the
    // historical 12-scenario reachability/crash workload.
    let specs: Vec<ScenarioSpec> = preset_scenarios()
        .iter()
        .filter(|s| {
            s.pipeline_name != "buggy"
                && !matches!(s.property, dataplane_verifier::Property::Temporal(_))
        })
        .map(|s| ScenarioSpec::from_scenario(s).expect("preset specs serialise"))
        .collect();
    let options = VerifierOptions::default();
    let jobs = plan_fuzz_shards(&specs, 1, 50_000);

    let mut single_thread_seconds = f64::NAN;
    for fuzz_threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let shards = run_fuzz_jobs(&jobs, &options, fuzz_threads).expect("fuzz shards run");
        let secs = start.elapsed().as_secs_f64();
        let pushed: u64 = shards.iter().map(|s| s.packets).sum();
        let contradictions: u64 = shards.iter().map(|s| s.contradiction_count).sum();
        assert_eq!(contradictions, 0, "a proven preset was contradicted");
        if fuzz_threads == 1 {
            single_thread_seconds = secs;
        }
        row(
            "e7-parallel-verification",
            &[
                ("mode", "fuzz_pool".to_string()),
                ("threads", fuzz_threads.to_string()),
                ("packets", pushed.to_string()),
                ("seconds", format!("{secs:.3}")),
                ("packets_per_second", format!("{:.0}", pushed as f64 / secs)),
                (
                    "speedup_vs_single",
                    format!("{:.2}", single_thread_seconds / secs),
                ),
            ],
        );
        json_record(
            &format!("fuzz_pool_{fuzz_threads}t"),
            &[
                ("ns_per_op", secs * 1e9),
                ("packets_per_second", pushed as f64 / secs),
            ],
        );
    }

    // The bench executable lives in target/<profile>/deps; the vericlick
    // binary the fleet spawns is one directory up.
    let vericlick = std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.parent()
                .and_then(|deps| deps.parent())
                .map(|dir| dir.join("vericlick"))
        })
        .filter(|p| p.exists());
    let Some(vericlick) = vericlick else {
        println!(
            "[e7-parallel-verification] SKIP fuzz_fleet_stdio: vericlick binary not built \
             alongside this bench (run `cargo build` for the same profile first)"
        );
        return;
    };
    let fleet = WorkerFleet::subprocess(vericlick, vec!["worker".to_string()], 2);
    let start = Instant::now();
    let shards = fleet
        .fuzz_jobs(&jobs, &options)
        .expect("worker fleets accept fuzz jobs")
        .expect("fleet fuzz run succeeds");
    let secs = start.elapsed().as_secs_f64();
    let pushed: u64 = shards.iter().map(|s| s.packets).sum();
    let contradictions: u64 = shards.iter().map(|s| s.contradiction_count).sum();
    assert_eq!(
        contradictions, 0,
        "a proven preset was contradicted on the wire"
    );
    row(
        "e7-parallel-verification",
        &[
            ("mode", "fuzz_fleet_stdio".to_string()),
            ("workers", "2".to_string()),
            ("shards", jobs.len().to_string()),
            ("packets", pushed.to_string()),
            ("seconds", format!("{secs:.3}")),
            ("packets_per_second", format!("{:.0}", pushed as f64 / secs)),
        ],
    );
    json_record(
        "fuzz_fleet_stdio",
        &[
            ("ns_per_op", secs * 1e9),
            ("packets_per_second", pushed as f64 / secs),
        ],
    );
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("e7_parallel_verification");
    group.sample_size(3);
    group.bench_function("sequential_fresh", |b| b.iter(sequential_fresh));
    group.bench_function("sequential_shared", |b| b.iter(sequential_shared));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().max(4))
        .unwrap_or(4);
    group.bench_function("parallel_cold", |b| {
        b.iter(|| {
            // A fresh service per iteration: the store starts empty.
            let service = VerifyService::new().with_threads(threads);
            parallel(threads, &service)
        })
    });
    let warm = VerifyService::new().with_threads(threads);
    parallel(threads, &warm); // pre-warm the store
    group.bench_function("parallel_warm", |b| b.iter(|| parallel(threads, &warm)));
    // Warm verifiers reused across iterations: the measured body is one
    // full-matrix composition pass (Step 2 only).
    let mut step2_seq = Verifier::new();
    let mut step2_par = Verifier::with_options(VerifierOptions {
        parallel: parallel_composition(threads),
        ..VerifierOptions::default()
    });
    for s in preset_scenarios() {
        step2_seq.verify(&s.pipeline, &s.property);
        step2_par.verify(&s.pipeline, &s.property);
    }
    let compose_pass = |verifier: &mut Verifier| -> usize {
        preset_scenarios()
            .iter()
            .map(|s| {
                verifier
                    .verify(&s.pipeline, &s.property)
                    .counterexamples
                    .len()
            })
            .sum()
    };
    group.bench_function("step2_sequential", |b| {
        b.iter(|| compose_pass(&mut step2_seq))
    });
    group.bench_function("step2_parallel", |b| {
        b.iter(|| compose_pass(&mut step2_par))
    });
    group.finish();
    // `--json [PATH]` on the bench argv writes every recorded row as
    // machine-readable JSON (default BENCH_e7.json); a no-op otherwise.
    let _ = json_write("e7");
}

criterion_group!(benches, bench);
criterion_main!(benches);

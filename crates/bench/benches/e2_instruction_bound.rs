//! E2 — "the longest pipeline executes up to about 3600 instructions per
//! packet, and we also identified the packet that yields this maximum."
//! Establishes the per-packet instruction bound of the full router chain,
//! compares it with the maximum observed over a concrete adversarial
//! workload, and reports the witness packet the verifier produced.

use dataplane_bench::{router_prefix_pipeline, row};
use dataplane_net::WorkloadGen;
use dataplane_pipeline::ModelRuntime;
use dataplane_verifier::Verifier;

fn main() {
    for k in [3, 5, 7] {
        let pipeline = router_prefix_pipeline(k);
        let mut verifier = Verifier::new();
        let bound = verifier.max_instructions(&pipeline);

        // Concrete maximum over a varied workload, for comparison.
        let concrete_pipeline = router_prefix_pipeline(k);
        let mut runtime = ModelRuntime::new(&concrete_pipeline);
        let mut concrete_max = 0u64;
        for pkt in WorkloadGen::adversarial(0xE2).batch(500) {
            concrete_max = concrete_max.max(runtime.push(pkt).instructions);
        }

        row(
            "e2-instruction-bound",
            &[
                ("pipeline", format!("chain-{k}")),
                ("verified_bound", bound.max_instructions.to_string()),
                (
                    "bound_kind",
                    if bound.approximate {
                        "upper-bound".to_string()
                    } else {
                        "exact".to_string()
                    },
                ),
                ("concrete_max", concrete_max.to_string()),
                (
                    "witness_bytes",
                    bound.witness.map(|w| w.len()).unwrap_or(0).to_string(),
                ),
                ("most_expensive_path", bound.path.join(">")),
                ("feasible_paths", bound.feasible_paths.to_string()),
                ("seconds", format!("{:.3}", bound.elapsed.as_secs_f64())),
            ],
        );
    }
}

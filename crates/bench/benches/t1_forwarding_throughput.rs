//! T1 — dataplane feasibility: the concrete router actually forwards packets
//! at a healthy software rate (shape check only; the paper's testbed numbers
//! are line-rate hardware results we do not attempt to match). Criterion
//! measures per-batch forwarding time single-threaded and with the
//! SMPClick-style multi-threaded runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataplane_bench::row;
use dataplane_net::WorkloadGen;
use dataplane_pipeline::presets::ip_router_pipeline;
use dataplane_pipeline::{run_parallel, run_single_threaded};

const BATCH: usize = 2_000;

fn report() {
    let packets = WorkloadGen::clean(0x71).batch(20_000);
    let mut pipeline = ip_router_pipeline();
    let run = run_single_threaded(&mut pipeline, packets.clone());
    row(
        "t1-throughput",
        &[
            ("threads", "1".to_string()),
            ("packets", run.stats.injected.to_string()),
            ("crashed", run.stats.crashed.to_string()),
            ("pps", format!("{:.0}", run.packets_per_second())),
        ],
    );
    for threads in [2, 4] {
        let run = run_parallel(ip_router_pipeline, packets.clone(), threads);
        row(
            "t1-throughput",
            &[
                ("threads", threads.to_string()),
                ("packets", run.stats.injected.to_string()),
                ("crashed", run.stats.crashed.to_string()),
                ("pps", format!("{:.0}", run.packets_per_second())),
            ],
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("t1_forwarding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    let packets = WorkloadGen::clean(0x72).batch(BATCH);
    group.bench_function(BenchmarkId::new("single_thread", BATCH), |b| {
        b.iter(|| {
            let mut pipeline = ip_router_pipeline();
            run_single_threaded(&mut pipeline, packets.clone())
        })
    });
    let adversarial = WorkloadGen::adversarial(0x73).batch(BATCH);
    group.bench_function(BenchmarkId::new("single_thread_adversarial", BATCH), |b| {
        b.iter(|| {
            let mut pipeline = ip_router_pipeline();
            run_single_threaded(&mut pipeline, adversarial.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

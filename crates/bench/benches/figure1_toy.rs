//! F1 — Figure 1 of the paper: symbolic execution of the toy program finds
//! all three feasible paths, identifies the crashing input region (`in < 0`),
//! and proves the instruction bound on the others. Criterion measures how
//! long exploring the toy program takes.

use criterion::{criterion_group, criterion_main, Criterion};
use dataplane_bench::{figure1_program, row};
use dataplane_symbex::{explore, EngineConfig, SegmentOutcome, Solver, SolverResult};

fn report() {
    let program = figure1_program();
    let exploration = explore(&program, &EngineConfig::default()).unwrap();
    let solver = Solver::new();
    let feasible: Vec<_> = exploration
        .segments
        .iter()
        .filter(|s| !solver.check(&s.constraint).is_unsat())
        .collect();
    let crashing = feasible.iter().filter(|s| s.outcome.is_crash()).count();
    let emitting = feasible
        .iter()
        .filter(|s| s.outcome == SegmentOutcome::Emitted(0))
        .count();
    let max_instr = feasible.iter().map(|s| s.instructions).max().unwrap_or(0);
    // Witness of the crashing path: a negative 32-bit input.
    let witness_negative = feasible.iter().filter(|s| s.outcome.is_crash()).any(|s| {
        match solver.check(&s.constraint) {
            SolverResult::Sat(m) => m.packet.first().map(|b| b & 0x80 != 0).unwrap_or(false),
            _ => false,
        }
    });
    row(
        "figure1",
        &[
            ("segments", exploration.segments.len().to_string()),
            ("feasible", feasible.len().to_string()),
            ("emitting", emitting.to_string()),
            ("crashing", crashing.to_string()),
            ("max_instructions", max_instr.to_string()),
            ("crash_witness_negative", witness_negative.to_string()),
        ],
    );
}

fn bench(c: &mut Criterion) {
    report();
    let program = figure1_program();
    let mut group = c.benchmark_group("figure1");
    group.sample_size(20);
    group.bench_function("explore_toy_program", |b| {
        b.iter(|| explore(&program, &EngineConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

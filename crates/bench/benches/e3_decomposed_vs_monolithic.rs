//! E3 — the headline comparison: "our verification time was about 18
//! minutes; in contrast, when we fed the same code to the symbex engine
//! (without pipeline decomposition), verification did not complete within
//! 12 hours."
//!
//! Reproduced as a scaling *shape*: for router chains of growing length the
//! decomposed verifier's cost grows roughly linearly with the number of
//! elements (k·2ⁿ), while the monolithic baseline's path count grows
//! multiplicatively (2^(k·n)) and stops completing within its budget as soon
//! as the loop-heavy IP-options element joins the chain.

use dataplane_bench::{router_prefix_pipeline, row};
use dataplane_verifier::{explore_monolithic, MonolithicConfig, Property, Verifier};
use std::time::{Duration, Instant};

fn main() {
    for k in 1..=7 {
        // Decomposed (the paper's approach). A fresh verifier per length so
        // the summary cache does not amortise across rows.
        let pipeline = router_prefix_pipeline(k);
        let start = Instant::now();
        let mut verifier = Verifier::new();
        let report = verifier.verify(&pipeline, &Property::CrashFreedom);
        let decomposed_secs = start.elapsed().as_secs_f64();

        // Monolithic baseline with a budget so the bench terminates.
        let pipeline = router_prefix_pipeline(k);
        let mono = explore_monolithic(
            &pipeline,
            &MonolithicConfig {
                max_paths: 20_000,
                max_time: Duration::from_secs(10),
                max_segments_per_element: 20_000,
                check_feasibility: false,
            },
        );

        row(
            "e3-scaling",
            &[
                ("chain_length", k.to_string()),
                ("decomposed_verdict", format!("{:?}", report.verdict)),
                (
                    "decomposed_segments",
                    report.stats.total_segments.to_string(),
                ),
                (
                    "decomposed_composed_paths",
                    report.stats.composed_paths.to_string(),
                ),
                ("decomposed_seconds", format!("{decomposed_secs:.3}")),
                ("monolithic_completed", mono.completed.to_string()),
                ("monolithic_paths", mono.paths_explored.to_string()),
                (
                    "monolithic_seconds",
                    format!("{:.3}", mono.elapsed.as_secs_f64()),
                ),
            ],
        );
    }
}

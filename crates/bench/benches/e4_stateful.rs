//! E4 — the stateful elements the paper was "currently experimenting with":
//! NetFlow-style statistics and NAT. Crash freedom is verified through the
//! data-structure abstraction (reads return unconstrained values), and the
//! planted counter-overflow defect is shown to be caught rather than proven
//! safe.

use dataplane_bench::row;
use dataplane_pipeline::elements::{CheckIPHeader, EthDecap, OverflowingCounter, Sink};
use dataplane_pipeline::presets::middlebox_pipeline;
use dataplane_pipeline::Pipeline;
use dataplane_verifier::{Property, Verifier};

fn main() {
    // NetFlow + NAT middlebox: proven crash-free.
    let mut verifier = Verifier::new();
    let report = verifier.verify(&middlebox_pipeline(), &Property::CrashFreedom);
    row(
        "e4-stateful",
        &[
            ("pipeline", "netflow+nat-middlebox".to_string()),
            ("verdict", format!("{:?}", report.verdict)),
            ("suspects", report.stats.suspects.to_string()),
            ("discharged", report.stats.discharged.to_string()),
            ("seconds", format!("{:.3}", report.elapsed.as_secs_f64())),
        ],
    );

    // The counter-overflow defect class is not proven safe.
    let mut b = Pipeline::builder();
    let strip = b.add("strip", Box::new(EthDecap::new()));
    let chk = b.add("chk", Box::new(CheckIPHeader::new()));
    let ctr = b.add("ctr", Box::new(OverflowingCounter::new()));
    let out = b.add("out", Box::new(Sink::new()));
    b.chain(&[strip, chk, ctr, out]);
    let pipeline = b.build().unwrap();
    let mut verifier = Verifier::new();
    let report = verifier.verify(&pipeline, &Property::CrashFreedom);
    row(
        "e4-stateful",
        &[
            ("pipeline", "overflowing-counter".to_string()),
            ("verdict", format!("{:?}", report.verdict)),
            ("suspects", report.stats.suspects.to_string()),
            (
                "reported",
                (report.counterexamples.len() + report.unproven.len()).to_string(),
            ),
            ("seconds", format!("{:.3}", report.elapsed.as_secs_f64())),
        ],
    );
}

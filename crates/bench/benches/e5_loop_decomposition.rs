//! E5 — loop decomposition: "if we symbexed (in isolation) the IP options
//! element that comes with Click, we roughly estimated that we would have to
//! execute millions of segments, which would take months to complete."
//! Compares exploring the IP-options element with loops fully unrolled
//! (budget-capped) against the mini-element decomposition.

use dataplane_bench::row;
use dataplane_pipeline::elements::IPOptions;
use dataplane_pipeline::Element;
use dataplane_symbex::{explore, EngineConfig, LoopMode};
use std::net::Ipv4Addr;
use std::time::Instant;

fn main() {
    let element = IPOptions::new(Ipv4Addr::new(10, 255, 255, 254));
    let program = element.model();

    // Decomposed: completes in milliseconds with a handful of segments.
    let start = Instant::now();
    let decomposed = explore(&program, &EngineConfig::decomposed()).unwrap();
    row(
        "e5-loop-decomposition",
        &[
            ("mode", "decomposed".to_string()),
            ("completed", "true".to_string()),
            ("segments", decomposed.segments.len().to_string()),
            ("branches", decomposed.branches_expanded.to_string()),
            ("seconds", format!("{:.4}", start.elapsed().as_secs_f64())),
        ],
    );

    // Unrolled at increasing budgets: the exploration keeps hitting the
    // budget — the "months to complete" behaviour in miniature.
    for budget in [1_000usize, 10_000, 50_000] {
        let start = Instant::now();
        let result = explore(
            &program,
            &EngineConfig {
                max_segments: budget,
                max_branches: 10_000_000,
                loop_mode: LoopMode::Unroll,
            },
        );
        let (completed, segments) = match &result {
            Ok(r) => (true, r.segments.len()),
            Err(_) => (false, budget),
        };
        row(
            "e5-loop-decomposition",
            &[
                ("mode", "unrolled".to_string()),
                ("segment_budget", budget.to_string()),
                ("completed", completed.to_string()),
                ("segments_reached", segments.to_string()),
                ("seconds", format!("{:.3}", start.elapsed().as_secs_f64())),
            ],
        );
    }
}

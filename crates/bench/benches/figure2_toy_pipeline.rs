//! F2 — Figure 2 of the paper: element E2 in isolation has a suspect
//! (crashing) segment; composed after E1 the suspect becomes infeasible and
//! the pipeline is proven crash-free.

use criterion::{criterion_group, criterion_main, Criterion};
use dataplane_bench::{figure2_pipeline, row};
use dataplane_verifier::{Property, Verifier};

fn report() {
    let mut verifier = Verifier::new();
    let report = verifier.verify(&figure2_pipeline(), &Property::CrashFreedom);
    row(
        "figure2",
        &[
            ("verdict", format!("{:?}", report.verdict)),
            ("suspects", report.stats.suspects.to_string()),
            ("discharged", report.stats.discharged.to_string()),
            ("composed_paths", report.stats.composed_paths.to_string()),
            ("seconds", format!("{:.4}", report.elapsed.as_secs_f64())),
        ],
    );
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("figure2");
    group.sample_size(10);
    group.bench_function("verify_toy_pipeline", |b| {
        b.iter(|| {
            let mut verifier = Verifier::new();
            verifier.verify(&figure2_pipeline(), &Property::CrashFreedom)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Offline stand-in for `crossbeam`: the lock-free queue and scoped-thread
//! surface the workspace uses, implemented over `std::sync` and
//! `std::thread::scope`. The queue trades lock-freedom for simplicity (a
//! mutexed deque) — contention on it is negligible at the batch sizes the
//! runtimes use.

#![forbid(unsafe_code)]

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue (mutex-backed here; the real crate's is
    /// lock-free segmented).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a value to the back.
        pub fn push(&self, value: T) {
            self.inner.lock().expect("queue lock").push_back(value);
        }

        /// Pop a value from the front.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("queue lock").pop_front()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("queue lock").len()
        }

        /// True if no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// The result type of [`scope`]: `Err` when a spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle through which scoped worker threads are spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope so it can spawn
        /// further workers (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Run `f` with a scope in which borrowing, non-'static threads can be
    /// spawned; all are joined before `scope` returns. Unlike crossbeam, a
    /// panicking worker propagates the panic instead of producing `Err` (the
    /// observable effect for callers that `.expect()` the result is the
    /// same: a panic).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn queue_is_fifo_and_thread_safe() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scope_joins_workers_and_collects_results() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let drained = std::sync::Mutex::new(0u32);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let mut local = 0;
                    while q.pop().is_some() {
                        local += 1;
                    }
                    *drained.lock().unwrap() += local;
                });
            }
        })
        .expect("worker panicked");
        assert_eq!(*drained.lock().unwrap(), 100);
    }
}

//! Offline stand-in for `proptest`: the subset of the API the workspace's
//! property tests use — the [`proptest!`] macro over `arg in strategy`
//! parameters, integer-range and `any::<T>()` strategies, `collection::vec`,
//! and the `prop_assert*` macros.
//!
//! Semantics: each property runs for [`ProptestConfig::cases`] cases with
//! inputs drawn from a deterministic per-test generator (seeded from the
//! test's module path and name), so failures are reproducible run-to-run.
//! Unlike the real crate there is **no shrinking** — a failing case is
//! reported with its case number as-is.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-property configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Build the generator for one case of one property (used by the macro; the
/// seed mixes the test identity and case number so every case differs but is
/// stable across runs).
pub fn test_rng(module: &str, name: &str, case: u32) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for b in module.bytes().chain(name.bytes()) {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    TestRng {
        state: seed ^ ((case as u64) << 32 | case as u64),
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Marker returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy producing uniformly random values of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64) + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length range for [`fn@vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring the real crate's prelude.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert a condition inside a [`proptest!`] body; failure reports the case
/// instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Define property tests: every `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written inside the macro, as in the
/// real crate) running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the configuration expression is a
/// depth-0 capture here so it can be repeated into every generated test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(module_path!(), stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 1u8..10, y in 0u64..=5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y <= 5, "y out of range: {}", y);
        }

        #[test]
        fn vectors_have_requested_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assert_eq_compares(a in 0u32..100) {
            prop_assert_eq!(a, a);
            prop_assert_eq!(a as u64 + 1, (a + 1) as u64, "promotion must agree");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_rng("m", "t", 3).next_u64();
        let b = crate::test_rng("m", "t", 3).next_u64();
        assert_eq!(a, b);
        let c = crate::test_rng("m", "t", 4).next_u64();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_name_the_case() {
        proptest! {
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 0);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API surface the workspace uses, implemented over `std::sync`. A poisoned
//! std lock (a thread panicked while holding it) is treated the way
//! parking_lot treats it — the data is handed out anyway.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}

//! Offline stand-in for `rand`: the seedable-generator subset the workload
//! generator uses (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`),
//! backed by SplitMix64. Deterministic for a given seed, which is all the
//! workspace requires (reproducible packet workloads); it makes no
//! cryptographic or statistical-suite claims, and its streams differ from
//! the real crate's.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, as in the real crate.
pub trait Rng: RngCore + Sized {
    /// A uniformly random value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value in `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

impl<T: RngCore> Rng for T {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard generator (SplitMix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64) + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sint!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&v));
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
        }
        // All values of a small range are eventually hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}

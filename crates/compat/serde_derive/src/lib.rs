//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no crates.io access,
//! so the real `serde` cannot be fetched. The workspace code only uses
//! `#[derive(Serialize, Deserialize)]` as behavioural markers (nothing calls
//! a serde serializer — JSON persistence is hand-rolled in
//! `dataplane-orchestrator`), so these derives simply emit impls of the
//! marker traits defined by the sibling `serde` stub crate.
//!
//! The input is scanned token-by-token (no `syn` available) for the item
//! name; generic items are intentionally unsupported — every derived type in
//! this workspace is concrete.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum the derive is attached to.
fn item_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find item name");
}

/// Marker impl of `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Marker impl of `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .unwrap()
}

//! Offline stand-in for `serde`.
//!
//! The workspace builds hermetically (no crates.io), and nothing in it ever
//! drives a serde serializer: the derives on IR / net / verifier types mark
//! them as serialisable, and the one place that actually persists data
//! (`dataplane-orchestrator`'s JSON summary-cache tier) uses a hand-rolled
//! JSON codec. These traits therefore carry no methods; the derive macros in
//! the sibling `serde_derive` stub emit empty impls.

#![forbid(unsafe_code)]

/// Marker for types that can be serialised.
pub trait Serialize {}

/// Marker for types that can be deserialised.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

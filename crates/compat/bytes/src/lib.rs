//! Offline stand-in for the `bytes` crate: exactly the `BytesMut`/`BufMut`
//! surface the workspace uses (append-only big-endian writing), backed by a
//! plain `Vec<u8>`.

#![forbid(unsafe_code)]

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-only writer operations (big-endian for multi-byte integers).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian 16-bit value.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian 32-bit value.
    fn put_u32(&mut self, v: u32);
    /// Append a big-endian 64-bit value.
    fn put_u64(&mut self, v: u64);
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian_and_appended() {
        let mut b = BytesMut::with_capacity(8);
        assert!(b.is_empty());
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_slice(&[8, 9]);
        assert_eq!(b.len(), 9);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }
}

//! Offline stand-in for `criterion`: the benchmark-harness subset the
//! `crates/bench` targets use (`benchmark_group`, `bench_function`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros). Each benchmark runs a short warm-up followed by `sample_size`
//! timed iterations and prints min / mean / max wall-clock times (plus
//! throughput when configured) — no statistics beyond that, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configure per-iteration throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's run length is governed by
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full_name = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        report(&full_name, &bencher.samples, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` for the configured number of samples (after one
    /// warm-up call, which primes caches and lazy statics).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("bench {name:<48} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mut line = format!(
        "bench {name:<48} mean {:>12.3?} min {:>12.3?} max {:>12.3?} ({} samples)",
        mean,
        min,
        max,
        samples.len()
    );
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    let _ = write!(line, " {:>12.0} elem/s", n as f64 / secs);
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, " {:>12.0} B/s", n as f64 / secs);
                }
            }
        }
    }
    println!("{line}");
}

/// Bundle benchmark functions under one name, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn group_macro_produces_runner() {
        demo_group();
    }
}

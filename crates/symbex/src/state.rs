//! Symbolic packet state: how one element transforms the packet along one
//! path.
//!
//! The packet the element received is modelled as an unconstrained byte array
//! (`Term::PacketByte(i)`) of unconstrained length (`Term::PacketLen`). A
//! [`SymPacket`] tracks, along one execution path:
//!
//! * a **base shift** and **length delta** accumulated by `StripFront` /
//!   `PushFront` (encapsulation and de-encapsulation),
//! * an **overlay** of bytes written at concrete offsets,
//! * a **clobber range**: the byte range a write at a *symbolic* offset may
//!   have touched. Reads inside the range return fresh unconstrained values
//!   (a sound over-approximation); reads outside it stay precise. When no
//!   bound on the offset is known the range covers the whole packet —
//!   the old whole-packet clobbering — but when the engine can bound the
//!   offset (e.g. the record-route writes of `IPOptions` land inside the
//!   options area) the fixed IP header bytes upstream of the range keep
//!   flowing to downstream elements, which is what lets the verifier prove
//!   reachability through option-processing elements.
//!
//! At composition time the downstream element's packet symbols are replaced
//! by [`SymPacket::out_byte`] / [`SymPacket::out_len`] of the upstream
//! segment — that is the "stitching" step of the paper's Step 2.

use crate::term::{self, Term, TermRef};
use dataplane_ir::{BinOp, BitVec, CastKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The whole-packet clobber range (used when a symbolic-offset write cannot
/// be bounded).
const FULL_CLOBBER: (i64, i64) = (i64::MIN, i64::MAX);

/// Symbolic packet transformation along one path.
#[derive(Clone, Debug)]
pub struct SymPacket {
    /// Program offset `o` refers to original byte `o + base`.
    base: i64,
    /// Current length = original length + `len_delta`.
    len_delta: i64,
    /// Bytes written at concrete (absolute) offsets. Entries recorded *after*
    /// a clobber override the clobber range (last write wins); entries inside
    /// the range at clobber time are discarded.
    writes: BTreeMap<i64, TermRef>,
    /// Absolute half-open byte range `[lo, hi)` a symbolic-offset write may
    /// have touched; `None` when no such write happened. Reads inside the
    /// range (and not overridden by a later concrete write) are
    /// over-approximated by fresh variables.
    clobber: Option<(i64, i64)>,
}

impl Default for SymPacket {
    fn default() -> Self {
        SymPacket::new()
    }
}

impl SymPacket {
    /// The identity transformation (packet untouched).
    pub fn new() -> Self {
        SymPacket {
            base: 0,
            len_delta: 0,
            writes: BTreeMap::new(),
            clobber: None,
        }
    }

    /// The accumulated front shift in bytes (positive after strips).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The accumulated length change in bytes.
    pub fn len_delta(&self) -> i64 {
        self.len_delta
    }

    /// True if any byte was (or may have been) rewritten.
    pub fn rewrites_bytes(&self) -> bool {
        self.clobber.is_some() || !self.writes.is_empty()
    }

    /// True if a symbolic-offset write clobbered (part of) the byte overlay.
    pub fn is_clobbered(&self) -> bool {
        self.clobber.is_some()
    }

    /// The absolute half-open byte range a symbolic-offset write may have
    /// touched, if any.
    pub fn clobber_range(&self) -> Option<(i64, i64)> {
        self.clobber
    }

    /// The current packet length as a 32-bit term.
    pub fn len_term(&self) -> TermRef {
        let original = Arc::new(Term::PacketLen);
        match self.len_delta.cmp(&0) {
            std::cmp::Ordering::Equal => original,
            std::cmp::Ordering::Greater => term::binary(
                BinOp::Add,
                original,
                term::constant(BitVec::u32(self.len_delta as u32)),
            ),
            std::cmp::Ordering::Less => term::binary(
                BinOp::Sub,
                original,
                term::constant(BitVec::u32((-self.len_delta) as u32)),
            ),
        }
    }

    /// Alias of [`SymPacket::len_term`] named for the composition step.
    pub fn out_len(&self) -> TermRef {
        self.len_term()
    }

    /// The condition under which a `width_bytes`-byte **load** at `offset`
    /// (a 32-bit term, program-relative) reads past the end of the packet.
    /// Computed in 64 bits so the sum cannot wrap.
    pub fn load_oob_condition(&self, offset: &TermRef, width_bytes: u8) -> TermRef {
        let end = term::binary(
            BinOp::Add,
            term::cast(CastKind::ZExt, 64, offset.clone()),
            term::constant(BitVec::u64(width_bytes as u64)),
        );
        term::binary(
            BinOp::UGt,
            end,
            term::cast(CastKind::ZExt, 64, self.len_term()),
        )
    }

    /// The condition under which a store at `offset` writes past the end of
    /// the packet (same shape as the load condition).
    pub fn store_oob_condition(&self, offset: &TermRef, width_bytes: u8) -> TermRef {
        self.load_oob_condition(offset, width_bytes)
    }

    /// The condition under which stripping `n` bytes underflows the packet.
    pub fn strip_underflow_condition(&self, n: u32) -> TermRef {
        term::binary(BinOp::ULt, self.len_term(), term::constant(BitVec::u32(n)))
    }

    /// Record a strip of `n` bytes from the front.
    pub fn strip_front(&mut self, n: u32) {
        self.base += n as i64;
        self.len_delta -= n as i64;
    }

    /// Record prepending `n` zero bytes to the front.
    pub fn push_front(&mut self, n: u32) {
        self.base -= n as i64;
        self.len_delta += n as i64;
        // The new header bytes read as zero until written.
        for j in 0..n as i64 {
            self.writes
                .insert(self.base + j, term::constant(BitVec::u8(0)));
        }
    }

    /// Mark the whole byte overlay unknown (used by loop decomposition when
    /// the loop body may write the packet at unbounded offsets). The
    /// `representative` argument is an arbitrary fresh variable kept only so
    /// callers can observe that the clobbering happened in debug output.
    pub fn clobber(&mut self, representative: TermRef) {
        let _ = representative;
        self.mark_clobber_range(FULL_CLOBBER.0, FULL_CLOBBER.1);
    }

    /// Mark the *program-relative* half-open byte range `[lo, hi)` unknown:
    /// a symbolic-offset write landed somewhere in it. Overlay writes inside
    /// the range are discarded (the symbolic write may have overwritten
    /// them); bytes outside the range stay precise. Ranges accumulate as
    /// their convex hull.
    pub fn clobber_program_range(&mut self, lo: i64, hi: i64) {
        // Saturating: FULL_CLOBBER endpoints must survive the base shift.
        self.mark_clobber_range(lo.saturating_add(self.base), hi.saturating_add(self.base));
    }

    fn mark_clobber_range(&mut self, lo: i64, hi: i64) {
        if lo >= hi {
            return;
        }
        let (lo, hi) = match self.clobber {
            Some((old_lo, old_hi)) => (old_lo.min(lo), old_hi.max(hi)),
            None => (lo, hi),
        };
        self.clobber = Some((lo, hi));
        self.writes.retain(|abs, _| *abs < lo || *abs >= hi);
    }

    /// True when the byte at absolute index `abs` is inside the clobber
    /// range and not overridden by a later concrete write.
    fn byte_is_unknown(&self, abs: i64) -> bool {
        match self.clobber {
            Some((lo, hi)) => (lo..hi).contains(&abs) && !self.writes.contains_key(&abs),
            None => false,
        }
    }

    /// The byte of the *original* packet buffer at absolute index `abs`,
    /// taking the overlay into account. `fresh` supplies an unconstrained
    /// 8-bit variable for clobbered bytes.
    fn byte_at(&self, abs: i64, fresh: &mut dyn FnMut() -> TermRef) -> TermRef {
        if let Some(t) = self.writes.get(&abs) {
            return t.clone();
        }
        if self.byte_is_unknown(abs) {
            return fresh();
        }
        if abs < 0 {
            // A pushed-front byte that was never written reads as zero (the
            // engine zero-fills new headers), and an index before the packet
            // beginning cannot otherwise be reached on a non-crashing path.
            return term::constant(BitVec::u8(0));
        }
        Arc::new(Term::PacketByte(abs))
    }

    /// Load `width_bytes` bytes (big-endian) at `offset` (program-relative,
    /// 32-bit term). For symbolic offsets the value is over-approximated by
    /// fresh variables.
    pub fn load(
        &self,
        offset: &TermRef,
        width_bytes: u8,
        fresh: &mut dyn FnMut() -> TermRef,
    ) -> TermRef {
        let width_bits = width_bytes * 8;
        match offset.as_const() {
            Some(c) => {
                let start = c.as_u64() as i64 + self.base;
                let mut value = term::constant(BitVec::new(width_bits, 0));
                for i in 0..width_bytes as i64 {
                    let byte = self.byte_at(start + i, fresh);
                    let widened = term::cast(CastKind::ZExt, width_bits, byte);
                    value = term::binary(
                        BinOp::Or,
                        term::binary(
                            BinOp::Shl,
                            value,
                            term::constant(BitVec::new(width_bits, 8)),
                        ),
                        widened,
                    );
                }
                value
            }
            None => {
                // Symbolic offset: the loaded value is unconstrained.
                let mut value = term::constant(BitVec::new(width_bits, 0));
                for _ in 0..width_bytes {
                    let byte = fresh();
                    let widened = term::cast(CastKind::ZExt, width_bits, byte);
                    value = term::binary(
                        BinOp::Or,
                        term::binary(
                            BinOp::Shl,
                            value,
                            term::constant(BitVec::new(width_bits, 8)),
                        ),
                        widened,
                    );
                }
                value
            }
        }
    }

    /// Store `value` (of width `width_bytes * 8`) at `offset`. Writes at
    /// symbolic offsets clobber the whole overlay; use
    /// [`SymPacket::store_bounded`] when the offset can be bounded.
    pub fn store(
        &mut self,
        offset: &TermRef,
        width_bytes: u8,
        value: &TermRef,
        fresh: &mut dyn FnMut() -> TermRef,
    ) {
        self.store_bounded(offset, width_bytes, value, None, fresh)
    }

    /// Store `value` at `offset`, with optional *inclusive* bounds
    /// `(lo, hi)` on the program-relative offset for the symbolic case
    /// (typically derived from the path constraint by the engine). A bounded
    /// symbolic write clobbers only `[lo, hi + width_bytes)`; an unbounded
    /// one clobbers the whole packet.
    pub fn store_bounded(
        &mut self,
        offset: &TermRef,
        width_bytes: u8,
        value: &TermRef,
        offset_bounds: Option<(i64, i64)>,
        fresh: &mut dyn FnMut() -> TermRef,
    ) {
        let width_bits = width_bytes * 8;
        match offset.as_const() {
            Some(c) => {
                let start = c.as_u64() as i64 + self.base;
                for i in 0..width_bytes as i64 {
                    let shift = 8 * (width_bytes as i64 - 1 - i);
                    let byte = term::cast(
                        CastKind::Trunc,
                        8,
                        term::binary(
                            BinOp::LShr,
                            value.clone(),
                            term::constant(BitVec::new(width_bits, shift as u64)),
                        ),
                    );
                    // Recorded even over a clobber range: a concrete write
                    // after the symbolic one wins (last write wins).
                    self.writes.insert(start + i, byte);
                }
            }
            None => match offset_bounds {
                Some((lo, hi)) => {
                    self.clobber_program_range(lo, hi.saturating_add(width_bytes as i64));
                }
                None => self.clobber(fresh()),
            },
        }
    }

    /// True when byte `j` of the **output** packet (as the next element sees
    /// it) is unknown because a symbolic-offset write may have touched it.
    /// Composition over-approximates such bytes with fresh variables.
    pub fn out_byte_is_unknown(&self, j: i64) -> bool {
        self.byte_is_unknown(j + self.base)
    }

    /// Byte `j` of the packet as the **next** element will see it.
    pub fn out_byte(&self, j: i64) -> TermRef {
        let abs = j + self.base;
        if let Some(t) = self.writes.get(&abs) {
            return t.clone();
        }
        if self.byte_is_unknown(abs) {
            // Unknown content; callers substitute a fresh variable instead
            // (see `out_byte_is_unknown`). Returning a symbolic read keeps
            // the term well-formed if they don't.
            return Arc::new(Term::PacketByteAt {
                index: term::constant(BitVec::u32(abs.max(0) as u32)),
            });
        }
        if abs < 0 {
            return term::constant(BitVec::u8(0));
        }
        Arc::new(Term::PacketByte(abs))
    }

    /// Rebase a downstream symbolic byte index (a 32-bit term in the next
    /// element's offset space) into this element's original offset space.
    /// Returns `None` when the overlay makes a plain rebase unsound (writes
    /// or clobbering happened), in which case the caller over-approximates.
    pub fn rebase_index(&self, index: &TermRef) -> Option<TermRef> {
        if self.rewrites_bytes() {
            return None;
        }
        Some(match self.base.cmp(&0) {
            std::cmp::Ordering::Equal => index.clone(),
            std::cmp::Ordering::Greater => term::binary(
                BinOp::Add,
                index.clone(),
                term::constant(BitVec::u32(self.base as u32)),
            ),
            std::cmp::Ordering::Less => term::binary(
                BinOp::Sub,
                index.clone(),
                term::constant(BitVec::u32((-self.base) as u32)),
            ),
        })
    }

    /// The concrete byte indexes written on this path (used by tests and
    /// reports).
    pub fn written_indexes(&self) -> Vec<i64> {
        self.writes.keys().copied().collect()
    }

    /// Decompose into `(base, len_delta, writes, clobber)` — the full
    /// observable state, used by the orchestrator's persistent summary cache
    /// to serialise packet transforms. The clobber component is the absolute
    /// half-open byte range a symbolic-offset write may have touched, if any.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (i64, i64, Vec<(i64, TermRef)>, Option<(i64, i64)>) {
        (
            self.base,
            self.len_delta,
            self.writes.iter().map(|(k, v)| (*k, v.clone())).collect(),
            self.clobber,
        )
    }

    /// Rebuild a packet transform from its [`SymPacket::parts`]
    /// decomposition.
    pub fn from_parts(
        base: i64,
        len_delta: i64,
        writes: Vec<(i64, TermRef)>,
        clobber: Option<(i64, i64)>,
    ) -> Self {
        SymPacket {
            base,
            len_delta,
            writes: writes.into_iter().collect(),
            clobber,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{eval, Assignment};

    fn c32(v: u32) -> TermRef {
        term::constant(BitVec::u32(v))
    }

    fn no_fresh() -> impl FnMut() -> TermRef {
        || panic!("fresh variable requested unexpectedly")
    }

    #[test]
    fn identity_packet_reads_original_bytes() {
        let p = SymPacket::new();
        let mut fresh = no_fresh();
        let v = p.load(&c32(2), 2, &mut fresh);
        let a = Assignment::from_packet(&[0, 0, 0xab, 0xcd]);
        assert_eq!(eval(&v, &a).unwrap(), BitVec::u16(0xabcd));
        assert_eq!(p.out_byte(3).to_string(), "pkt[3]");
        assert_eq!(p.len_term().to_string(), "pkt.len");
        assert!(!p.rewrites_bytes());
    }

    #[test]
    fn writes_are_visible_to_later_loads_and_outputs() {
        let mut p = SymPacket::new();
        let mut fresh = no_fresh();
        p.store(&c32(1), 2, &term::constant(BitVec::u16(0x1234)), &mut fresh);
        let v = p.load(&c32(0), 4, &mut fresh);
        let a = Assignment::from_packet(&[0xaa, 0, 0, 0xbb]);
        assert_eq!(eval(&v, &a).unwrap(), BitVec::u32(0xaa1234bb));
        assert_eq!(p.out_byte(1).as_const().unwrap(), BitVec::u8(0x12));
        assert_eq!(p.out_byte(2).as_const().unwrap(), BitVec::u8(0x34));
        assert_eq!(p.out_byte(0).to_string(), "pkt[0]");
        assert!(p.rewrites_bytes());
        assert_eq!(p.written_indexes(), vec![1, 2]);
    }

    #[test]
    fn strip_shifts_offsets_and_length() {
        let mut p = SymPacket::new();
        p.strip_front(14);
        assert_eq!(p.base(), 14);
        assert_eq!(p.len_delta(), -14);
        let mut fresh = no_fresh();
        let v = p.load(&c32(0), 1, &mut fresh);
        assert_eq!(v.to_string(), "pkt[14]");
        assert_eq!(p.out_byte(0).to_string(), "pkt[14]");
        let len = p.len_term().to_string();
        assert!(len.contains("pkt.len") && len.contains("14"), "{len}");
        // Rebase of a downstream index adds the shift.
        let idx = p.rebase_index(&c32(6)).unwrap();
        assert_eq!(idx.as_const().unwrap(), BitVec::u32(20));
    }

    #[test]
    fn push_front_creates_zero_bytes_then_writes_fill_them() {
        let mut p = SymPacket::new();
        p.push_front(4);
        assert_eq!(p.base(), -4);
        assert_eq!(p.len_delta(), 4);
        assert_eq!(p.out_byte(0).as_const().unwrap(), BitVec::u8(0));
        let mut fresh = no_fresh();
        p.store(&c32(0), 2, &term::constant(BitVec::u16(0xbeef)), &mut fresh);
        assert_eq!(p.out_byte(0).as_const().unwrap(), BitVec::u8(0xbe));
        assert_eq!(p.out_byte(1).as_const().unwrap(), BitVec::u8(0xef));
        // Byte 4 of the new packet is byte 0 of the original.
        assert_eq!(p.out_byte(4).to_string(), "pkt[0]");
        // Rebase is refused because bytes were rewritten.
        assert!(p.rebase_index(&c32(0)).is_none());
    }

    #[test]
    fn oob_conditions_reference_current_length() {
        let p = SymPacket::new();
        let cond = p.load_oob_condition(&c32(10), 4);
        // Evaluates true exactly when 14 > len.
        for (len, expect) in [(13u32, true), (14, false), (20, false)] {
            let mut a = Assignment::from_packet(&vec![0u8; len as usize]);
            a.packet_len = len;
            assert_eq!(eval(&cond, &a).unwrap().is_true(), expect, "len {len}");
        }
        let mut stripped = SymPacket::new();
        stripped.strip_front(14);
        let cond = stripped.load_oob_condition(&c32(0), 4);
        // After stripping 14 bytes, reading 4 bytes requires an original
        // length of at least 18.
        for (len, expect) in [(17u32, true), (18, false)] {
            let mut a = Assignment::from_packet(&vec![0u8; len as usize]);
            a.packet_len = len;
            assert_eq!(eval(&cond, &a).unwrap().is_true(), expect, "len {len}");
        }
        let cond = SymPacket::new().strip_underflow_condition(14);
        let mut a = Assignment::from_packet(&[0u8; 10]);
        a.packet_len = 10;
        assert!(eval(&cond, &a).unwrap().is_true());
    }

    #[test]
    fn symbolic_offset_load_is_fresh_and_store_clobbers() {
        let mut counter = 0u32;
        let mut fresh = || {
            counter += 1;
            Arc::new(Term::Var {
                id: crate::term::VarId(counter),
                width: 8,
            })
        };
        let sym_off = Arc::new(Term::PacketLen); // any non-constant term
        let mut p = SymPacket::new();
        let v = p.load(&sym_off, 2, &mut fresh);
        assert!(v.to_string().contains("v1"));
        assert!(!p.is_clobbered());
        p.store(&sym_off, 1, &term::constant(BitVec::u8(1)), &mut fresh);
        assert!(p.is_clobbered());
        // After clobbering, concrete loads are fresh too.
        let v = p.load(&c32(0), 1, &mut fresh);
        assert!(v.to_string().contains('v'));
        assert!(p.rebase_index(&c32(0)).is_none());
    }
}

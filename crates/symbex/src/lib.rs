//! # dataplane-symbex — symbolic execution for the element IR
//!
//! This crate is the reproduction's stand-in for the S2E/KLEE-style symbolic
//! execution engine the paper builds on: it executes an element's IR model
//! with a fully symbolic packet and produces the per-path **segments** that
//! the compositional verifier (crate `dataplane-verifier`) tags, composes,
//! and discharges.
//!
//! * [`term`] — symbolic bit-vector terms with constant folding, evaluation,
//!   and substitution (the substitution is what implements the paper's
//!   "stitching" of segments into pipeline paths).
//! * [`state`] — the symbolic packet transformation along one path.
//! * [`engine`] — exhaustive path exploration with two loop-handling modes
//!   (full unrolling vs. the paper's loop decomposition).
//! * [`solver`] — the decision procedure used to discharge infeasible paths
//!   (sound `Unsat`) and to build verified counterexample models (sound
//!   `Sat`).
//!
//! ## Example: exploring a toy element
//!
//! ```
//! use dataplane_ir::builder::{Block, ProgramBuilder};
//! use dataplane_ir::expr::dsl::*;
//! use dataplane_symbex::engine::{explore, EngineConfig};
//!
//! // A toy element that crashes when the first packet byte is zero.
//! let mut pb = ProgramBuilder::new("Toy", 1);
//! let x = pb.local("x", 8);
//! let mut b = Block::new();
//! b.assign(x, udiv(c(8, 255), pkt(0, 1)));
//! b.emit(0);
//! let program = pb.finish(b).unwrap();
//!
//! let exploration = explore(&program, &EngineConfig::default()).unwrap();
//! assert!(exploration.segments.iter().any(|s| s.outcome.is_crash()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod engine;
pub mod solver;
pub mod state;
pub mod term;

pub use cancel::CancelToken;
pub use engine::{
    explore, explore_with_cancel, CrashKind, DsReadRecord, DsWriteRecord, EngineConfig,
    Exploration, ExploreError, LoopMode, Segment, SegmentOutcome,
};
pub use solver::{
    interval_infeasible, term_bounds, CheckDiagnostics, Interval, Solver, SolverConfig,
    SolverResult,
};
pub use state::SymPacket;
pub use term::{Assignment, Term, TermRef, VarId};

// Terms are shared through `Arc`, so explorations (and everything the
// parallel verification orchestrator moves between worker threads) are
// `Send + Sync` by construction. These assertions make that a compile-time
// contract of the crate rather than an accident of its field types.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TermRef>();
    assert_send_sync::<Segment>();
    assert_send_sync::<Exploration>();
    assert_send_sync::<Solver>();
    assert_send_sync::<EngineConfig>();
    assert_send_sync::<CancelToken>();
};

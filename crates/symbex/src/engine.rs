//! Exhaustive symbolic exploration of element programs.
//!
//! The engine executes an element's IR program with a fully symbolic packet
//! (every byte and the length unconstrained — "a symbolic bit vector" in the
//! paper's words) and enumerates **segments**: complete paths through the
//! element, each carrying its path constraint, the symbolic transformation it
//! applies to the packet, its data-structure interactions, its instruction
//! count, and how it ends (emit / drop / crash).
//!
//! Two loop-handling modes realise the paper's discussion:
//!
//! * [`LoopMode::Unroll`] explores every feasible unrolling up to the loop
//!   bound. This is what a general-purpose symbolic executor does and is what
//!   makes the monolithic baseline explode (the paper's "millions of
//!   segments … months").
//! * [`LoopMode::Decompose`] treats one loop iteration as a "mini-element":
//!   the body is explored once with the loop-carried state havocked (made
//!   unconstrained), every violating body path is surfaced as a segment of
//!   the element, and execution continues after the loop with the carried
//!   state havocked again. This over-approximates the loop (it can only add
//!   false suspects, never hide real ones) while keeping the number of
//!   segments per element small — the paper's loop decomposition.

use crate::state::SymPacket;
use crate::term::{self, Term, TermRef, VarId};
use dataplane_ir::expr::{DsId, Expr, LocalId};
use dataplane_ir::program::{DsKind, Program, Stmt};
use dataplane_ir::{BinOp, BitVec, CastKind};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How loops are handled during exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopMode {
    /// Unroll loops branch by branch up to their declared bound.
    Unroll,
    /// Summarise each loop by exploring its body once over havocked state
    /// (the paper's mini-element decomposition).
    Decompose,
}

/// Engine limits and options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Abort exploration once this many segments have been produced.
    pub max_segments: usize,
    /// Abort exploration once this many branch points have been expanded
    /// (guards against exponential unrollings that never finish a segment).
    pub max_branches: u64,
    /// Loop handling mode.
    pub loop_mode: LoopMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_segments: 200_000,
            max_branches: 2_000_000,
            loop_mode: LoopMode::Decompose,
        }
    }
}

impl EngineConfig {
    /// The configuration the compositional verifier uses per element.
    pub fn decomposed() -> Self {
        EngineConfig {
            loop_mode: LoopMode::Decompose,
            ..EngineConfig::default()
        }
    }

    /// The configuration of the monolithic baseline (full unrolling) with an
    /// explicit budget.
    pub fn monolithic(max_segments: usize, max_branches: u64) -> Self {
        EngineConfig {
            max_segments,
            max_branches,
            loop_mode: LoopMode::Unroll,
        }
    }
}

/// Why exploration stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExploreError {
    /// The segment budget was exhausted — the paper's "does not complete
    /// within 12 hours" situation, surfaced as a hard number.
    SegmentBudgetExceeded {
        /// Number of segments produced before giving up.
        produced: usize,
    },
    /// The branch budget was exhausted.
    BranchBudgetExceeded {
        /// Number of branch expansions performed before giving up.
        expanded: u64,
    },
    /// The caller's [`crate::CancelToken`] was cancelled mid-exploration
    /// (e.g. a speculative job whose prefix turned out infeasible).
    Cancelled,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::SegmentBudgetExceeded { produced } => {
                write!(f, "segment budget exceeded after {produced} segments")
            }
            ExploreError::BranchBudgetExceeded { expanded } => {
                write!(
                    f,
                    "branch budget exceeded after {expanded} branch expansions"
                )
            }
            ExploreError::Cancelled => write!(f, "exploration cancelled"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// How a segment ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The packet is pushed to this output port.
    Emitted(u8),
    /// The packet is dropped.
    Dropped,
    /// The element crashes.
    Crashed(CrashKind),
}

impl SegmentOutcome {
    /// True if the segment crashes.
    pub fn is_crash(&self) -> bool {
        matches!(self, SegmentOutcome::Crashed(_))
    }

    /// The emitted port, if any.
    pub fn port(&self) -> Option<u8> {
        match self {
            SegmentOutcome::Emitted(p) => Some(*p),
            _ => None,
        }
    }
}

/// The class of crash a crashing segment exhibits (mirrors
/// `dataplane_ir::CrashReason` without the concrete payloads, which are not
/// known symbolically).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// A failed assertion, with its message.
    AssertionFailed(String),
    /// An explicit abort, with its message.
    Aborted(String),
    /// A packet access outside the packet bounds.
    PacketOutOfBounds,
    /// An array data-structure access with an out-of-range key.
    DsKeyOutOfRange(String),
    /// Division or remainder by zero.
    DivisionByZero,
    /// A loop exceeded its iteration bound.
    LoopBoundExceeded,
    /// A strip of more bytes than the packet holds.
    StripUnderflow,
}

impl std::fmt::Display for CrashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashKind::AssertionFailed(m) => write!(f, "assertion failed: {m}"),
            CrashKind::Aborted(m) => write!(f, "aborted: {m}"),
            CrashKind::PacketOutOfBounds => write!(f, "packet access out of bounds"),
            CrashKind::DsKeyOutOfRange(ds) => write!(f, "out-of-range key in '{ds}'"),
            CrashKind::DivisionByZero => write!(f, "division by zero"),
            CrashKind::LoopBoundExceeded => write!(f, "loop bound exceeded"),
            CrashKind::StripUnderflow => write!(f, "strip past end of packet"),
        }
    }
}

/// A recorded data-structure read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsReadRecord {
    /// Which data structure.
    pub ds: DsId,
    /// The key term.
    pub key: TermRef,
    /// Sequence number of this read within the segment.
    pub seq: u32,
    /// The term standing for the returned value.
    pub value: TermRef,
}

/// A recorded data-structure write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsWriteRecord {
    /// Which data structure.
    pub ds: DsId,
    /// The key term.
    pub key: TermRef,
    /// The written value term.
    pub value: TermRef,
}

/// One complete path through an element under symbolic input.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Conjunction of branch conditions that select this path.
    pub constraint: Vec<TermRef>,
    /// How the path ends.
    pub outcome: SegmentOutcome,
    /// The symbolic packet transformation along this path (valid for emitted
    /// and dropped segments; crash segments stop mid-way).
    pub packet: SymPacket,
    /// Data-structure reads performed along the path.
    pub ds_reads: Vec<DsReadRecord>,
    /// Data-structure writes performed along the path.
    pub ds_writes: Vec<DsWriteRecord>,
    /// IR instructions executed along this path (an upper bound when loop
    /// decomposition abstracted a loop on this path).
    pub instructions: u64,
    /// True if a decomposed loop contributed to this segment, in which case
    /// `instructions` is an upper bound rather than an exact count.
    pub approximate: bool,
}

/// The result of exploring one program.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Every discovered segment.
    pub segments: Vec<Segment>,
    /// Number of branch expansions performed (a measure of exploration work,
    /// reported by the scaling experiments).
    pub branches_expanded: u64,
}

impl Exploration {
    /// Segments that end in a crash.
    pub fn crash_segments(&self) -> Vec<&Segment> {
        self.segments
            .iter()
            .filter(|s| s.outcome.is_crash())
            .collect()
    }

    /// The largest per-path instruction count over all segments.
    pub fn max_instructions(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.instructions)
            .max()
            .unwrap_or(0)
    }
}

/// Symbolically explore a program under a fully symbolic packet.
pub fn explore(program: &Program, config: &EngineConfig) -> Result<Exploration, ExploreError> {
    explore_with_cancel(program, config, &crate::CancelToken::new())
}

/// [`explore`] under a [`crate::CancelToken`]: the engine loop polls the
/// token at every branch expansion and aborts with
/// [`ExploreError::Cancelled`] once it fires, so speculatively scheduled
/// explorations stop promptly when their work becomes moot.
pub fn explore_with_cancel(
    program: &Program,
    config: &EngineConfig,
    cancel: &crate::CancelToken,
) -> Result<Exploration, ExploreError> {
    let mut engine = Engine {
        program,
        config,
        cancel,
        segments: Vec::new(),
        branches: 0,
        next_var: 0,
        next_ds_seq: 0,
        eval_guards: Vec::new(),
        store_spans: Vec::new(),
    };
    let state = PathState {
        constraint: Vec::new(),
        locals: program
            .locals
            .iter()
            .map(|d| term::constant(BitVec::zero(d.width)))
            .collect(),
        packet: SymPacket::new(),
        ds_reads: Vec::new(),
        ds_writes: Vec::new(),
        instructions: 0,
        approximate: false,
    };
    engine.exec_block(state, &program.body, &Cont::Done)?;
    Ok(Exploration {
        segments: engine.segments,
        branches_expanded: engine.branches,
    })
}

/// What remains to be executed after the current block finishes.
enum Cont<'a> {
    /// Nothing; falling through drops the packet.
    Done,
    /// Execute these statements, then the next continuation.
    Then(&'a [Stmt], &'a Cont<'a>),
}

/// The mutable exploration state of one path.
#[derive(Clone, Debug)]
struct PathState {
    constraint: Vec<TermRef>,
    locals: Vec<TermRef>,
    packet: SymPacket,
    ds_reads: Vec<DsReadRecord>,
    ds_writes: Vec<DsWriteRecord>,
    instructions: u64,
    approximate: bool,
}

impl PathState {
    fn assume(&mut self, cond: TermRef) {
        if !cond.is_true() {
            self.constraint.push(cond);
        }
    }
}

/// The result of evaluating an expression: a value, or a crash branch that
/// was already emitted (plus the condition under which evaluation survives).
struct Evaluated {
    value: TermRef,
}

/// The union of packet-byte ranges the stores executed under one decomposed
/// loop body may touch (program-relative, half-open).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StoreSpan {
    /// No store executed.
    None,
    /// Every store provably lands inside `[lo, hi)`.
    Bounded(i64, i64),
    /// At least one store's offset could not be bounded.
    Unbounded,
}

impl StoreSpan {
    fn merge(&mut self, other: StoreSpan) {
        *self = match (*self, other) {
            (StoreSpan::Unbounded, _) | (_, StoreSpan::Unbounded) => StoreSpan::Unbounded,
            (StoreSpan::None, s) | (s, StoreSpan::None) => s,
            (StoreSpan::Bounded(a, b), StoreSpan::Bounded(c, d)) => {
                StoreSpan::Bounded(a.min(c), b.max(d))
            }
        };
    }
}

struct Engine<'a> {
    program: &'a Program,
    config: &'a EngineConfig,
    cancel: &'a crate::CancelToken,
    segments: Vec<Segment>,
    branches: u64,
    next_var: u32,
    next_ds_seq: u32,
    /// Conditions guarding the expression currently being evaluated (pushed
    /// while evaluating the arms of a `Select`). Crash forks are conjoined
    /// with these guards so that a crash inside an *untaken* select arm is
    /// not reported — the concrete interpreter evaluates select lazily.
    eval_guards: Vec<TermRef>,
    /// One frame per decomposed loop currently being explored; every packet
    /// store merges the range it may touch into the innermost frame, so the
    /// post-loop state can clobber exactly that range instead of the whole
    /// packet.
    store_spans: Vec<StoreSpan>,
}

impl<'a> Engine<'a> {
    fn fresh_var(&mut self, width: u8) -> TermRef {
        let id = VarId(self.next_var);
        self.next_var += 1;
        Arc::new(Term::Var { id, width })
    }

    /// Execute a packet store: bound the offset under the path constraint
    /// when it is symbolic (so the clobber stays local to the range the
    /// store can actually reach), log the touched range into the innermost
    /// decomposed-loop frame, and apply the store to the state's packet.
    fn packet_store(
        &mut self,
        state: &mut PathState,
        off: &TermRef,
        width_bytes: u8,
        value: &TermRef,
    ) {
        let bounds = if off.as_const().is_some() {
            None
        } else {
            // A bound close to the index-space maximum carries no
            // information; treat it as unbounded so the behaviour matches
            // the old whole-packet clobbering.
            const MAX_USEFUL_OFFSET: u64 = 1 << 16;
            let iv = crate::solver::term_bounds(&state.constraint, off);
            (iv.hi < MAX_USEFUL_OFFSET).then_some((iv.lo as i64, iv.hi as i64))
        };
        if let Some(frame) = self.store_spans.last_mut() {
            let span = match (off.as_const(), bounds) {
                (Some(c), _) => {
                    let at = c.as_u64() as i64;
                    StoreSpan::Bounded(at, at + width_bytes as i64)
                }
                (None, Some((lo, hi))) => StoreSpan::Bounded(lo, hi + width_bytes as i64),
                (None, None) => StoreSpan::Unbounded,
            };
            frame.merge(span);
        }
        let mut next_var = self.next_var;
        state
            .packet
            .store_bounded(off, width_bytes, value, bounds, &mut || {
                let v = Arc::new(Term::Var {
                    id: VarId(next_var),
                    width: 8,
                });
                next_var += 1;
                v
            });
        self.next_var = next_var;
    }

    fn finish(&mut self, state: PathState, outcome: SegmentOutcome) -> Result<(), ExploreError> {
        if self.segments.len() >= self.config.max_segments {
            return Err(ExploreError::SegmentBudgetExceeded {
                produced: self.segments.len(),
            });
        }
        self.segments.push(Segment {
            constraint: state.constraint,
            outcome,
            packet: state.packet,
            ds_reads: state.ds_reads,
            ds_writes: state.ds_writes,
            instructions: state.instructions,
            approximate: state.approximate,
        });
        Ok(())
    }

    fn charge_branch(&mut self) -> Result<(), ExploreError> {
        if self.cancel.is_cancelled() {
            return Err(ExploreError::Cancelled);
        }
        self.branches += 1;
        if self.branches > self.config.max_branches {
            return Err(ExploreError::BranchBudgetExceeded {
                expanded: self.branches,
            });
        }
        Ok(())
    }

    fn exec_cont(&mut self, state: PathState, cont: &Cont<'_>) -> Result<(), ExploreError> {
        match cont {
            Cont::Done => self.finish(state, SegmentOutcome::Dropped),
            Cont::Then(stmts, rest) => self.exec_block(state, stmts, rest),
        }
    }

    fn exec_block(
        &mut self,
        state: PathState,
        stmts: &[Stmt],
        cont: &Cont<'_>,
    ) -> Result<(), ExploreError> {
        match stmts.split_first() {
            None => self.exec_cont(state, cont),
            Some((first, rest)) => {
                let next = Cont::Then(rest, cont);
                self.exec_stmt(state, first, &next)
            }
        }
    }

    fn exec_stmt(
        &mut self,
        mut state: PathState,
        stmt: &Stmt,
        cont: &Cont<'_>,
    ) -> Result<(), ExploreError> {
        state.instructions += 1;
        match stmt {
            Stmt::Nop => self.exec_cont(state, cont),
            Stmt::Assign { local, value } => {
                let evaluated = match self.eval(&mut state, value)? {
                    Some(e) => e,
                    None => return Ok(()), // all branches crashed
                };
                let width = self.program.locals[local.0 as usize].width;
                state.locals[local.0 as usize] =
                    term::cast(CastKind::Resize, width, evaluated.value);
                self.exec_cont(state, cont)
            }
            Stmt::PacketStore {
                offset,
                width_bytes,
                value,
            } => {
                let off = match self.eval(&mut state, offset)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                let val = match self.eval(&mut state, value)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                // Fork on the bounds check.
                let oob = state.packet.store_oob_condition(&off.value, *width_bytes);
                self.fork_crash(&mut state, oob, CrashKind::PacketOutOfBounds)?;
                self.packet_store(&mut state, &off.value, *width_bytes, &val.value);
                self.exec_cont(state, cont)
            }
            Stmt::DsWrite { ds, key, value } => {
                let key = match self.eval(&mut state, key)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                let val = match self.eval(&mut state, value)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                let decl = &self.program.data_structures[ds.0 as usize];
                if let DsKind::Array { size } = decl.kind {
                    let oob = term::binary(
                        BinOp::UGe,
                        key.value.clone(),
                        term::constant(BitVec::new(decl.key_width, size)),
                    );
                    self.fork_crash(
                        &mut state,
                        oob,
                        CrashKind::DsKeyOutOfRange(decl.name.clone()),
                    )?;
                }
                state.ds_writes.push(DsWriteRecord {
                    ds: *ds,
                    key: key.value,
                    value: val.value,
                });
                self.exec_cont(state, cont)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = match self.eval(&mut state, cond)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                if c.value.is_true() {
                    return self.exec_block(state, then_body, cont);
                }
                if c.value.is_false() {
                    return self.exec_block(state, else_body, cont);
                }
                self.charge_branch()?;
                let mut then_state = state.clone();
                then_state.assume(c.value.clone());
                self.exec_block(then_state, then_body, cont)?;
                let mut else_state = state;
                else_state.assume(term::negate(c.value));
                self.exec_block(else_state, else_body, cont)
            }
            Stmt::Loop {
                max_iters,
                cond,
                body,
            } => match self.config.loop_mode {
                LoopMode::Unroll => self.exec_loop_unrolled(state, *max_iters, cond, body, 0, cont),
                LoopMode::Decompose => {
                    self.exec_loop_decomposed(state, *max_iters, cond, body, cont)
                }
            },
            Stmt::StripFront { n } => {
                let underflow = state.packet.strip_underflow_condition(*n);
                self.fork_crash(&mut state, underflow, CrashKind::StripUnderflow)?;
                state.packet.strip_front(*n);
                self.exec_cont(state, cont)
            }
            Stmt::PushFront { n } => {
                state.packet.push_front(*n);
                self.exec_cont(state, cont)
            }
            Stmt::Assert { cond, message } => {
                let c = match self.eval(&mut state, cond)? {
                    Some(e) => e,
                    None => return Ok(()),
                };
                if c.value.is_true() {
                    return self.exec_cont(state, cont);
                }
                if c.value.is_false() {
                    return self.finish(
                        state,
                        SegmentOutcome::Crashed(CrashKind::AssertionFailed(message.clone())),
                    );
                }
                self.charge_branch()?;
                let mut crash_state = state.clone();
                crash_state.assume(term::negate(c.value.clone()));
                self.finish(
                    crash_state,
                    SegmentOutcome::Crashed(CrashKind::AssertionFailed(message.clone())),
                )?;
                state.assume(c.value);
                self.exec_cont(state, cont)
            }
            Stmt::Abort { message } => self.finish(
                state,
                SegmentOutcome::Crashed(CrashKind::Aborted(message.clone())),
            ),
            Stmt::Emit { port } => self.finish(state, SegmentOutcome::Emitted(*port)),
            Stmt::Drop => self.finish(state, SegmentOutcome::Dropped),
        }
    }

    /// Fork off a crash segment under `crash_cond`, and constrain the
    /// surviving state with its negation. The condition is conjoined with any
    /// active select-arm guards.
    fn fork_crash(
        &mut self,
        state: &mut PathState,
        crash_cond: TermRef,
        kind: CrashKind,
    ) -> Result<(), ExploreError> {
        let crash_cond = self.eval_guards.iter().fold(crash_cond, |acc, g| {
            term::binary(BinOp::BoolAnd, g.clone(), acc)
        });
        if crash_cond.is_false() {
            return Ok(());
        }
        self.charge_branch()?;
        let mut crash_state = state.clone();
        crash_state.assume(crash_cond.clone());
        self.finish(crash_state, SegmentOutcome::Crashed(kind))?;
        if crash_cond.is_true() {
            // The surviving branch is infeasible; mark it so by pushing an
            // explicit `false` constraint (callers will not extend it into
            // further segments because every extension carries the `false`).
            state.assume(term::ff());
        } else {
            state.assume(term::negate(crash_cond));
        }
        Ok(())
    }

    fn exec_loop_unrolled(
        &mut self,
        mut state: PathState,
        max_iters: u32,
        cond: &Expr,
        body: &[Stmt],
        done: u32,
        cont: &Cont<'_>,
    ) -> Result<(), ExploreError> {
        state.instructions += 1; // the per-iteration condition check
        let c = match self.eval(&mut state, cond)? {
            Some(e) => e,
            None => return Ok(()),
        };
        if c.value.is_false() {
            return self.exec_cont(state, cont);
        }
        // Branch: exit now (condition false) unless the condition is
        // literally true.
        if !c.value.is_true() {
            self.charge_branch()?;
            let mut exit_state = state.clone();
            exit_state.assume(term::negate(c.value.clone()));
            self.exec_cont(exit_state, cont)?;
            state.assume(c.value.clone());
        }
        if done >= max_iters {
            return self.finish(state, SegmentOutcome::Crashed(CrashKind::LoopBoundExceeded));
        }
        // Execute the body, then come back around. The continuation is built
        // recursively by re-entering this function once the body finishes;
        // structurally we express it by executing the body with an empty
        // continuation... which is not possible with the `Cont` list, so we
        // instead recurse over a freshly built statement list: body followed
        // by the loop itself is not representable either. We therefore expand
        // the body inline by chaining `exec_block` with a closure-less
        // continuation: run the body, and for every state that falls through
        // it, continue the loop. To do that we use a marker continuation.
        self.exec_body_then_loop(state, max_iters, cond, body, done, cont)
    }

    /// Helper for unrolled loops: run `body` and for each fall-through state
    /// continue with the next loop iteration.
    fn exec_body_then_loop(
        &mut self,
        state: PathState,
        max_iters: u32,
        cond: &Expr,
        body: &[Stmt],
        done: u32,
        cont: &Cont<'_>,
    ) -> Result<(), ExploreError> {
        // Collect fall-through states by running the body with a sentinel
        // continuation that records them instead of finishing segments.
        let mut fallthrough = Vec::new();
        self.exec_block_collect(state, body, &mut fallthrough)?;
        for s in fallthrough {
            self.exec_loop_unrolled(s, max_iters, cond, body, done + 1, cont)?;
        }
        Ok(())
    }

    /// Execute a block; states that fall off its end are pushed into `out`
    /// instead of being finished as segments. Terminal statements inside the
    /// block (emit/drop/crash) still finish segments directly.
    fn exec_block_collect(
        &mut self,
        state: PathState,
        stmts: &[Stmt],
        out: &mut Vec<PathState>,
    ) -> Result<(), ExploreError> {
        match stmts.split_first() {
            None => {
                out.push(state);
                Ok(())
            }
            Some((first, rest)) => {
                // Reuse exec_stmt by temporarily treating the rest of the
                // block as the continuation, but interception of the final
                // fall-through needs special handling: we implement the small
                // subset of statement kinds that can fall through explicitly
                // here to keep the recursion structure simple.
                match first {
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        let mut state = state;
                        state.instructions += 1;
                        let c = match self.eval(&mut state, cond)? {
                            Some(e) => e,
                            None => return Ok(()),
                        };
                        if c.value.is_true() {
                            let mut joined = then_body.to_vec();
                            joined.extend_from_slice(rest);
                            return self.exec_block_collect(state, &joined, out);
                        }
                        if c.value.is_false() {
                            let mut joined = else_body.to_vec();
                            joined.extend_from_slice(rest);
                            return self.exec_block_collect(state, &joined, out);
                        }
                        self.charge_branch()?;
                        let mut then_state = state.clone();
                        then_state.assume(c.value.clone());
                        let mut joined = then_body.to_vec();
                        joined.extend_from_slice(rest);
                        self.exec_block_collect(then_state, &joined, out)?;
                        let mut else_state = state;
                        else_state.assume(term::negate(c.value));
                        let mut joined = else_body.to_vec();
                        joined.extend_from_slice(rest);
                        self.exec_block_collect(else_state, &joined, out)
                    }
                    // Terminal statements and everything else that cannot
                    // fall through to `rest` in a special way: delegate to
                    // exec_stmt with a continuation that collects into a
                    // temporary segment list is not possible, so handle the
                    // simple non-branching statements inline.
                    Stmt::Emit { .. } | Stmt::Drop | Stmt::Abort { .. } => {
                        self.exec_stmt(state, first, &Cont::Done)
                    }
                    _ => {
                        // Non-terminal, possibly-forking statements: run the
                        // statement with an empty continuation replaced by a
                        // recursive call — easiest is to execute it via
                        // exec_stmt against a continuation consisting of the
                        // rest of the block, but exec_stmt would finish
                        // fall-through states as Dropped segments. Instead we
                        // inline the supported statements.
                        let mut state = state;
                        state.instructions += 1;
                        match first {
                            Stmt::Nop => self.exec_block_collect(state, rest, out),
                            Stmt::Assign { local, value } => {
                                let evaluated = match self.eval(&mut state, value)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                let width = self.program.locals[local.0 as usize].width;
                                state.locals[local.0 as usize] =
                                    term::cast(CastKind::Resize, width, evaluated.value);
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::PacketStore {
                                offset,
                                width_bytes,
                                value,
                            } => {
                                let off = match self.eval(&mut state, offset)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                let val = match self.eval(&mut state, value)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                let oob =
                                    state.packet.store_oob_condition(&off.value, *width_bytes);
                                self.fork_crash(&mut state, oob, CrashKind::PacketOutOfBounds)?;
                                self.packet_store(&mut state, &off.value, *width_bytes, &val.value);
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::DsWrite { ds, key, value } => {
                                let key = match self.eval(&mut state, key)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                let val = match self.eval(&mut state, value)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                let decl = &self.program.data_structures[ds.0 as usize];
                                if let DsKind::Array { size } = decl.kind {
                                    let oob = term::binary(
                                        BinOp::UGe,
                                        key.value.clone(),
                                        term::constant(BitVec::new(decl.key_width, size)),
                                    );
                                    self.fork_crash(
                                        &mut state,
                                        oob,
                                        CrashKind::DsKeyOutOfRange(decl.name.clone()),
                                    )?;
                                }
                                state.ds_writes.push(DsWriteRecord {
                                    ds: *ds,
                                    key: key.value,
                                    value: val.value,
                                });
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::StripFront { n } => {
                                let underflow = state.packet.strip_underflow_condition(*n);
                                self.fork_crash(&mut state, underflow, CrashKind::StripUnderflow)?;
                                state.packet.strip_front(*n);
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::PushFront { n } => {
                                state.packet.push_front(*n);
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::Assert { cond, message } => {
                                let c = match self.eval(&mut state, cond)? {
                                    Some(e) => e,
                                    None => return Ok(()),
                                };
                                if c.value.is_true() {
                                    return self.exec_block_collect(state, rest, out);
                                }
                                if c.value.is_false() {
                                    return self.finish(
                                        state,
                                        SegmentOutcome::Crashed(CrashKind::AssertionFailed(
                                            message.clone(),
                                        )),
                                    );
                                }
                                self.charge_branch()?;
                                let mut crash_state = state.clone();
                                crash_state.assume(term::negate(c.value.clone()));
                                self.finish(
                                    crash_state,
                                    SegmentOutcome::Crashed(CrashKind::AssertionFailed(
                                        message.clone(),
                                    )),
                                )?;
                                state.assume(c.value);
                                self.exec_block_collect(state, rest, out)
                            }
                            Stmt::Loop {
                                max_iters,
                                cond,
                                body,
                            } => {
                                // A nested loop inside a collected block: in
                                // unroll mode this arises for loops inside
                                // loops; handle it by decomposing (sound
                                // over-approximation) to keep the collector
                                // simple. Nested loops do not occur in the
                                // element library.
                                let fallthrough =
                                    self.decompose_loop(&mut state, *max_iters, cond, body)?;
                                if fallthrough {
                                    self.exec_block_collect(state, rest, out)
                                } else {
                                    Ok(())
                                }
                            }
                            Stmt::If { .. }
                            | Stmt::Emit { .. }
                            | Stmt::Drop
                            | Stmt::Abort { .. } => unreachable!("handled above"),
                        }
                    }
                }
            }
        }
    }

    fn exec_loop_decomposed(
        &mut self,
        mut state: PathState,
        max_iters: u32,
        cond: &Expr,
        body: &[Stmt],
        cont: &Cont<'_>,
    ) -> Result<(), ExploreError> {
        let fallthrough = self.decompose_loop(&mut state, max_iters, cond, body)?;
        if fallthrough {
            self.exec_cont(state, cont)
        } else {
            Ok(())
        }
    }

    /// Infer inductive lower-bound invariants for the loop-carried locals of
    /// a decomposed loop body: a local whose entry value has lower bound
    /// `lo > 0` keeps `lo <= local` across iterations if every fall-through
    /// body path provably re-establishes the bound (assuming it — plus the
    /// loop condition — at iteration entry). This is what preserves
    /// `20 <= i` for option-walking cursors, which in turn bounds the
    /// symbolic record-route stores away from the fixed IP header.
    ///
    /// The validation explorations emit no segments and consume no budget
    /// (segments *and* the branch counter are rolled back after every
    /// round); only the surviving hypotheses escape. A validation round
    /// that runs out of budget abandons inference — throwaway work must
    /// never fail the real exploration. Dropping a failed hypothesis can
    /// invalidate others (their validation assumed it), so validation
    /// repeats until the surviving set is stable.
    fn infer_loop_invariants(
        &mut self,
        state: &PathState,
        carried: &BTreeSet<LocalId>,
        cond: &Expr,
        body: &[Stmt],
    ) -> Result<Vec<(LocalId, u64)>, ExploreError> {
        let mut hypotheses: Vec<(LocalId, u64)> = Vec::new();
        for local in carried {
            let entry = &state.locals[local.0 as usize];
            let lo = crate::solver::term_bounds(&state.constraint, entry).lo;
            if lo > 0 {
                hypotheses.push((*local, lo));
            }
        }
        let branches_mark = self.branches;
        while !hypotheses.is_empty() {
            let mut trial = state.clone();
            trial.approximate = true;
            for local in carried {
                let width = self.program.locals[local.0 as usize].width;
                trial.locals[local.0 as usize] = self.fresh_var(width);
            }
            // The trial models an arbitrary iteration, whose packet may
            // already hold bytes written by earlier iterations (inference
            // only runs for packet-writing bodies); havoc the packet so
            // constant-offset reads cannot smuggle in pre-loop values.
            let clobber = self.fresh_var(8);
            trial.packet.clobber(clobber);
            for (local, lo) in &hypotheses {
                let width = self.program.locals[local.0 as usize].width;
                trial.assume(term::binary(
                    BinOp::ULe,
                    term::constant(BitVec::new(width, *lo)),
                    trial.locals[local.0 as usize].clone(),
                ));
            }
            let segments_mark = self.segments.len();
            // A sacrificial span frame absorbs the trial's packet stores:
            // spans computed from havocked validation state must not widen
            // the enclosing real loop's frame.
            let spans_mark = self.store_spans.len();
            self.store_spans.push(StoreSpan::None);
            let mut fallthrough = Vec::new();
            let run = match self.eval(&mut trial, cond) {
                Ok(Some(c)) if c.value.is_false() => Ok(()),
                Ok(Some(c)) => {
                    trial.assume(c.value);
                    self.exec_block_collect(trial, body, &mut fallthrough)
                }
                Ok(None) => Ok(()),
                Err(e) => Err(e),
            };
            // Validation only: nothing it produced is a real segment, a real
            // branch expansion, or a real store span.
            self.segments.truncate(segments_mark);
            self.branches = branches_mark;
            self.store_spans.truncate(spans_mark);
            if run.is_err() {
                // Validation ran out of budget: abandon inference rather
                // than fail the real exploration over throwaway work.
                return Ok(Vec::new());
            }
            let surviving: Vec<(LocalId, u64)> = hypotheses
                .iter()
                .filter(|(local, lo)| {
                    fallthrough.iter().all(|s| {
                        let end = &s.locals[local.0 as usize];
                        crate::solver::term_bounds(&s.constraint, end).lo >= *lo
                    })
                })
                .copied()
                .collect();
            if surviving.len() == hypotheses.len() {
                break;
            }
            hypotheses = surviving;
        }
        Ok(hypotheses)
    }

    /// Summarise a loop: surface every violating/terminal body path once
    /// (over havocked loop state), then mutate `state` into the post-loop
    /// over-approximation. Returns false when the loop provably never exits
    /// normally (not the case for any element in the library).
    fn decompose_loop(
        &mut self,
        state: &mut PathState,
        max_iters: u32,
        cond: &Expr,
        body: &[Stmt],
    ) -> Result<bool, ExploreError> {
        self.charge_branch()?;
        // Locals assigned anywhere in the body are loop-carried: havoc them.
        let mut carried = BTreeSet::new();
        collect_assigned_locals(body, &mut carried);

        // Invariant inference pays off exactly when the body writes the
        // packet (the invariants bound the store offsets); skip it otherwise.
        // A resizing body is excluded: the validation trial havocs packet
        // bytes but not the length/base shift, so a length-dependent bound
        // could validate against the entry-time length and be unsound — and
        // resizing bodies whole-packet-clobber anyway, so a span bound would
        // buy nothing.
        let writes_packet = body_writes_packet(body);
        let invariants = if writes_packet && !body_resizes_packet(body) {
            self.infer_loop_invariants(state, &carried, cond, body)?
        } else {
            Vec::new()
        };
        let assume_invariants = |engine: &Engine<'_>, s: &mut PathState| {
            for (local, lo) in &invariants {
                let width = engine.program.locals[local.0 as usize].width;
                s.assume(term::binary(
                    BinOp::ULe,
                    term::constant(BitVec::new(width, *lo)),
                    s.locals[local.0 as usize].clone(),
                ));
            }
        };

        // --- one symbolic iteration over havocked state -------------------
        let mut iteration = state.clone();
        iteration.approximate = true;
        for local in &carried {
            let width = self.program.locals[local.0 as usize].width;
            iteration.locals[local.0 as usize] = self.fresh_var(width);
        }
        // This iteration stands for *every* iteration, including ones whose
        // packet already holds bytes written by earlier iterations. Havoc
        // the packet for packet-writing bodies so a constant-offset read
        // cannot observe a stale pre-loop byte and (via `term_bounds`)
        // under-approximate the store span below. Symbolic-offset loads
        // already read as fresh variables, so the presets lose nothing.
        if writes_packet {
            let clobber = self.fresh_var(8);
            iteration.packet.clobber(clobber);
        }
        assume_invariants(self, &mut iteration);
        let c_entry = match self.eval(&mut iteration, cond)? {
            Some(e) => e,
            None => return Ok(true),
        };
        if c_entry.value.is_false() {
            // The loop can never be entered; nothing carried changes.
            state.instructions += 1;
            return Ok(true);
        }
        iteration.assume(c_entry.value.clone());
        let mut fallthrough_states = Vec::new();
        let before = self.segments.len();
        // Every store the body executes merges the range it may touch into
        // this frame; the generic havocked iteration covers all iterations,
        // so the merged span bounds what the whole loop can rewrite. The
        // frame is popped before any error propagates — a caller that
        // recovers from the error (invariant validation does) must find the
        // stack balanced.
        self.store_spans.push(StoreSpan::None);
        let body_result = self.exec_block_collect(iteration, body, &mut fallthrough_states);
        let body_span = self.store_spans.pop().unwrap_or(StoreSpan::Unbounded);
        body_result?;
        // A nested decomposed loop must also surface its stores to the
        // enclosing frame.
        if let Some(outer) = self.store_spans.last_mut() {
            outer.merge(body_span);
        }
        // Terminal body paths (emit/drop/crash) have been surfaced as
        // segments by the collector; mark them approximate.
        for seg in &mut self.segments[before..] {
            seg.approximate = true;
        }
        // Instruction accounting: one iteration costs at most the largest
        // fall-through/terminal body cost; the loop runs at most max_iters
        // times.
        let base_cost = state.instructions;
        let max_body_cost = fallthrough_states
            .iter()
            .map(|s| s.instructions)
            .chain(self.segments[before..].iter().map(|s| s.instructions))
            .max()
            .unwrap_or(base_cost);
        // The +2 keeps the bound safely above the exact unrolled accounting
        // (which charges one extra instruction per loop re-entry and one
        // final condition evaluation).
        let per_iteration = max_body_cost.saturating_sub(base_cost) + 2;

        // --- post-loop state ----------------------------------------------
        state.approximate = true;
        state.instructions = base_cost + per_iteration * max_iters as u64 + 1;
        for local in &carried {
            let width = self.program.locals[local.0 as usize].width;
            state.locals[local.0 as usize] = self.fresh_var(width);
        }
        assume_invariants(self, state);
        // If the body can write the packet, the touched range is unknown
        // here — but only that range. A body that resizes the packet shifts
        // every offset, so no range is trustworthy in that case.
        if body_resizes_packet(body) {
            let clobber = self.fresh_var(8);
            state.packet.clobber(clobber);
        } else {
            match body_span {
                // The generic iteration executed no store, so no concrete
                // iteration stores either (the havocked exploration covers
                // every iteration's paths).
                StoreSpan::None => {}
                StoreSpan::Bounded(lo, hi) => state.packet.clobber_program_range(lo, hi),
                StoreSpan::Unbounded => {
                    let clobber = self.fresh_var(8);
                    state.packet.clobber(clobber);
                }
            }
        }
        // Data-structure writes performed by the body are recorded
        // conservatively (key and value havocked) so the stateful-element
        // analysis knows the tables may have changed.
        let mut ds_written = BTreeSet::new();
        collect_ds_writes(body, &mut ds_written);
        for ds in ds_written {
            let decl = &self.program.data_structures[ds.0 as usize];
            let key = self.fresh_var(decl.key_width);
            let value = self.fresh_var(decl.value_width);
            state.ds_writes.push(DsWriteRecord { ds, key, value });
        }
        // On exit the condition is false for the (havocked) exit state.
        let c_exit = match self.eval(state, cond)? {
            Some(e) => e,
            None => return Ok(true),
        };
        if !c_exit.value.is_true() {
            state.assume(term::negate(c_exit.value));
        }
        Ok(true)
    }

    /// Evaluate an expression symbolically. Crash possibilities inside the
    /// expression (out-of-bounds loads, division by zero, array key range)
    /// fork crash segments and constrain the surviving path. Returns `None`
    /// when evaluation cannot survive (the surviving branch is infeasible by
    /// construction).
    fn eval(
        &mut self,
        state: &mut PathState,
        expr: &Expr,
    ) -> Result<Option<Evaluated>, ExploreError> {
        state.instructions += 1;
        let value = match expr {
            Expr::Const(v) => term::constant(*v),
            Expr::Local(LocalId(i)) => state.locals[*i as usize].clone(),
            Expr::PacketLen => state.packet.len_term(),
            Expr::PacketLoad {
                offset,
                width_bytes,
            } => {
                let off = match self.eval(state, offset)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                let oob = state.packet.load_oob_condition(&off, *width_bytes);
                self.fork_crash(state, oob, CrashKind::PacketOutOfBounds)?;
                let mut fresh = || {
                    let id = VarId(self.next_var);
                    self.next_var += 1;
                    Arc::new(Term::Var { id, width: 8 })
                };
                state.packet.load(&off, *width_bytes, &mut fresh)
            }
            Expr::DsRead { ds, key } => {
                let key = match self.eval(state, key)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                let decl = &self.program.data_structures[ds.0 as usize];
                if let DsKind::Array { size } = decl.kind {
                    let oob = term::binary(
                        BinOp::UGe,
                        key.clone(),
                        term::constant(BitVec::new(decl.key_width, size)),
                    );
                    self.fork_crash(state, oob, CrashKind::DsKeyOutOfRange(decl.name.clone()))?;
                }
                let seq = self.next_ds_seq;
                self.next_ds_seq += 1;
                let value = Arc::new(Term::DsRead {
                    ds: *ds,
                    key: key.clone(),
                    seq,
                    width: decl.value_width,
                });
                state.ds_reads.push(DsReadRecord {
                    ds: *ds,
                    key,
                    seq,
                    value: value.clone(),
                });
                value
            }
            Expr::Unary { op, arg } => {
                let a = match self.eval(state, arg)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                term::unary(*op, a)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = match self.eval(state, lhs)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                let b = match self.eval(state, rhs)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                if matches!(op, BinOp::UDiv | BinOp::URem) {
                    let zero = term::constant(BitVec::zero(b.width()));
                    let div_by_zero = term::binary(BinOp::Eq, b.clone(), zero);
                    self.fork_crash(state, div_by_zero, CrashKind::DivisionByZero)?;
                }
                term::binary(*op, a, b)
            }
            Expr::Select {
                cond,
                then_e,
                else_e,
            } => {
                let c = match self.eval(state, cond)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                // Crash possibilities inside an arm only matter when that arm
                // is the one the concrete semantics would take, so each arm is
                // evaluated under the corresponding guard.
                self.eval_guards.push(c.clone());
                let t = self.eval(state, then_e)?;
                self.eval_guards.pop();
                let t = match t {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                self.eval_guards.push(term::negate(c.clone()));
                let e = self.eval(state, else_e)?;
                self.eval_guards.pop();
                let e = match e {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                term::select(c, t, e)
            }
            Expr::Cast { kind, width, arg } => {
                let a = match self.eval(state, arg)? {
                    Some(e) => e.value,
                    None => return Ok(None),
                };
                term::cast(*kind, *width, a)
            }
        };
        Ok(Some(Evaluated { value }))
    }
}

fn collect_assigned_locals(stmts: &[Stmt], out: &mut BTreeSet<LocalId>) {
    for s in stmts {
        match s {
            Stmt::Assign { local, .. } => {
                out.insert(*local);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned_locals(then_body, out);
                collect_assigned_locals(else_body, out);
            }
            Stmt::Loop { body, .. } => collect_assigned_locals(body, out),
            _ => {}
        }
    }
}

fn collect_ds_writes(stmts: &[Stmt], out: &mut BTreeSet<DsId>) {
    for s in stmts {
        match s {
            Stmt::DsWrite { ds, .. } => {
                out.insert(*ds);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_ds_writes(then_body, out);
                collect_ds_writes(else_body, out);
            }
            Stmt::Loop { body, .. } => collect_ds_writes(body, out),
            _ => {}
        }
    }
}

fn body_writes_packet(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::PacketStore { .. } | Stmt::StripFront { .. } | Stmt::PushFront { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_writes_packet(then_body) || body_writes_packet(else_body),
        Stmt::Loop { body, .. } => body_writes_packet(body),
        _ => false,
    })
}

/// True if the statements can change the packet's length or base offset, in
/// which case per-iteration byte ranges are meaningless after decomposition.
fn body_resizes_packet(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::StripFront { .. } | Stmt::PushFront { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_resizes_packet(then_body) || body_resizes_packet(else_body),
        Stmt::Loop { body, .. } => body_resizes_packet(body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use dataplane_ir::builder::{Block, ProgramBuilder};
    use dataplane_ir::expr::dsl::*;

    /// The toy program of Figure 1: three feasible paths, one of which
    /// crashes.
    fn figure1_program() -> Program {
        let mut pb = ProgramBuilder::new("Figure1", 1);
        let input = pb.local("in", 32);
        let out = pb.local("out", 32);
        let mut b = Block::new();
        b.assign(input, pkt(0, 4));
        b.assert(sle(c(32, 0), l(input)), "in >= 0");
        b.if_else(
            slt(l(input), c(32, 10)),
            Block::with(|bb| {
                bb.assign(out, c(32, 10));
            }),
            Block::with(|bb| {
                bb.assign(out, l(input));
            }),
        );
        b.pkt_store(0, 4, l(out));
        b.emit(0);
        pb.finish(b).unwrap()
    }

    #[test]
    fn figure1_has_three_interesting_segments() {
        let result = explore(&figure1_program(), &EngineConfig::default()).unwrap();
        // Segments: the 4-byte load can be out of bounds (crash), the assert
        // can fail (crash), and the two if arms emit.
        let crashes = result.crash_segments();
        let emits: Vec<_> = result
            .segments
            .iter()
            .filter(|s| s.outcome == SegmentOutcome::Emitted(0))
            .collect();
        assert_eq!(emits.len(), 2, "two emitting paths");
        assert!(
            crashes.iter().any(|s| matches!(
                s.outcome,
                SegmentOutcome::Crashed(CrashKind::AssertionFailed(_))
            )),
            "assertion-failure segment present"
        );
        assert!(
            crashes.iter().any(|s| matches!(
                s.outcome,
                SegmentOutcome::Crashed(CrashKind::PacketOutOfBounds)
            )),
            "out-of-bounds segment present"
        );
        assert!(result.max_instructions() > 0);
        assert!(result.branches_expanded >= 2);
    }

    #[test]
    fn figure1_crash_segment_yields_negative_witness() {
        // The assertion-failure segment must be satisfiable, and every model
        // of it is a packet whose first 32-bit word is negative.
        let result = explore(&figure1_program(), &EngineConfig::default()).unwrap();
        let solver = Solver::new();
        let crash = result
            .segments
            .iter()
            .find(|s| {
                matches!(
                    s.outcome,
                    SegmentOutcome::Crashed(CrashKind::AssertionFailed(_))
                )
            })
            .unwrap();
        match solver.check(&crash.constraint) {
            crate::solver::SolverResult::Sat(model) => {
                assert!(model.packet.len() >= 4);
                assert!(model.packet[0] & 0x80 != 0, "sign bit must be set");
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn emit_segments_of_figure1_are_feasible_and_bounded() {
        let result = explore(&figure1_program(), &EngineConfig::default()).unwrap();
        let solver = Solver::new();
        for seg in result.segments.iter().filter(|s| !s.outcome.is_crash()) {
            assert!(
                solver.check(&seg.constraint).is_sat(),
                "emitting segment must be feasible"
            );
            assert!(seg.instructions < 50);
            assert!(!seg.approximate);
        }
    }

    #[test]
    fn packet_writes_are_visible_in_segments() {
        let mut pb = ProgramBuilder::new("W", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, pkt(0, 1));
        b.pkt_store(1, 1, add(l(x), c(8, 1)));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        let emit = result
            .segments
            .iter()
            .find(|s| s.outcome == SegmentOutcome::Emitted(0))
            .unwrap();
        let out_byte = emit.packet.out_byte(1);
        // The output byte 1 is pkt[0] + 1.
        let s = out_byte.to_string();
        assert!(s.contains("pkt[0]"), "got {s}");
        assert!(s.contains('+'), "got {s}");
    }

    #[test]
    fn strip_and_push_shift_output_bytes() {
        let pb = ProgramBuilder::new("S", 1);
        let mut b = Block::new();
        b.strip_front(2);
        b.push_front(1);
        b.pkt_store(0, 1, c(8, 0xaa));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        let emit = result
            .segments
            .iter()
            .find(|s| s.outcome == SegmentOutcome::Emitted(0))
            .unwrap();
        // Output byte 0 is the constant header byte; byte 1 is original byte 2.
        assert_eq!(
            emit.packet.out_byte(0).as_const().unwrap(),
            BitVec::u8(0xaa)
        );
        assert_eq!(emit.packet.out_byte(1).to_string(), "pkt[2]");
        // And a strip-underflow crash segment exists.
        assert!(result.segments.iter().any(|s| matches!(
            s.outcome,
            SegmentOutcome::Crashed(CrashKind::StripUnderflow)
        )));
    }

    #[test]
    fn division_by_zero_creates_crash_segment() {
        let mut pb = ProgramBuilder::new("D", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, udiv(c(8, 255), pkt(0, 1)));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        let crash = result
            .segments
            .iter()
            .find(|s| {
                matches!(
                    s.outcome,
                    SegmentOutcome::Crashed(CrashKind::DivisionByZero)
                )
            })
            .expect("division crash segment");
        // Its witness has packet byte 0 equal to zero.
        let solver = Solver::new();
        match solver.check(&crash.constraint) {
            crate::solver::SolverResult::Sat(m) => {
                assert_eq!(m.packet.first().copied().unwrap_or(0), 0)
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn ds_array_access_creates_bounds_segment_and_read_record() {
        let mut pb = ProgramBuilder::new("A", 1);
        let t = pb.private_array("table", 16, 16, 32, 0);
        let x = pb.local("x", 32);
        let mut b = Block::new();
        b.assign(x, ds_read(t, pkt(0, 2)));
        b.ds_write(t, c(16, 3), l(x));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        assert!(result
            .segments
            .iter()
            .any(|s| matches!(&s.outcome, SegmentOutcome::Crashed(CrashKind::DsKeyOutOfRange(n)) if n == "table")));
        let emit = result
            .segments
            .iter()
            .find(|s| s.outcome == SegmentOutcome::Emitted(0))
            .unwrap();
        assert_eq!(emit.ds_reads.len(), 1);
        assert_eq!(emit.ds_writes.len(), 1);
        assert_eq!(emit.ds_reads[0].ds, t);
    }

    #[test]
    fn cancelled_exploration_aborts_with_cancelled() {
        // A branchy program: exploration expands branches, which is where
        // the token is polled.
        let mut pb = ProgramBuilder::new("C", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        for i in 0..4 {
            b.if_else(
                eq(pkt(i, 1), c(8, 0)),
                Block::with(|t| {
                    t.assign(x, c(8, 1));
                }),
                Block::with(|e| {
                    e.assign(x, c(8, 2));
                }),
            );
        }
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let token = crate::CancelToken::new();
        token.cancel();
        match explore_with_cancel(&prog, &EngineConfig::default(), &token) {
            Err(ExploreError::Cancelled) => {}
            other => panic!(
                "expected Cancelled, got {:?}",
                other.map(|e| e.segments.len())
            ),
        }
        // An un-cancelled token changes nothing.
        let live = crate::CancelToken::new();
        let a = explore(&prog, &EngineConfig::default()).unwrap();
        let b = explore_with_cancel(&prog, &EngineConfig::default(), &live).unwrap();
        assert_eq!(a.segments.len(), b.segments.len());
    }

    #[test]
    fn bounded_loop_unrolls_to_expected_paths() {
        // A loop over a 2-bit counter derived from the packet: it can iterate
        // 0..=3 times.
        let mut pb = ProgramBuilder::new("L", 1);
        let n = pb.local("n", 8);
        let i = pb.local("i", 8);
        let mut b = Block::new();
        b.assign(n, and(pkt(0, 1), c(8, 0x03)));
        b.loop_bounded(
            4,
            ult(l(i), l(n)),
            Block::with(|lb| {
                lb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let unrolled = explore(
            &prog,
            &EngineConfig {
                loop_mode: LoopMode::Unroll,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        // The engine enumerates paths without pruning; keep only the
        // feasible emitting ones (the verifier does the same with the
        // solver).
        let solver = Solver::new();
        let feasible_emits: Vec<&Segment> = unrolled
            .segments
            .iter()
            .filter(|s| s.outcome == SegmentOutcome::Emitted(0))
            .filter(|s| !solver.check(&s.constraint).is_unsat())
            .collect();
        // One feasible emitting path per iteration count 0..=3.
        assert_eq!(feasible_emits.len(), 4);
        // Instruction counts grow with the iteration count.
        let mut counts: Vec<u64> = feasible_emits.iter().map(|s| s.instructions).collect();
        counts.sort_unstable();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn decomposed_loop_keeps_segment_count_small() {
        // The same loop summarised: a single emitting segment, marked
        // approximate, with an instruction upper bound at least as large as
        // the exact maximum.
        let mut pb = ProgramBuilder::new("L", 1);
        let n = pb.local("n", 8);
        let i = pb.local("i", 8);
        let mut b = Block::new();
        b.assign(n, and(pkt(0, 1), c(8, 0x03)));
        b.loop_bounded(
            4,
            ult(l(i), l(n)),
            Block::with(|lb| {
                lb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let unrolled = explore(
            &prog,
            &EngineConfig {
                loop_mode: LoopMode::Unroll,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let decomposed = explore(&prog, &EngineConfig::decomposed()).unwrap();
        assert!(decomposed.segments.len() < unrolled.segments.len());
        let emit = decomposed
            .segments
            .iter()
            .find(|s| s.outcome == SegmentOutcome::Emitted(0))
            .unwrap();
        assert!(emit.approximate);
        assert!(decomposed.max_instructions() >= unrolled.max_instructions());
    }

    #[test]
    fn crash_inside_loop_is_surfaced_in_both_modes() {
        // The loop body divides by a packet byte; byte == 0 crashes.
        let mut pb = ProgramBuilder::new("LC", 1);
        let i = pb.local("i", 8);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.loop_bounded(
            3,
            ult(l(i), c(8, 3)),
            Block::with(|lb| {
                lb.assign(x, udiv(c(8, 9), pkt_at(zext(l(i), 32), 1)));
                lb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        for mode in [LoopMode::Unroll, LoopMode::Decompose] {
            let result = explore(
                &prog,
                &EngineConfig {
                    loop_mode: mode,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            assert!(
                result.segments.iter().any(|s| matches!(
                    s.outcome,
                    SegmentOutcome::Crashed(CrashKind::DivisionByZero)
                )),
                "mode {mode:?} must surface the division crash"
            );
        }
    }

    #[test]
    fn decomposed_span_covers_offsets_read_from_loop_written_bytes() {
        // Iteration 1 rewrites the cursor byte 10 (pre-loop value 3) to 100;
        // iteration 2 then stores at the offset *read from byte 10*, i.e. at
        // byte 100. The decomposed summary must not bound the loop's stores
        // using the stale pre-loop cursor value: byte 100 really can change,
        // so the post-loop assert on it must keep a feasible crash path.
        let mut pb = ProgramBuilder::new("SelfRead", 1);
        let i = pb.local("i", 8);
        let off = pb.local("off", 32);
        let mut b = Block::new();
        b.pkt_store(10, 1, c(8, 3));
        b.pkt_store(100, 1, c(8, 7));
        b.loop_bounded(
            2,
            ult(l(i), c(8, 2)),
            Block::with(|lb| {
                lb.assign(off, zext(pkt(10, 1), 32));
                lb.pkt_store_at(l(off), 1, c(8, 55));
                lb.pkt_store(10, 1, c(8, 100));
                lb.assign(i, add(l(i), c(8, 1)));
            }),
        );
        b.assert(eq(pkt(100, 1), c(8, 7)), "byte 100 kept its pre-loop value");
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let decomposed = explore(&prog, &EngineConfig::decomposed()).unwrap();
        let solver = Solver::new();
        let assert_can_fail = decomposed.segments.iter().any(|s| {
            matches!(
                &s.outcome,
                SegmentOutcome::Crashed(CrashKind::AssertionFailed(m)) if m.contains("byte 100")
            ) && !solver.check(&s.constraint).is_unsat()
        });
        assert!(
            assert_can_fail,
            "the loop can write byte 100; its assert must keep a feasible crash path"
        );
    }

    #[test]
    fn budgets_are_enforced() {
        // A program with many sequential branches exceeds a tiny budget.
        let mut pb = ProgramBuilder::new("B", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        for i in 0..20 {
            b.if_then(
                eq(pkt(i, 1), c(8, 1)),
                Block::with(|bb| {
                    bb.assign(x, c(8, 1));
                }),
            );
        }
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let err = explore(
            &prog,
            &EngineConfig {
                max_segments: 10,
                max_branches: 1_000_000,
                loop_mode: LoopMode::Unroll,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::SegmentBudgetExceeded { .. }));
        let err = explore(
            &prog,
            &EngineConfig {
                max_segments: 1_000_000,
                max_branches: 5,
                loop_mode: LoopMode::Unroll,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::BranchBudgetExceeded { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn abort_and_unconditional_crash() {
        let pb = ProgramBuilder::new("X", 1);
        let mut b = Block::new();
        b.abort("unreachable");
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        assert_eq!(result.segments.len(), 1);
        assert!(matches!(
            result.segments[0].outcome,
            SegmentOutcome::Crashed(CrashKind::Aborted(_))
        ));
        assert_eq!(result.segments[0].constraint.len(), 0);
    }

    #[test]
    fn fallthrough_program_drops() {
        let mut pb = ProgramBuilder::new("F", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, c(8, 1));
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        assert_eq!(result.segments.len(), 1);
        assert_eq!(result.segments[0].outcome, SegmentOutcome::Dropped);
    }

    #[test]
    fn crash_in_untaken_select_arm_is_guarded() {
        // x := (pkt.len >= 2) ? pkt[1] : 0
        // The load of pkt[1] can only be out of bounds when the guard is
        // false, i.e. never on the path the concrete semantics takes, so the
        // crash segment must be infeasible.
        let mut pb = ProgramBuilder::new("G", 1);
        let x = pb.local("x", 8);
        let mut b = Block::new();
        b.assign(x, select(uge(pkt_len(), c(32, 2)), pkt(1, 1), c(8, 0)));
        b.emit(0);
        let prog = pb.finish(b).unwrap();
        let result = explore(&prog, &EngineConfig::default()).unwrap();
        let solver = Solver::new();
        for seg in result.crash_segments() {
            assert!(
                solver.check(&seg.constraint).is_unsat(),
                "guarded select crash must be infeasible: {:?}",
                seg.constraint
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn crash_kind_display() {
        for k in [
            CrashKind::AssertionFailed("m".into()),
            CrashKind::Aborted("m".into()),
            CrashKind::PacketOutOfBounds,
            CrashKind::DsKeyOutOfRange("t".into()),
            CrashKind::DivisionByZero,
            CrashKind::LoopBoundExceeded,
            CrashKind::StripUnderflow,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}

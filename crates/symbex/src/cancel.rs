//! Cooperative cancellation for long-running symbolic work.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that exploration and solver
//! loops poll between iterations. Tokens form a tree: cancelling a token
//! cancels every token derived from it via [`CancelToken::child`], which is
//! what lets a Step-2 walk prune a prefix and have all speculative work on
//! that prefix's descendants stop — however deep the in-flight subtree goes —
//! without tracking the individual jobs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Node {
    cancelled: AtomicBool,
    parent: Option<Arc<Node>>,
}

/// A handle in a cancellation tree. Cloning shares the same node; `child`
/// derives a new node that additionally observes every ancestor.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    node: Arc<Node>,
}

impl CancelToken {
    /// A fresh root token (not cancelled).
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that is cancelled when either it or `self` (or any ancestor
    /// of `self`) is cancelled.
    pub fn child(&self) -> Self {
        CancelToken {
            node: Arc::new(Node {
                cancelled: AtomicBool::new(false),
                parent: Some(self.node.clone()),
            }),
        }
    }

    /// Cancel this token and, transitively, every token derived from it.
    pub fn cancel(&self) {
        self.node.cancelled.store(true, Ordering::Release);
    }

    /// True if this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        let mut node = Some(&self.node);
        while let Some(n) = node {
            if n.cancelled.load(Ordering::Acquire) {
                return true;
            }
            node = n.parent.as_ref();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancellation_propagates_to_descendants_only() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let aa = a.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(aa.is_cancelled(), "grandchild must observe the ancestor");
        assert!(!b.is_cancelled(), "siblings are unaffected");
        assert!(!root.is_cancelled(), "cancellation never flows upward");
        root.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn clones_share_cancellation() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }
}

//! Symbolic terms: the expression language of the symbolic engine.
//!
//! A [`Term`] is a bit-vector expression over symbolic leaves — packet bytes,
//! the packet length, data-structure reads, and fresh variables — combined
//! with the same operators as the element IR. Terms are immutable and shared
//! through [`TermRef`] (`Arc`); constructors constant-fold and apply a small
//! set of algebraic simplifications so that fully concrete computations
//! collapse back to constants (which is what keeps loop counters concrete
//! during exploration).

use dataplane_ir::interp::{eval_binop, eval_unop};
use dataplane_ir::{BinOp, BitVec, CastKind, DsId, UnOp};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Shared reference to a term.
pub type TermRef = Arc<Term>;

/// Identifier of a fresh symbolic variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A symbolic bit-vector expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A concrete constant.
    Const(BitVec),
    /// The original content of packet byte `index` (as the element received
    /// the packet). 8 bits wide. Negative indexes refer to bytes created by
    /// `PushFront` that were never written (they read as zero and are folded
    /// away before a `PacketByte` with a negative index is ever built).
    PacketByte(i64),
    /// The length, in bytes, of the packet as the element received it.
    /// 32 bits wide.
    PacketLen,
    /// A packet byte at a symbolic (data-dependent) index. Reads through this
    /// constructor are over-approximated by the engine (see
    /// `SymPacket::load`), so it mostly appears inside crash conditions.
    PacketByteAt {
        /// Absolute byte index as a 32-bit term.
        index: TermRef,
    },
    /// The value returned by the `seq`-th read of data structure `ds` under
    /// `key`. Following the paper's data-structure abstraction, the value is
    /// unconstrained (any value of the declared width may come back).
    DsRead {
        /// Which data structure.
        ds: DsId,
        /// The key that was read.
        key: TermRef,
        /// Read sequence number within the segment (distinguishes successive
        /// reads of the same key, which the abstraction allows to differ).
        seq: u32,
        /// Value width in bits.
        width: u8,
    },
    /// A fresh unconstrained variable of the given width (used for havocked
    /// loop state and clobbered packet regions).
    Var {
        /// Variable identity.
        id: VarId,
        /// Width in bits.
        width: u8,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: TermRef,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: TermRef,
        /// Right operand.
        b: TermRef,
    },
    /// A conditional expression.
    Select {
        /// 1-bit condition.
        c: TermRef,
        /// Value when the condition is true.
        t: TermRef,
        /// Value when the condition is false.
        e: TermRef,
    },
    /// A width-changing cast.
    Cast {
        /// Cast kind.
        kind: CastKind,
        /// Target width.
        width: u8,
        /// Operand.
        a: TermRef,
    },
}

impl Term {
    /// The width of this term in bits.
    pub fn width(&self) -> u8 {
        match self {
            Term::Const(v) => v.width(),
            Term::PacketByte(_) | Term::PacketByteAt { .. } => 8,
            Term::PacketLen => 32,
            Term::DsRead { width, .. } | Term::Var { width, .. } => *width,
            Term::Unary { a, .. } => a.width(),
            Term::Binary { op, a, .. } => {
                if op.is_comparison() || op.is_boolean() {
                    1
                } else {
                    a.width()
                }
            }
            Term::Select { t, .. } => t.width(),
            Term::Cast { width, .. } => *width,
        }
    }

    /// The constant value, if this term is a constant.
    pub fn as_const(&self) -> Option<BitVec> {
        match self {
            Term::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// True if this term is the constant `true` (1-bit, value 1).
    pub fn is_true(&self) -> bool {
        matches!(self, Term::Const(v) if v.width() == 1 && v.is_true())
    }

    /// True if this term is the constant `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Term::Const(v) if v.width() == 1 && v.is_zero())
    }

    /// Collect the leaf terms (packet bytes, packet length, data-structure
    /// reads, variables) appearing in this term.
    pub fn collect_leaves(self: &Arc<Self>, out: &mut Vec<TermRef>) {
        match self.as_ref() {
            Term::Const(_) => {}
            Term::PacketByte(_)
            | Term::PacketLen
            | Term::Var { .. }
            | Term::DsRead { .. }
            | Term::PacketByteAt { .. } => out.push(self.clone()),
            Term::Unary { a, .. } | Term::Cast { a, .. } => a.collect_leaves(out),
            Term::Binary { a, b, .. } => {
                a.collect_leaves(out);
                b.collect_leaves(out);
            }
            Term::Select { c, t, e } => {
                c.collect_leaves(out);
                t.collect_leaves(out);
                e.collect_leaves(out);
            }
        }
    }

    /// Number of nodes in the term (a size measure used by engine statistics
    /// and tests).
    pub fn node_count(&self) -> usize {
        match self {
            Term::Const(_) | Term::PacketByte(_) | Term::PacketLen | Term::Var { .. } => 1,
            Term::PacketByteAt { index } => 1 + index.node_count(),
            Term::DsRead { key, .. } => 1 + key.node_count(),
            Term::Unary { a, .. } | Term::Cast { a, .. } => 1 + a.node_count(),
            Term::Binary { a, b, .. } => 1 + a.node_count() + b.node_count(),
            Term::Select { c, t, e } => 1 + c.node_count() + t.node_count() + e.node_count(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::PacketByte(i) => write!(f, "pkt[{i}]"),
            Term::PacketLen => write!(f, "pkt.len"),
            Term::PacketByteAt { index } => write!(f, "pkt[{index}]"),
            Term::DsRead { ds, key, seq, .. } => write!(f, "ds{}[{}]#{}", ds.0, key, seq),
            Term::Var { id, width } => write!(f, "v{}:u{}", id.0, width),
            Term::Unary { op, a } => write!(f, "{op:?}({a})"),
            Term::Binary { op, a, b } => {
                write!(f, "({a} {} {b})", dataplane_ir::pretty::binop_symbol(*op))
            }
            Term::Select { c, t, e } => write!(f, "({c} ? {t} : {e})"),
            Term::Cast { kind, width, a } => write!(f, "{kind:?}{width}({a})"),
        }
    }
}

/// Build a constant term.
pub fn constant(v: BitVec) -> TermRef {
    Arc::new(Term::Const(v))
}

/// Build the 1-bit constant `true`.
pub fn tt() -> TermRef {
    constant(BitVec::bool(true))
}

/// Build the 1-bit constant `false`.
pub fn ff() -> TermRef {
    constant(BitVec::bool(false))
}

/// Build a unary operation with constant folding.
pub fn unary(op: UnOp, a: TermRef) -> TermRef {
    if let Some(v) = a.as_const() {
        return constant(eval_unop(op, v));
    }
    // !!x -> x for 1-bit operands.
    if op == UnOp::LogicalNot {
        if let Term::Unary {
            op: UnOp::LogicalNot,
            a: inner,
        } = a.as_ref()
        {
            return inner.clone();
        }
    }
    Arc::new(Term::Unary { op, a })
}

/// Build a binary operation with constant folding and light algebraic
/// simplification. Division by a constant zero is *not* folded (the engine
/// turns that situation into a crash branch before building the term).
pub fn binary(op: BinOp, a: TermRef, b: TermRef) -> TermRef {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        if let Some(v) = eval_binop(op, x, y) {
            return constant(v);
        }
    }
    // Algebraic identities that keep concrete machinery concrete.
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => {
            if a.as_const().map(|v| v.is_zero()).unwrap_or(false) {
                return b;
            }
            if b.as_const().map(|v| v.is_zero()).unwrap_or(false) {
                return a;
            }
        }
        BinOp::Sub | BinOp::Shl | BinOp::LShr | BinOp::AShr
            if b.as_const().map(|v| v.is_zero()).unwrap_or(false) =>
        {
            return a;
        }
        BinOp::Mul => {
            if let Some(v) = a.as_const() {
                if v.is_zero() {
                    return a;
                }
                if v.as_u64() == 1 {
                    return b;
                }
            }
            if let Some(v) = b.as_const() {
                if v.is_zero() {
                    return b;
                }
                if v.as_u64() == 1 {
                    return a;
                }
            }
        }
        BinOp::And => {
            if a.as_const().map(|v| v.is_zero()).unwrap_or(false) {
                return a;
            }
            if b.as_const().map(|v| v.is_zero()).unwrap_or(false) {
                return b;
            }
        }
        BinOp::BoolAnd => {
            if a.is_true() {
                return b;
            }
            if b.is_true() {
                return a;
            }
            if a.is_false() || b.is_false() {
                return ff();
            }
        }
        BinOp::BoolOr => {
            if a.is_false() {
                return b;
            }
            if b.is_false() {
                return a;
            }
            if a.is_true() || b.is_true() {
                return tt();
            }
        }
        BinOp::Eq if a == b => {
            return tt();
        }
        BinOp::Ne if a == b => {
            return ff();
        }
        _ => {}
    }
    if (op == BinOp::ULe || op == BinOp::SLe) && a == b {
        return tt();
    }
    if (op == BinOp::ULt || op == BinOp::SLt) && a == b {
        return ff();
    }
    let node = Arc::new(Term::Binary { op, a, b });
    // Recognise a big-endian byte-reassembly of a previously stored value:
    // `(((zext(trunc(x >> 24)) << 8 | zext(trunc(x >> 16))) << 8 | ...) ...`
    // collapses back to `x`. This keeps "store a word, read the word back
    // downstream" exact across element composition (e.g. Figure 2 of the
    // paper, where E2 re-reads the field E1 just wrote).
    if op == BinOp::Or {
        if let Some(source) = match_byte_reassembly(&node) {
            return source;
        }
    }
    node
}

/// If `t` is a complete big-endian reassembly of all bytes of some term `x`
/// (of the same width), return `x`.
fn match_byte_reassembly(t: &TermRef) -> Option<TermRef> {
    // Returns (source, lowest shift already included).
    fn walk(t: &TermRef, width: u8) -> Option<(TermRef, u64)> {
        // A single byte slice: zext_width(trunc8(source >> shift)).
        fn byte_slice(t: &TermRef, width: u8) -> Option<(TermRef, u64)> {
            let Term::Cast {
                kind: CastKind::ZExt,
                width: w,
                a: inner,
            } = t.as_ref()
            else {
                return None;
            };
            if *w != width {
                return None;
            }
            let Term::Cast {
                kind: CastKind::Trunc,
                width: 8,
                a: arg,
            } = inner.as_ref()
            else {
                return None;
            };
            match arg.as_ref() {
                Term::Binary {
                    op: BinOp::LShr,
                    a: source,
                    b: shift,
                } => {
                    let shift = shift.as_const()?.as_u64();
                    Some((source.clone(), shift))
                }
                _ => Some((arg.clone(), 0)),
            }
        }
        if let Some((src, shift)) = byte_slice(t, width) {
            // The first (deepest) byte must be the most-significant one.
            if shift == width as u64 - 8 {
                return Some((src, shift));
            }
            return None;
        }
        let Term::Binary {
            op: BinOp::Or,
            a: left,
            b: right,
        } = t.as_ref()
        else {
            return None;
        };
        let Term::Binary {
            op: BinOp::Shl,
            a: inner,
            b: by,
        } = left.as_ref()
        else {
            return None;
        };
        if by.as_const()?.as_u64() != 8 {
            return None;
        }
        let (src, low) = walk(inner, width)?;
        let (src2, shift) = byte_slice(right, width)?;
        if src2 != src || shift + 8 != low {
            return None;
        }
        Some((src, shift))
    }
    let width = t.width();
    if !width.is_multiple_of(8) || width == 8 {
        return None;
    }
    let (source, low) = walk(t, width)?;
    if low == 0 && source.width() == width {
        Some(source)
    } else {
        None
    }
}

/// Build a select with simplification of constant conditions and equal arms.
pub fn select(c: TermRef, t: TermRef, e: TermRef) -> TermRef {
    if c.is_true() {
        return t;
    }
    if c.is_false() {
        return e;
    }
    if t == e {
        return t;
    }
    Arc::new(Term::Select { c, t, e })
}

/// Build a cast with constant folding and collapse of no-op casts.
pub fn cast(kind: CastKind, width: u8, a: TermRef) -> TermRef {
    if a.width() == width {
        return a;
    }
    if let Some(v) = a.as_const() {
        let folded = match kind {
            CastKind::ZExt => v.zext(width),
            CastKind::SExt => v.sext(width),
            CastKind::Trunc => v.trunc(width),
            CastKind::Resize => v.resize(width),
        };
        return constant(folded);
    }
    Arc::new(Term::Cast { kind, width, a })
}

/// Logical negation of a 1-bit term.
pub fn negate(a: TermRef) -> TermRef {
    unary(UnOp::LogicalNot, a)
}

/// An assignment of concrete values to symbolic leaves, used both by the
/// solver's model search and by counterexample replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    /// Concrete packet bytes (index 0 is the first byte the element
    /// received). Reads past the end use zero.
    pub packet: Vec<u8>,
    /// Concrete packet length. Usually `packet.len()`, but kept separate so
    /// the solver can explore lengths shorter than the materialised bytes.
    pub packet_len: u32,
    /// Values for fresh variables.
    pub vars: BTreeMap<VarId, u64>,
    /// Values for data-structure reads, keyed by `(ds, seq)`.
    pub ds_reads: BTreeMap<(u32, u32), u64>,
}

impl Assignment {
    /// An assignment over a concrete packet.
    pub fn from_packet(bytes: &[u8]) -> Self {
        Assignment {
            packet: bytes.to_vec(),
            packet_len: bytes.len() as u32,
            vars: BTreeMap::new(),
            ds_reads: BTreeMap::new(),
        }
    }

    /// The concrete packet this assignment denotes: the pinned bytes,
    /// zero-extended to `packet_len` and capped at a sane jumbo-frame size.
    /// This is how a `Sat` model becomes a real packet — counterexample
    /// replay and model-seeded conformance fuzzing both go through here.
    pub fn concrete_packet(&self) -> Vec<u8> {
        let len = (self.packet_len as usize).min(4096);
        let mut bytes = self.packet.clone();
        bytes.resize(len, 0);
        bytes
    }

    fn byte(&self, index: i64) -> u8 {
        if index < 0 {
            return 0;
        }
        self.packet.get(index as usize).copied().unwrap_or(0)
    }
}

/// Evaluate a term under an assignment. Division by zero evaluates to `None`
/// (the caller decides what that means — for constraint checking it means the
/// candidate assignment is rejected).
pub fn eval(term: &TermRef, a: &Assignment) -> Option<BitVec> {
    match term.as_ref() {
        Term::Const(v) => Some(*v),
        Term::PacketByte(i) => Some(BitVec::u8(a.byte(*i))),
        Term::PacketLen => Some(BitVec::u32(a.packet_len)),
        Term::PacketByteAt { index } => {
            let idx = eval(index, a)?.as_u64() as i64;
            Some(BitVec::u8(a.byte(idx)))
        }
        Term::DsRead { ds, seq, width, .. } => {
            let raw = a.ds_reads.get(&(ds.0, *seq)).copied().unwrap_or(0);
            Some(BitVec::new(*width, raw))
        }
        Term::Var { id, width } => {
            let raw = a.vars.get(id).copied().unwrap_or(0);
            Some(BitVec::new(*width, raw))
        }
        Term::Unary { op, a: x } => Some(eval_unop(*op, eval(x, a)?)),
        Term::Binary { op, a: x, b: y } => eval_binop(*op, eval(x, a)?, eval(y, a)?),
        Term::Select { c, t, e } => {
            if eval(c, a)?.is_true() {
                eval(t, a)
            } else {
                eval(e, a)
            }
        }
        Term::Cast { kind, width, a: x } => {
            let v = eval(x, a)?;
            Some(match kind {
                CastKind::ZExt => v.zext(*width),
                CastKind::SExt => v.sext(*width),
                CastKind::Trunc => v.trunc(*width),
                CastKind::Resize => v.resize(*width),
            })
        }
    }
}

/// Substitute leaves of a term according to `subst`, rebuilding (and
/// re-simplifying) the term bottom-up. Leaves not present in the map are kept.
///
/// This is the core operation of pipeline composition: element *k+1*'s packet
/// bytes are replaced by element *k*'s symbolic output bytes.
pub fn substitute(term: &TermRef, subst: &dyn Fn(&Term) -> Option<TermRef>) -> TermRef {
    if let Some(replacement) = subst(term.as_ref()) {
        return replacement;
    }
    match term.as_ref() {
        Term::Const(_) | Term::PacketByte(_) | Term::PacketLen | Term::Var { .. } => term.clone(),
        Term::DsRead {
            ds,
            key,
            seq,
            width,
        } => {
            let new_key = substitute(key, subst);
            if new_key == *key {
                term.clone()
            } else {
                Arc::new(Term::DsRead {
                    ds: *ds,
                    key: new_key,
                    seq: *seq,
                    width: *width,
                })
            }
        }
        Term::PacketByteAt { index } => {
            let new_index = substitute(index, subst);
            Arc::new(Term::PacketByteAt { index: new_index })
        }
        Term::Unary { op, a } => unary(*op, substitute(a, subst)),
        Term::Binary { op, a, b } => binary(*op, substitute(a, subst), substitute(b, subst)),
        Term::Select { c, t, e } => select(
            substitute(c, subst),
            substitute(t, subst),
            substitute(e, subst),
        ),
        Term::Cast { kind, width, a } => cast(*kind, *width, substitute(a, subst)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c32(v: u64) -> TermRef {
        constant(BitVec::u32(v as u32))
    }

    #[test]
    fn constant_folding_arithmetic() {
        let t = binary(BinOp::Add, c32(2), c32(3));
        assert_eq!(t.as_const().unwrap(), BitVec::u32(5));
        let t = binary(BinOp::Mul, c32(4), c32(5));
        assert_eq!(t.as_const().unwrap(), BitVec::u32(20));
        let t = unary(UnOp::Not, constant(BitVec::u8(0x0f)));
        assert_eq!(t.as_const().unwrap(), BitVec::u8(0xf0));
        let t = cast(CastKind::ZExt, 32, constant(BitVec::u8(7)));
        assert_eq!(t.as_const().unwrap(), BitVec::u32(7));
    }

    #[test]
    fn identities_simplify() {
        let x = Arc::new(Term::PacketByte(3));
        let x32 = cast(CastKind::ZExt, 32, x.clone());
        assert_eq!(binary(BinOp::Add, x32.clone(), c32(0)), x32);
        assert_eq!(binary(BinOp::Mul, x32.clone(), c32(1)), x32);
        assert!(binary(BinOp::Mul, x32.clone(), c32(0))
            .as_const()
            .unwrap()
            .is_zero());
        assert!(binary(BinOp::Eq, x32.clone(), x32.clone()).is_true());
        assert!(binary(BinOp::ULt, x32.clone(), x32.clone()).is_false());
        assert!(binary(BinOp::ULe, x32.clone(), x32.clone()).is_true());
        assert!(binary(BinOp::Ne, x32.clone(), x32).is_false());
    }

    #[test]
    fn boolean_simplification() {
        let p = Arc::new(Term::Var {
            id: VarId(0),
            width: 1,
        });
        assert_eq!(binary(BinOp::BoolAnd, tt(), p.clone()), p);
        assert_eq!(binary(BinOp::BoolAnd, p.clone(), tt()), p);
        assert!(binary(BinOp::BoolAnd, ff(), p.clone()).is_false());
        assert_eq!(binary(BinOp::BoolOr, ff(), p.clone()), p);
        assert!(binary(BinOp::BoolOr, p.clone(), tt()).is_true());
        assert_eq!(negate(negate(p.clone())), p);
        assert!(negate(tt()).is_false());
    }

    #[test]
    fn select_simplification() {
        let x = c32(5);
        let y = c32(9);
        assert_eq!(select(tt(), x.clone(), y.clone()), x);
        assert_eq!(select(ff(), x.clone(), y.clone()), y);
        let p = Arc::new(Term::Var {
            id: VarId(1),
            width: 1,
        });
        assert_eq!(select(p, x.clone(), x.clone()), x);
    }

    #[test]
    fn no_op_cast_collapses() {
        let x = Arc::new(Term::PacketLen);
        assert_eq!(cast(CastKind::Resize, 32, x.clone()), x);
    }

    #[test]
    fn width_computation() {
        let byte = Arc::new(Term::PacketByte(0));
        assert_eq!(byte.width(), 8);
        assert_eq!(Term::PacketLen.width(), 32);
        let cmp = binary(BinOp::ULt, c32(1), c32(2));
        assert_eq!(cmp.width(), 1);
        let w = cast(CastKind::ZExt, 64, byte.clone());
        assert_eq!(w.width(), 64);
        let sel = select(
            Arc::new(Term::Var {
                id: VarId(0),
                width: 1,
            }),
            byte.clone(),
            Arc::new(Term::PacketByte(1)),
        );
        assert_eq!(sel.width(), 8);
    }

    #[test]
    fn evaluation_against_packet() {
        let a = Assignment::from_packet(&[0x12, 0x34, 0x56]);
        let b0 = Arc::new(Term::PacketByte(0));
        let b1 = Arc::new(Term::PacketByte(1));
        let sum = binary(
            BinOp::Add,
            cast(CastKind::ZExt, 32, b0),
            cast(CastKind::ZExt, 32, b1),
        );
        assert_eq!(eval(&sum, &a).unwrap(), BitVec::u32(0x12 + 0x34));
        assert_eq!(
            eval(&Arc::new(Term::PacketLen), &a).unwrap(),
            BitVec::u32(3)
        );
        // Out-of-range and negative reads yield zero.
        assert_eq!(
            eval(&Arc::new(Term::PacketByte(9)), &a).unwrap(),
            BitVec::u8(0)
        );
        assert_eq!(
            eval(&Arc::new(Term::PacketByte(-3)), &a).unwrap(),
            BitVec::u8(0)
        );
    }

    #[test]
    fn evaluation_of_vars_and_ds_reads() {
        let mut a = Assignment::from_packet(&[0u8; 4]);
        a.vars.insert(VarId(7), 99);
        a.ds_reads.insert((2, 0), 0xabcd);
        let v = Arc::new(Term::Var {
            id: VarId(7),
            width: 8,
        });
        assert_eq!(eval(&v, &a).unwrap(), BitVec::u8(99));
        let d = Arc::new(Term::DsRead {
            ds: DsId(2),
            key: c32(1),
            seq: 0,
            width: 16,
        });
        assert_eq!(eval(&d, &a).unwrap(), BitVec::u16(0xabcd));
        // Unassigned leaves default to zero.
        let v2 = Arc::new(Term::Var {
            id: VarId(8),
            width: 8,
        });
        assert_eq!(eval(&v2, &a).unwrap(), BitVec::u8(0));
        // Division by zero propagates None.
        let div = Arc::new(Term::Binary {
            op: BinOp::UDiv,
            a: c32(5),
            b: c32(0),
        });
        assert_eq!(eval(&div, &a), None);
    }

    #[test]
    fn substitution_replaces_packet_bytes() {
        // (pkt[0] + pkt[1]) with pkt[0] := 7 becomes (7 + pkt[1]).
        let b0 = Arc::new(Term::PacketByte(0));
        let b1 = Arc::new(Term::PacketByte(1));
        let sum = binary(BinOp::Add, b0, b1.clone());
        let replaced = substitute(&sum, &|t| match t {
            Term::PacketByte(0) => Some(constant(BitVec::u8(7))),
            _ => None,
        });
        match replaced.as_ref() {
            Term::Binary {
                op: BinOp::Add,
                a,
                b,
            } => {
                assert_eq!(a.as_const().unwrap(), BitVec::u8(7));
                assert_eq!(*b, b1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Substituting both operands with constants folds the whole term.
        let folded = substitute(&sum, &|t| match t {
            Term::PacketByte(_) => Some(constant(BitVec::u8(3))),
            _ => None,
        });
        assert_eq!(folded.as_const().unwrap(), BitVec::u8(6));
    }

    #[test]
    fn leaves_and_node_count() {
        let b0 = Arc::new(Term::PacketByte(0));
        let len = Arc::new(Term::PacketLen);
        let t = binary(
            BinOp::ULt,
            cast(CastKind::ZExt, 32, b0.clone()),
            len.clone(),
        );
        let mut leaves = Vec::new();
        t.collect_leaves(&mut leaves);
        assert_eq!(leaves.len(), 2);
        assert!(leaves.contains(&b0));
        assert!(leaves.contains(&len));
        assert!(t.node_count() >= 4);
    }

    #[test]
    fn byte_reassembly_collapses_to_source() {
        // Simulate what SymPacket::store followed by a 4-byte load builds.
        let x: TermRef = Arc::new(Term::Var {
            id: VarId(9),
            width: 32,
        });
        let byte = |shift: u64| {
            cast(
                CastKind::ZExt,
                32,
                cast(
                    CastKind::Trunc,
                    8,
                    binary(BinOp::LShr, x.clone(), constant(BitVec::u32(shift as u32))),
                ),
            )
        };
        let mut value = constant(BitVec::u32(0));
        for i in 0..4u64 {
            value = binary(
                BinOp::Or,
                binary(BinOp::Shl, value, constant(BitVec::u32(8))),
                byte(8 * (3 - i)),
            );
        }
        assert_eq!(value, x, "reassembled bytes must collapse to the source");
        // A partial reassembly does not collapse.
        let mut partial = constant(BitVec::u32(0));
        for i in 0..3u64 {
            partial = binary(
                BinOp::Or,
                binary(BinOp::Shl, partial, constant(BitVec::u32(8))),
                byte(8 * (3 - i)),
            );
        }
        assert_ne!(partial, x);
    }

    #[test]
    fn display_is_readable() {
        let t = binary(
            BinOp::ULt,
            cast(CastKind::ZExt, 32, Arc::new(Term::PacketByte(8))),
            Arc::new(Term::PacketLen),
        );
        let s = t.to_string();
        assert!(s.contains("pkt[8]"));
        assert!(s.contains("pkt.len"));
        assert!(s.contains("<u"));
    }
}

//! A decision procedure for path constraints.
//!
//! The solver answers whether a conjunction of 1-bit terms is satisfiable:
//!
//! * **`Unsat`** is established analytically, by (in order) constant
//!   simplification, syntactic contradiction pairs, unsigned interval
//!   propagation, an arithmetic pass (known-bits/congruence propagation and
//!   difference bounds over the no-wrap linear fragment), and
//!   Fourier–Motzkin elimination over the linear fragment of
//!   the constraints. Every rule is conservative, so `Unsat` answers are
//!   sound — this is the direction the verifier relies on when it discharges
//!   suspect paths ("this violation cannot occur in the composed pipeline").
//! * **`Sat`** answers always carry a model, and the model is *verified* by
//!   concretely evaluating every constraint under it before it is returned,
//!   so `Sat` answers are sound by construction — this is what makes
//!   counterexample packets trustworthy.
//! * When neither side can be established within budget the solver returns
//!   **`Unknown`**, which the verifier treats pessimistically (a potential
//!   violation it could not rule out is reported, never dropped).

use crate::term::{eval, Assignment, Term, TermRef};
use dataplane_ir::{BinOp, UnOp};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// The constraints are satisfiable; the model makes every conjunct true.
    Sat(Assignment),
    /// The constraints are contradictory.
    Unsat,
    /// Neither satisfiability nor unsatisfiability could be established
    /// within budget.
    Unknown,
}

/// Which analytic stage gave up within budget during a check. Both flags stay
/// `false` on decided (`Sat`/`Unsat`) results reached before the stage in
/// question ran out; an `Unknown` result always has at least
/// `model_search_exhausted` set, and `fm_budget_exhausted` additionally says
/// that Fourier–Motzkin aborted mid-elimination (so a larger
/// `max_fm_constraints` budget might have decided the system).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckDiagnostics {
    /// Fourier–Motzkin hit `max_fm_constraints` and returned no verdict from
    /// that stage.
    pub fm_budget_exhausted: bool,
    /// The randomized model search ran through `model_search_tries` without
    /// finding a model.
    pub model_search_exhausted: bool,
}

impl CheckDiagnostics {
    /// Human-readable description of the stages that gave up, for `Unknown`
    /// reports (empty when nothing aborted).
    pub fn describe(&self) -> String {
        match (self.fm_budget_exhausted, self.model_search_exhausted) {
            (true, true) => {
                "fourier-motzkin aborted at its constraint budget, model search exhausted its tries"
                    .to_string()
            }
            (true, false) => "fourier-motzkin aborted at its constraint budget".to_string(),
            (false, true) => "model search exhausted its tries".to_string(),
            (false, false) => String::new(),
        }
    }
}

impl SolverResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }

    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }
}

/// Tunable solver limits.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Attempts of the randomized model search before giving up.
    pub model_search_tries: u32,
    /// Maximum packet length considered when synthesising models.
    pub max_packet_len: u32,
    /// Cap on the number of inequalities Fourier–Motzkin may generate before
    /// it aborts (returning no verdict from that stage).
    pub max_fm_constraints: usize,
    /// Seed for the deterministic pseudo-random model search.
    pub search_seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            model_search_tries: 4000,
            max_packet_len: 2048,
            max_fm_constraints: 2000,
            search_seed: 0x5EED_0001,
        }
    }
}

/// The constraint solver.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
}

/// Normalised comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Cmp {
    Eq,
    Ne,
    ULt,
    ULe,
    SLt,
    SLe,
}

/// A normalised atom `lhs <op> rhs`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Atom {
    op: Cmp,
    lhs: TermRef,
    rhs: TermRef,
}

impl Solver {
    /// A solver with default limits.
    pub fn new() -> Self {
        Solver::default()
    }

    /// A solver with explicit limits.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// The solver's limits (used by callers that derive escalated budgets).
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Check satisfiability of the conjunction of `constraints`.
    pub fn check(&self, constraints: &[TermRef]) -> SolverResult {
        self.check_diagnosed(constraints).0
    }

    /// Like [`Solver::check`], additionally reporting which analytic stage
    /// (if any) gave up within its budget — the information the verifier
    /// surfaces so `Unknown` verdicts are diagnosable.
    pub fn check_diagnosed(&self, constraints: &[TermRef]) -> (SolverResult, CheckDiagnostics) {
        self.check_diagnosed_cancel(constraints, &crate::CancelToken::new())
    }

    /// [`Solver::check_diagnosed`] under a [`crate::CancelToken`]: the model
    /// search polls the token and gives up early once it fires. A cancelled
    /// check returns `Unknown`; callers that cancel are discarding the
    /// result anyway, so the early exit only reclaims the wasted work.
    pub fn check_diagnosed_cancel(
        &self,
        constraints: &[TermRef],
        cancel: &crate::CancelToken,
    ) -> (SolverResult, CheckDiagnostics) {
        let mut diag = CheckDiagnostics::default();

        // 1. Flatten conjunctions and look for literal `false`.
        let mut conjuncts = Vec::new();
        for c in constraints {
            if !flatten(c, &mut conjuncts) {
                return (SolverResult::Unsat, diag);
            }
        }
        if conjuncts.is_empty() {
            return (SolverResult::Sat(Assignment::default()), diag);
        }

        // 2. Normalise comparisons into atoms (opaque conjuncts are kept for
        //    model checking but do not participate in the analytic stages).
        let atoms: Vec<Atom> = conjuncts.iter().filter_map(normalize_atom).collect();

        // 3. Syntactic contradiction pairs.
        if has_contradiction_pair(&atoms) {
            return (SolverResult::Unsat, diag);
        }

        // 4. Interval propagation.
        let mut intervals = IntervalMap::default();
        for c in &conjuncts {
            intervals.compute(c);
        }
        for _ in 0..4 {
            let mut changed = false;
            for a in &atoms {
                changed |= intervals.refine(a);
            }
            if intervals.contradiction {
                return (SolverResult::Unsat, diag);
            }
            if !changed {
                break;
            }
        }
        if intervals.contradiction {
            return (SolverResult::Unsat, diag);
        }

        // 5. Arithmetic pass: known-bits/congruence propagation and
        //    difference bounds over the no-wrap linear fragment.
        if arithmetic_infeasible(&atoms, &intervals) {
            return (SolverResult::Unsat, diag);
        }

        // 6. Fourier–Motzkin over the linear fragment.
        match fourier_motzkin(&atoms, &intervals, self.config.max_fm_constraints) {
            FmOutcome::Unsat => return (SolverResult::Unsat, diag),
            FmOutcome::NoVerdict => {}
            FmOutcome::BudgetExhausted => diag.fm_budget_exhausted = true,
        }

        // 7. Model search.
        match self.search_model(&conjuncts, &atoms, &intervals, cancel) {
            Some(model) => (SolverResult::Sat(model), diag),
            None => {
                diag.model_search_exhausted = true;
                (SolverResult::Unknown, diag)
            }
        }
    }

    /// Convenience: check a constraint set and return the model only.
    pub fn find_model(&self, constraints: &[TermRef]) -> Option<Assignment> {
        match self.check(constraints) {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Like [`Solver::check`], but first try the caller-provided hint
    /// assignments (and lightly repaired variants of them). Hints let the
    /// caller inject domain knowledge — e.g. structurally valid packets with
    /// correct checksums — that the generic search would be unlikely to
    /// synthesise. A hint that satisfies every conjunct is returned as a
    /// verified `Sat` model; otherwise the normal decision procedure runs.
    pub fn check_with_hints(&self, constraints: &[TermRef], hints: &[Assignment]) -> SolverResult {
        self.check_with_hints_diagnosed(constraints, hints).0
    }

    /// [`Solver::check_with_hints`] with the stage diagnostics of the
    /// fallback decision procedure (a hint that satisfies everything decides
    /// the check before any stage can give up, so the diagnostics are empty
    /// in that case).
    pub fn check_with_hints_diagnosed(
        &self,
        constraints: &[TermRef],
        hints: &[Assignment],
    ) -> (SolverResult, CheckDiagnostics) {
        self.check_with_hints_diagnosed_cancel(constraints, hints, &crate::CancelToken::new())
    }

    /// [`Solver::check_with_hints_diagnosed`] under a [`crate::CancelToken`]
    /// (see [`Solver::check_diagnosed_cancel`] for the cancellation
    /// contract).
    pub fn check_with_hints_diagnosed_cancel(
        &self,
        constraints: &[TermRef],
        hints: &[Assignment],
        cancel: &crate::CancelToken,
    ) -> (SolverResult, CheckDiagnostics) {
        let mut conjuncts = Vec::new();
        let mut all_flat = true;
        for c in constraints {
            if !flatten(c, &mut conjuncts) {
                all_flat = false;
                break;
            }
        }
        if all_flat {
            let debug_hints = std::env::var_os("DATAPLANE_DEBUG_HINTS").is_some();
            let atoms: Vec<Atom> = conjuncts.iter().filter_map(normalize_atom).collect();
            // Round one keeps the hint packets' bytes intact (only auxiliary
            // variables are adjusted), so a satisfying model stays a
            // realistic packet; round two may also rewrite packet bytes.
            for allow_packet in [false, true] {
                for (hint_idx, hint) in hints.iter().enumerate() {
                    if cancel.is_cancelled() {
                        return (SolverResult::Unknown, CheckDiagnostics::default());
                    }
                    let mut candidate = hint.clone();
                    for _ in 0..4 {
                        if check_all(&conjuncts, &candidate) {
                            return (SolverResult::Sat(candidate), CheckDiagnostics::default());
                        }
                        for atom in &atoms {
                            repair(&mut candidate, atom, allow_packet);
                        }
                    }
                    if check_all(&conjuncts, &candidate) {
                        return (SolverResult::Sat(candidate), CheckDiagnostics::default());
                    }
                    if debug_hints && allow_packet && hint_idx == 0 {
                        for c in &conjuncts {
                            let ok = eval(c, &candidate).map(|v| v.is_true()).unwrap_or(false);
                            if !ok {
                                eprintln!("[hint-debug] unsatisfied after repair: {c}");
                            }
                        }
                    }
                }
            }
        }
        self.check_diagnosed_cancel(constraints, cancel)
    }

    // --- model search ------------------------------------------------------

    fn search_model(
        &self,
        conjuncts: &[TermRef],
        atoms: &[Atom],
        intervals: &IntervalMap,
        cancel: &crate::CancelToken,
    ) -> Option<Assignment> {
        // Gather leaves.
        let mut leaves = Vec::new();
        for c in conjuncts {
            c.collect_leaves(&mut leaves);
        }
        leaves.sort_by_key(|t| format!("{t}"));
        leaves.dedup();

        let max_byte_index = leaves
            .iter()
            .filter_map(|t| match t.as_ref() {
                Term::PacketByte(i) => Some(*i),
                _ => None,
            })
            .max()
            .unwrap_or(-1);

        // Interesting constants mentioned anywhere in the constraints.
        let mut interesting: Vec<u64> = vec![0, 1];
        for c in conjuncts {
            collect_constants(c, &mut interesting);
        }
        interesting.sort_unstable();
        interesting.dedup();

        // Candidate packet lengths: enough to cover every referenced byte,
        // plus interesting constants, plus a few common sizes.
        let needed = (max_byte_index + 1).max(0) as u32;
        let mut lengths: Vec<u32> = vec![needed, 0, 20, 34, 60, 64, 1500];
        for v in &interesting {
            if *v <= self.config.max_packet_len as u64 {
                lengths.push(*v as u32);
            }
        }
        lengths.retain(|l| *l <= self.config.max_packet_len);
        lengths.sort_unstable();
        lengths.dedup();

        let mut rng = XorShift::new(self.config.search_seed);

        for &len in &lengths {
            let mut a = Assignment {
                packet: vec![0u8; len.max(needed) as usize],
                packet_len: len,
                vars: BTreeMap::new(),
                ds_reads: BTreeMap::new(),
            };
            // Leaves start at their interval lower bound (or zero); the
            // packet length keeps the candidate value chosen above.
            for leaf in &leaves {
                if matches!(leaf.as_ref(), Term::PacketLen) {
                    continue;
                }
                let lo = intervals.get(leaf).map(|iv| iv.lo).unwrap_or(0);
                assign_leaf(&mut a, leaf, lo);
            }
            // Repair pass: force equalities and inequalities that mention one
            // leaf and one constant.
            for _ in 0..3 {
                for atom in atoms {
                    repair(&mut a, atom, true);
                }
            }
            if check_all(conjuncts, &a) {
                return Some(a);
            }
            // Randomised hill climbing.
            let mut best_score = score(conjuncts, &a);
            let tries = self.config.model_search_tries / lengths.len().max(1) as u32;
            for attempt in 0..tries {
                // Poll coarsely: the atomic walk is cheap next to an
                // evaluation pass, but not free.
                if attempt % 64 == 0 && cancel.is_cancelled() {
                    return None;
                }
                let mut candidate = a.clone();
                let pick = rng.next() as usize % leaves.len().max(1);
                if let Some(leaf) = leaves.get(pick) {
                    let value = match rng.next() % 4 {
                        0 => *interesting
                            .get(rng.next() as usize % interesting.len().max(1))
                            .unwrap_or(&0),
                        1 => rng.next(),
                        2 => intervals.get(leaf).map(|iv| iv.hi).unwrap_or(u64::MAX),
                        _ => rng.next() % 256,
                    };
                    assign_leaf(&mut candidate, leaf, value);
                }
                let s = score(conjuncts, &candidate);
                // Accept improvements and sideways moves (plateau walking
                // escapes coupled constraints that no single-leaf change can
                // improve monotonically).
                if s >= best_score {
                    best_score = s;
                    a = candidate;
                    if s == conjuncts.len() && check_all(conjuncts, &a) {
                        return Some(a);
                    }
                }
            }
            if check_all(conjuncts, &a) {
                return Some(a);
            }
        }
        None
    }
}

/// Flatten a 1-bit term into conjuncts. Returns `false` if a conjunct is the
/// literal constant `false`.
fn flatten(term: &TermRef, out: &mut Vec<TermRef>) -> bool {
    if term.is_true() {
        return true;
    }
    if term.is_false() {
        return false;
    }
    match term.as_ref() {
        Term::Binary {
            op: BinOp::BoolAnd,
            a,
            b,
        } => flatten(a, out) && flatten(b, out),
        Term::Unary {
            op: UnOp::LogicalNot,
            a,
        } => {
            // ¬(x ∨ y) = ¬x ∧ ¬y
            if let Term::Binary {
                op: BinOp::BoolOr,
                a: x,
                b: y,
            } = a.as_ref()
            {
                return flatten(&crate::term::negate(x.clone()), out)
                    && flatten(&crate::term::negate(y.clone()), out);
            }
            out.push(term.clone());
            true
        }
        _ => {
            out.push(term.clone());
            true
        }
    }
}

/// Normalise a conjunct into a comparison atom if possible. Negated
/// comparisons become their complements, `UGt`/`UGe` are swapped into
/// `ULt`/`ULe`.
fn normalize_atom(term: &TermRef) -> Option<Atom> {
    match term.as_ref() {
        Term::Binary { op, a, b } => {
            let (op, lhs, rhs) = match op {
                BinOp::Eq => (Cmp::Eq, a.clone(), b.clone()),
                BinOp::Ne => (Cmp::Ne, a.clone(), b.clone()),
                BinOp::ULt => (Cmp::ULt, a.clone(), b.clone()),
                BinOp::ULe => (Cmp::ULe, a.clone(), b.clone()),
                BinOp::UGt => (Cmp::ULt, b.clone(), a.clone()),
                BinOp::UGe => (Cmp::ULe, b.clone(), a.clone()),
                BinOp::SLt => (Cmp::SLt, a.clone(), b.clone()),
                BinOp::SLe => (Cmp::SLe, a.clone(), b.clone()),
                _ => return None,
            };
            Some(Atom { op, lhs, rhs })
        }
        Term::Unary {
            op: UnOp::LogicalNot,
            a,
        } => {
            let inner = normalize_atom(a)?;
            // Complement.
            let (op, lhs, rhs) = match inner.op {
                Cmp::Eq => (Cmp::Ne, inner.lhs, inner.rhs),
                Cmp::Ne => (Cmp::Eq, inner.lhs, inner.rhs),
                Cmp::ULt => (Cmp::ULe, inner.rhs, inner.lhs),
                Cmp::ULe => (Cmp::ULt, inner.rhs, inner.lhs),
                Cmp::SLt => (Cmp::SLe, inner.rhs, inner.lhs),
                Cmp::SLe => (Cmp::SLt, inner.rhs, inner.lhs),
            };
            Some(Atom { op, lhs, rhs })
        }
        _ => None,
    }
}

/// Detect pairs of atoms that directly contradict each other.
fn has_contradiction_pair(atoms: &[Atom]) -> bool {
    let set: HashSet<&Atom> = atoms.iter().collect();
    for a in atoms {
        let contradictions: Vec<Atom> = match a.op {
            Cmp::Eq => vec![Atom {
                op: Cmp::Ne,
                lhs: a.lhs.clone(),
                rhs: a.rhs.clone(),
            }],
            Cmp::Ne => vec![Atom {
                op: Cmp::Eq,
                lhs: a.lhs.clone(),
                rhs: a.rhs.clone(),
            }],
            Cmp::ULt => vec![
                Atom {
                    op: Cmp::ULe,
                    lhs: a.rhs.clone(),
                    rhs: a.lhs.clone(),
                },
                Atom {
                    op: Cmp::ULt,
                    lhs: a.rhs.clone(),
                    rhs: a.lhs.clone(),
                },
                Atom {
                    op: Cmp::Eq,
                    lhs: a.lhs.clone(),
                    rhs: a.rhs.clone(),
                },
            ],
            Cmp::SLt => vec![
                Atom {
                    op: Cmp::SLe,
                    lhs: a.rhs.clone(),
                    rhs: a.lhs.clone(),
                },
                Atom {
                    op: Cmp::SLt,
                    lhs: a.rhs.clone(),
                    rhs: a.lhs.clone(),
                },
            ],
            Cmp::ULe | Cmp::SLe => vec![],
        };
        if contradictions.iter().any(|c| set.contains(c)) {
            return true;
        }
    }
    false
}

fn collect_constants(term: &TermRef, out: &mut Vec<u64>) {
    match term.as_ref() {
        Term::Const(v) => {
            out.push(v.as_u64());
            if v.as_u64() > 0 {
                out.push(v.as_u64() - 1);
            }
            out.push(v.as_u64().wrapping_add(1));
        }
        Term::Unary { a, .. } | Term::Cast { a, .. } => collect_constants(a, out),
        Term::Binary { a, b, .. } => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
        Term::Select { c, t, e } => {
            collect_constants(c, out);
            collect_constants(t, out);
            collect_constants(e, out);
        }
        Term::PacketByteAt { index } => collect_constants(index, out),
        Term::DsRead { key, .. } => collect_constants(key, out),
        _ => {}
    }
}

fn assign_leaf(a: &mut Assignment, leaf: &TermRef, value: u64) {
    match leaf.as_ref() {
        Term::PacketByte(i) if *i >= 0 => {
            let idx = *i as usize;
            if idx >= a.packet.len() {
                a.packet.resize(idx + 1, 0);
            }
            a.packet[idx] = (value & 0xff) as u8;
        }
        Term::PacketByte(_) => {}
        Term::PacketLen => a.packet_len = value.min(u32::MAX as u64) as u32,
        Term::Var { id, .. } => {
            a.vars.insert(*id, value);
        }
        Term::DsRead { ds, seq, .. } => {
            a.ds_reads.insert((ds.0, *seq), value);
        }
        Term::PacketByteAt { .. } => {}
        _ => {}
    }
}

/// Try to make `atom` true by assigning one of its sides when the other side
/// evaluates to a constant and the assignable side is a (possibly zero-
/// extended) single leaf. When `allow_packet` is false, packet bytes and the
/// packet length are left untouched (only auxiliary variables and
/// data-structure reads are adjusted).
fn repair(a: &mut Assignment, atom: &Atom, allow_packet: bool) {
    let assignable = |t: &TermRef| -> bool {
        allow_packet
            || !matches!(
                t.as_ref(),
                Term::PacketByte(_) | Term::PacketLen | Term::PacketByteAt { .. }
            )
    };
    fn leaf_of(t: &TermRef) -> Option<TermRef> {
        match t.as_ref() {
            Term::PacketByte(_) | Term::PacketLen | Term::Var { .. } | Term::DsRead { .. } => {
                Some(t.clone())
            }
            Term::Cast { a, .. } => leaf_of(a),
            _ => None,
        }
    }
    let lhs_val = eval(&atom.lhs, a);
    let rhs_val = eval(&atom.rhs, a);
    let (lhs_val, rhs_val) = match (lhs_val, rhs_val) {
        (Some(x), Some(y)) => (x, y),
        _ => return,
    };
    let satisfied = match atom.op {
        Cmp::Eq => lhs_val.as_u64() == rhs_val.as_u64(),
        Cmp::Ne => lhs_val.as_u64() != rhs_val.as_u64(),
        Cmp::ULt => lhs_val.as_u64() < rhs_val.as_u64(),
        Cmp::ULe => lhs_val.as_u64() <= rhs_val.as_u64(),
        Cmp::SLt => lhs_val.as_i64() < rhs_val.as_i64(),
        Cmp::SLe => lhs_val.as_i64() <= rhs_val.as_i64(),
    };
    if satisfied {
        return;
    }
    // If one side is an arbitrary expression over a single leaf and the other
    // side currently evaluates to a constant, speculatively try the constant
    // (and neighbours) as the leaf value — this covers folded-checksum shapes
    // like `fold(fold(v)) == 0xffff` where `v := 0xffff` works.
    let speculate = |a: &mut Assignment, expr_side: &TermRef, target: u64| -> bool {
        let mut leaves = Vec::new();
        expr_side.collect_leaves(&mut leaves);
        leaves.dedup();
        if leaves.len() != 1 {
            return false;
        }
        let leaf = leaves[0].clone();
        let saved = a.clone();
        for candidate in [target, target.wrapping_sub(1), target.wrapping_add(1), 0] {
            assign_leaf(a, &leaf, candidate);
            if eval(expr_side, a).map(|v| v.as_u64()) == Some(target) {
                return true;
            }
        }
        *a = saved;
        false
    };
    let side_assignable = |side: &TermRef| -> bool {
        let mut leaves = Vec::new();
        side.collect_leaves(&mut leaves);
        leaves.iter().all(&assignable)
    };
    if atom.op == Cmp::Eq
        && ((side_assignable(&atom.lhs) && speculate(a, &atom.lhs, rhs_val.as_u64()))
            || (side_assignable(&atom.rhs) && speculate(a, &atom.rhs, lhs_val.as_u64())))
    {
        return;
    }
    // Try assigning the left leaf to a value that satisfies the relation with
    // the current right value, then vice versa.
    if let Some(leaf) = leaf_of(&atom.lhs).filter(|l| assignable(l)) {
        let target = match atom.op {
            Cmp::Eq => Some(rhs_val.as_u64()),
            Cmp::Ne => Some(rhs_val.as_u64().wrapping_add(1)),
            Cmp::ULt => rhs_val.as_u64().checked_sub(1),
            Cmp::ULe => Some(rhs_val.as_u64()),
            Cmp::SLt | Cmp::SLe => Some(0),
        };
        if let Some(v) = target {
            assign_leaf(a, &leaf, v);
            return;
        }
    }
    if let Some(leaf) = leaf_of(&atom.rhs).filter(|l| assignable(l)) {
        let target = match atom.op {
            Cmp::Eq => Some(lhs_val.as_u64()),
            Cmp::Ne => Some(lhs_val.as_u64().wrapping_add(1)),
            Cmp::ULt | Cmp::ULe => Some(lhs_val.as_u64().wrapping_add(1)),
            Cmp::SLt | Cmp::SLe => Some(lhs_val.as_u64().wrapping_add(1)),
        };
        if let Some(v) = target {
            assign_leaf(a, &leaf, v);
        }
    }
}

fn check_all(conjuncts: &[TermRef], a: &Assignment) -> bool {
    conjuncts
        .iter()
        .all(|c| eval(c, a).map(|v| v.is_true()).unwrap_or(false))
}

fn score(conjuncts: &[TermRef], a: &Assignment) -> usize {
    conjuncts
        .iter()
        .filter(|c| eval(c, a).map(|v| v.is_true()).unwrap_or(false))
        .count()
}

// --- intervals --------------------------------------------------------------

/// Unsigned interval of a term's possible values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    fn full(width: u8) -> Interval {
        Interval {
            lo: 0,
            hi: dataplane_ir::value::mask(width),
        }
    }
    fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }
    fn is_empty(&self) -> bool {
        self.lo > self.hi
    }
    fn intersect(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }
}

/// Sound unsigned bounds of `term` under the conjunction of `constraints`.
///
/// This runs the solver's interval-propagation stage (bottom-up computation
/// plus atom-driven refinement) and reads the resulting bounds back out
/// compositionally, so refinements recorded against sub-terms (e.g. a loop
/// counter bounded by the loop condition, or an invariant the engine seeded)
/// reach the bounds of composite expressions built from them. Used by the
/// engine to bound symbolic packet-store offsets. When the constraints are
/// contradictory any answer is sound; the degenerate `[0, 0]` point is
/// returned.
pub fn term_bounds(constraints: &[TermRef], term: &TermRef) -> Interval {
    let mut conjuncts = Vec::new();
    for c in constraints {
        if !flatten(c, &mut conjuncts) {
            return Interval::point(0);
        }
    }
    let atoms: Vec<Atom> = conjuncts.iter().filter_map(normalize_atom).collect();
    let mut intervals = IntervalMap::default();
    for c in &conjuncts {
        intervals.compute(c);
    }
    intervals.compute(term);
    for _ in 0..4 {
        let mut changed = false;
        for a in &atoms {
            changed |= intervals.refine(a);
        }
        if intervals.contradiction {
            return Interval::point(0);
        }
        if !changed {
            break;
        }
    }
    let bounds = intervals.bounds_bottom_up(term);
    if bounds.is_empty() {
        Interval::point(0)
    } else {
        bounds
    }
}

/// Analytic infeasibility pre-check: run the cheap budget-free prefix of
/// the full decision procedure — conjunction flattening, atom
/// normalisation, syntactic contradiction pairs, interval propagation, and
/// the arithmetic pass (known-bits/congruence propagation plus difference
/// bounds over the no-wrap `base ± const` fragment) — and report whether it
/// already proves the conjunction unsatisfiable.
///
/// Sound by construction: every stage here is literally a prefix of
/// [`Solver::check`], so `true` implies the full solver would return
/// `Unsat` (never `Sat`). `false` says nothing — the conjunction may still
/// be infeasible for reasons only Fourier–Motzkin or the model search can
/// establish. Because no stage with a tunable budget runs, the answer is a
/// deterministic function of the constraints alone, independent of
/// [`SolverConfig`].
pub fn interval_infeasible(constraints: &[TermRef]) -> bool {
    let mut conjuncts = Vec::new();
    for c in constraints {
        if !flatten(c, &mut conjuncts) {
            return true;
        }
    }
    if conjuncts.is_empty() {
        return false;
    }
    let atoms: Vec<Atom> = conjuncts.iter().filter_map(normalize_atom).collect();
    if has_contradiction_pair(&atoms) {
        return true;
    }
    let mut intervals = IntervalMap::default();
    for c in &conjuncts {
        intervals.compute(c);
    }
    for _ in 0..4 {
        let mut changed = false;
        for a in &atoms {
            changed |= intervals.refine(a);
        }
        if intervals.contradiction {
            return true;
        }
        if !changed {
            break;
        }
    }
    if intervals.contradiction {
        return true;
    }
    arithmetic_infeasible(&atoms, &intervals)
}

/// Map of computed intervals keyed by term structure.
#[derive(Default)]
struct IntervalMap {
    map: HashMap<TermRef, Interval>,
    contradiction: bool,
}

impl IntervalMap {
    fn get(&self, t: &TermRef) -> Option<Interval> {
        self.map.get(t).copied()
    }

    /// Bottom-up interval computation.
    fn compute(&mut self, t: &TermRef) -> Interval {
        if let Some(iv) = self.map.get(t) {
            return *iv;
        }
        let iv = {
            let mut children = |c: &TermRef| self.compute(c);
            node_interval(t, &mut children)
        };
        self.map.insert(t.clone(), iv);
        iv
    }

    /// Sound bounds of `t` recomputed bottom-up against the *refined* map
    /// entries. [`IntervalMap::compute`] caches a composite node's interval
    /// before any refinement happens, so a plain map lookup of a composite
    /// can be stale; this walk re-derives every node from its children and
    /// intersects with whatever (refined) knowledge the map holds about the
    /// node itself. Memoized per call: terms are DAGs (subterms shared via
    /// `Arc`), so an unmemoized walk would be exponential in chain depth.
    fn bounds_bottom_up(&self, t: &TermRef) -> Interval {
        self.bounds_bottom_up_memo(t, &mut HashMap::new())
    }

    fn bounds_bottom_up_memo(
        &self,
        t: &TermRef,
        memo: &mut HashMap<TermRef, Interval>,
    ) -> Interval {
        if let Some(iv) = memo.get(t) {
            return *iv;
        }
        let mut children = |c: &TermRef| self.bounds_bottom_up_memo(c, memo);
        let computed = node_interval(t, &mut children);
        let result = match self.map.get(t) {
            Some(iv) => computed.intersect(*iv),
            None => computed,
        };
        memo.insert(t.clone(), result);
        result
    }

    /// Refine intervals using one atom. Returns true if anything changed.
    fn refine(&mut self, atom: &Atom) -> bool {
        let lhs = self.compute(&atom.lhs);
        let rhs = self.compute(&atom.rhs);
        let mut new_lhs = lhs;
        let mut new_rhs = rhs;
        match atom.op {
            Cmp::Eq => {
                new_lhs.lo = lhs.lo.max(rhs.lo);
                new_lhs.hi = lhs.hi.min(rhs.hi);
                new_rhs = new_lhs;
            }
            Cmp::ULt => {
                if rhs.hi == 0 {
                    self.contradiction = true;
                    return false;
                }
                new_lhs.hi = lhs.hi.min(rhs.hi - 1);
                new_rhs.lo = rhs.lo.max(lhs.lo.saturating_add(1));
            }
            Cmp::ULe => {
                new_lhs.hi = lhs.hi.min(rhs.hi);
                new_rhs.lo = rhs.lo.max(lhs.lo);
            }
            // Signed comparisons are refined only when both sides are known
            // non-negative in the signed sense (top bit clear), in which case
            // they coincide with the unsigned comparisons.
            Cmp::SLt => {
                let w = atom.lhs.width();
                let top = 1u64 << (w - 1);
                if lhs.hi < top && rhs.hi < top {
                    if rhs.hi == 0 {
                        self.contradiction = true;
                        return false;
                    }
                    new_lhs.hi = lhs.hi.min(rhs.hi - 1);
                    new_rhs.lo = rhs.lo.max(lhs.lo.saturating_add(1));
                }
            }
            Cmp::SLe => {
                let w = atom.lhs.width();
                let top = 1u64 << (w - 1);
                if lhs.hi < top && rhs.hi < top {
                    new_lhs.hi = lhs.hi.min(rhs.hi);
                    new_rhs.lo = rhs.lo.max(lhs.lo);
                }
            }
            Cmp::Ne => {}
        }
        if new_lhs.is_empty() || new_rhs.is_empty() {
            self.contradiction = true;
            return false;
        }
        let mut changed = false;
        if new_lhs != lhs {
            self.map.insert(atom.lhs.clone(), new_lhs);
            changed = true;
        }
        if new_rhs != rhs {
            self.map.insert(atom.rhs.clone(), new_rhs);
            changed = true;
        }
        changed
    }
}

// --- arithmetic pre-filter (known bits + difference bounds) ------------------

/// Bit-level knowledge about a term's value: `zeros` has a 1 for every bit
/// known to be 0, `ones` for every bit known to be 1. The sets are disjoint
/// on consistent facts; an overlap means the constraints force a bit to be
/// both, i.e. a contradiction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct KnownBits {
    zeros: u64,
    ones: u64,
}

impl KnownBits {
    /// No information beyond the width: bits at and above `width` are zero.
    fn unknown(width: u8) -> KnownBits {
        KnownBits {
            zeros: !dataplane_ir::value::mask(width),
            ones: 0,
        }
    }

    /// A fully-determined value at `width`.
    fn constant(v: u64, width: u8) -> KnownBits {
        let m = dataplane_ir::value::mask(width);
        KnownBits {
            zeros: !(v & m),
            ones: v & m,
        }
    }

    fn known(&self) -> u64 {
        self.zeros | self.ones
    }

    fn conflict(&self) -> bool {
        self.zeros & self.ones != 0
    }

    /// Union of two fact sets about the same value (may conflict).
    fn union(self, o: KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros | o.zeros,
            ones: self.ones | o.ones,
        }
    }

    /// Sound lower bound: every known-one bit is set in the value.
    fn min_value(&self) -> u64 {
        self.ones
    }

    /// Sound upper bound: unknown bits at most all-ones within the width.
    fn max_value(&self, width: u8) -> u64 {
        self.ones | (dataplane_ir::value::mask(width) & !self.zeros)
    }
}

/// Known bits of `a + b + carry_in` over `width` bits: ripple the carry
/// through bit positions, keeping the sum bit whenever both addend bits and
/// the incoming carry are determined, and tracking the carry through the
/// recoverable partial cases (a known-zero addend with no carry cannot
/// generate one; two known-one addend bits always do).
fn add_known_bits(x: KnownBits, y: KnownBits, carry_in: u64, width: u8) -> KnownBits {
    let m = dataplane_ir::value::mask(width);
    let mut zeros = !m;
    let mut ones = 0u64;
    let mut carry: Option<u64> = Some(carry_in);
    let bit_of = |kb: KnownBits, i: u32| -> Option<u64> {
        let bit = 1u64 << i;
        if kb.zeros & bit != 0 {
            Some(0)
        } else if kb.ones & bit != 0 {
            Some(1)
        } else {
            None
        }
    };
    for i in 0..u32::from(width).min(64) {
        let bit = 1u64 << i;
        match (bit_of(x, i), bit_of(y, i), carry) {
            (Some(xv), Some(yv), Some(c)) => {
                let s = xv + yv + c;
                if s & 1 == 1 {
                    ones |= bit;
                } else {
                    zeros |= bit;
                }
                carry = Some(s >> 1);
            }
            // The sum bit is lost, but the carry out is still determined.
            (Some(0), Some(0), _) | (Some(0), _, Some(0)) | (_, Some(0), Some(0)) => {
                carry = Some(0);
            }
            (Some(1), Some(1), _) | (Some(1), _, Some(1)) | (_, Some(1), Some(1)) => {
                carry = Some(1);
            }
            _ => carry = None,
        }
    }
    KnownBits { zeros, ones }
}

/// Length of the known-zero low-bit run (number of trailing bits provably 0).
fn low_zero_run(kb: KnownBits) -> u32 {
    (!kb.zeros).trailing_zeros()
}

/// Known bits of one term node as a function of its children's known bits.
/// Every rule is conservative: a bit is reported known only when it takes
/// that value for all values the children can take.
fn known_bits_node(t: &TermRef, children: &mut dyn FnMut(&TermRef) -> KnownBits) -> KnownBits {
    let width = t.width();
    let m = dataplane_ir::value::mask(width);
    let unknown = KnownBits::unknown(width);
    match t.as_ref() {
        Term::Const(v) => KnownBits::constant(v.as_u64(), width),
        Term::Unary { op: UnOp::Not, a } => {
            let x = children(a);
            KnownBits {
                zeros: (x.ones & m) | !m,
                ones: x.zeros & m,
            }
        }
        Term::Unary { .. } => unknown,
        Term::Cast { kind, width: w, a } => {
            let inner = children(a);
            match kind {
                // Widening zero extension keeps every fact: the inner facts
                // already mark the bits above the inner width as zero.
                dataplane_ir::CastKind::ZExt | dataplane_ir::CastKind::Resize
                    if *w >= a.width() =>
                {
                    inner
                }
                dataplane_ir::CastKind::Trunc | dataplane_ir::CastKind::Resize => KnownBits {
                    zeros: (inner.zeros & m) | !m,
                    ones: inner.ones & m,
                },
                // Sign extension propagates only when the sign bit is known.
                dataplane_ir::CastKind::SExt if *w >= a.width() && a.width() > 0 => {
                    let sign = top_bit(a.width());
                    let ext = m & !dataplane_ir::value::mask(a.width());
                    if inner.zeros & sign != 0 {
                        inner
                    } else if inner.ones & sign != 0 {
                        KnownBits {
                            zeros: (inner.zeros & dataplane_ir::value::mask(a.width())) | !m,
                            ones: inner.ones | ext,
                        }
                    } else {
                        unknown
                    }
                }
                _ => unknown,
            }
        }
        Term::Select { t: tt, e, .. } => {
            let x = children(tt);
            let y = children(e);
            KnownBits {
                zeros: (x.zeros & y.zeros) | !m,
                ones: x.ones & y.ones & m,
            }
        }
        Term::Binary { op, a, b } => {
            let x = children(a);
            let y = children(b);
            match op {
                BinOp::And => KnownBits {
                    zeros: x.zeros | y.zeros | !m,
                    ones: x.ones & y.ones & m,
                },
                BinOp::Or => KnownBits {
                    zeros: (x.zeros & y.zeros) | !m,
                    ones: (x.ones | y.ones) & m,
                },
                BinOp::Xor => {
                    let k = x.known() & y.known();
                    let v = (x.ones ^ y.ones) & k & m;
                    KnownBits {
                        zeros: (k & !v) | !m,
                        ones: v,
                    }
                }
                BinOp::Add => add_known_bits(x, y, 0, width),
                // a - b = a + !b + 1 over `width` bits.
                BinOp::Sub => add_known_bits(
                    x,
                    KnownBits {
                        zeros: y.ones & m,
                        ones: y.zeros & m,
                    },
                    1,
                    width,
                ),
                // Congruence only: the product is divisible by 2^(tz(a)+tz(b)).
                BinOp::Mul => {
                    let tz = (low_zero_run(x) + low_zero_run(y)).min(64);
                    let low = if tz >= 64 { u64::MAX } else { (1u64 << tz) - 1 };
                    KnownBits {
                        zeros: low | !m,
                        ones: 0,
                    }
                }
                BinOp::Shl => match b.as_ref() {
                    Term::Const(c) if c.as_u64() < u64::from(width) => {
                        let s = c.as_u64() as u32;
                        let ones = (x.ones << s) & m;
                        let unknown_out = ((!x.known() & m) << s) & m;
                        KnownBits {
                            zeros: !(ones | unknown_out),
                            ones,
                        }
                    }
                    _ => unknown,
                },
                BinOp::LShr => match b.as_ref() {
                    Term::Const(c) if c.as_u64() < u64::from(width) => {
                        let s = c.as_u64() as u32;
                        let ones = (x.ones & m) >> s;
                        let unknown_out = (!x.known() & m) >> s;
                        KnownBits {
                            zeros: !(ones | unknown_out),
                            ones,
                        }
                    }
                    _ => unknown,
                },
                _ => unknown,
            }
        }
        _ => unknown,
    }
}

/// Downward-propagation recursion limit for [`KnownBitsMap::narrow`].
const NARROW_DEPTH: u32 = 8;

/// Map of known-bit facts keyed by term structure, refined from equality
/// atoms the way [`IntervalMap`] is refined from comparisons. This is the
/// congruence half of the arithmetic pre-filter: facts learned about a
/// composite (`x & 1 == 0`) are pushed down through masks, xors, shifts by
/// constants, and add/sub of constants, so parity- and alignment-style
/// contradictions surface without a model search.
#[derive(Default)]
struct KnownBitsMap {
    map: HashMap<TermRef, KnownBits>,
    contradiction: bool,
}

impl KnownBitsMap {
    /// Bottom-up known-bits computation (memoized; refined entries win).
    fn compute(&mut self, t: &TermRef) -> KnownBits {
        if let Some(kb) = self.map.get(t) {
            return *kb;
        }
        let kb = {
            let mut children = |c: &TermRef| self.compute(c);
            known_bits_node(t, &mut children)
        };
        self.map.insert(t.clone(), kb);
        kb
    }

    /// Record that `t` also satisfies `kb` and push the new facts down
    /// through invertible structure. Returns true if anything changed.
    fn narrow(&mut self, t: &TermRef, kb: KnownBits, depth: u32) -> bool {
        let cur = self.compute(t);
        let merged = cur.union(kb);
        if merged.conflict() {
            self.contradiction = true;
            return false;
        }
        if merged == cur {
            return false;
        }
        self.map.insert(t.clone(), merged);
        if depth == 0 {
            return true;
        }
        let width = t.width();
        let m = dataplane_ir::value::mask(width);
        match t.as_ref() {
            Term::Unary { op: UnOp::Not, a } => {
                self.narrow(
                    a,
                    KnownBits {
                        zeros: merged.ones & m,
                        ones: merged.zeros & m,
                    },
                    depth - 1,
                );
            }
            Term::Cast { kind, width: w, a }
                if matches!(
                    kind,
                    dataplane_ir::CastKind::ZExt | dataplane_ir::CastKind::Resize
                ) && *w >= a.width() =>
            {
                // The inner value equals the outer one; ones above the inner
                // width conflict with the inner facts and flag Unsat.
                self.narrow(
                    a,
                    KnownBits {
                        zeros: merged.zeros & dataplane_ir::value::mask(a.width()),
                        ones: merged.ones,
                    },
                    depth - 1,
                );
            }
            Term::Binary { op, a, b } => {
                let (sub, c) = match (a.as_ref(), b.as_ref()) {
                    (_, Term::Const(c)) => (a, c.as_u64() & m),
                    (Term::Const(c), _) => (b, c.as_u64() & m),
                    _ => return true,
                };
                let const_on_left = matches!(a.as_ref(), Term::Const(_));
                match op {
                    // Where the mask bit is 1 the operand bit equals ours.
                    BinOp::And => {
                        self.narrow(
                            sub,
                            KnownBits {
                                zeros: merged.zeros & c,
                                ones: merged.ones & c,
                            },
                            depth - 1,
                        );
                    }
                    // Where the mask bit is 0 the operand bit equals ours.
                    BinOp::Or => {
                        self.narrow(
                            sub,
                            KnownBits {
                                zeros: merged.zeros & !c & m,
                                ones: merged.ones & !c & m,
                            },
                            depth - 1,
                        );
                    }
                    // operand = t ^ c, bit for bit where t is known.
                    BinOp::Xor => {
                        let k = merged.known() & m;
                        let v = (merged.ones ^ c) & k;
                        self.narrow(
                            sub,
                            KnownBits {
                                zeros: k & !v,
                                ones: v,
                            },
                            depth - 1,
                        );
                    }
                    // operand = t - c: ripple-subtract through t's known run.
                    BinOp::Add => {
                        let neg = KnownBits::constant(!c & m, width);
                        self.narrow(sub, add_known_bits(merged, neg, 1, width), depth - 1);
                    }
                    BinOp::Sub => {
                        let derived = if const_on_left {
                            // t = c - x  ⇒  x = c - t.
                            add_known_bits(
                                KnownBits::constant(c, width),
                                KnownBits {
                                    zeros: merged.ones & m,
                                    ones: merged.zeros & m,
                                },
                                1,
                                width,
                            )
                        } else {
                            // t = x - c  ⇒  x = t + c.
                            add_known_bits(merged, KnownBits::constant(c, width), 0, width)
                        };
                        self.narrow(sub, derived, depth - 1);
                    }
                    // t = x << s: x bit j (j < width - s) equals t bit j + s.
                    BinOp::Shl if !const_on_left && c < u64::from(width) => {
                        let s = c as u32;
                        let keep = m >> s;
                        self.narrow(
                            sub,
                            KnownBits {
                                zeros: (merged.zeros >> s) & keep,
                                ones: (merged.ones >> s) & keep,
                            },
                            depth - 1,
                        );
                    }
                    // t = x >> s: x bit j + s equals t bit j.
                    BinOp::LShr if !const_on_left && c < u64::from(width) => {
                        let s = c as u32;
                        let keep = m >> s;
                        self.narrow(
                            sub,
                            KnownBits {
                                zeros: (merged.zeros & keep) << s,
                                ones: (merged.ones & keep) << s,
                            },
                            depth - 1,
                        );
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        true
    }

    /// Refine known bits from one atom. Returns true if anything changed.
    fn refine(&mut self, atom: &Atom) -> bool {
        let l = self.compute(&atom.lhs);
        let r = self.compute(&atom.rhs);
        match atom.op {
            Cmp::Eq => {
                let merged = l.union(r);
                if merged.conflict() {
                    self.contradiction = true;
                    return false;
                }
                let mut changed = false;
                if merged != l {
                    changed |= self.narrow(&atom.lhs, merged, NARROW_DEPTH);
                }
                if merged != r {
                    changed |= self.narrow(&atom.rhs, merged, NARROW_DEPTH);
                }
                changed
            }
            Cmp::Ne => {
                // Both sides fully determined and equal is a contradiction.
                if l.known() == u64::MAX && r.known() == u64::MAX && l.ones == r.ones {
                    self.contradiction = true;
                }
                false
            }
            _ => false,
        }
    }
}

/// View an atom side as `base + offset` over the integers: peel `base ± c`
/// layers whose wrap-around the interval bounds rule out, so the resulting
/// equation is exact integer arithmetic, not merely modulo 2^width.
fn offset_view(t: &TermRef, intervals: &IntervalMap) -> (TermRef, i128) {
    if let Term::Binary { op, a, b } = t.as_ref() {
        let width = t.width();
        let m = dataplane_ir::value::mask(width);
        match (op, a.as_ref(), b.as_ref()) {
            (BinOp::Add, _, Term::Const(c)) => {
                let c = c.as_u64() & m;
                let base = intervals.bounds_bottom_up(a);
                if u128::from(base.hi) + u128::from(c) <= u128::from(m) {
                    let (root, off) = offset_view(a, intervals);
                    return (root, off + i128::from(c));
                }
            }
            (BinOp::Add, Term::Const(c), _) => {
                let c = c.as_u64() & m;
                let base = intervals.bounds_bottom_up(b);
                if u128::from(base.hi) + u128::from(c) <= u128::from(m) {
                    let (root, off) = offset_view(b, intervals);
                    return (root, off + i128::from(c));
                }
            }
            (BinOp::Sub, _, Term::Const(c)) => {
                let c = c.as_u64() & m;
                let base = intervals.bounds_bottom_up(a);
                if base.lo >= c {
                    let (root, off) = offset_view(a, intervals);
                    return (root, off - i128::from(c));
                }
            }
            _ => {}
        }
    }
    (t.clone(), 0)
}

/// Difference-bound infeasibility: collect integer constraints of the form
/// `u - v <= w` from atoms whose sides decompose as no-wrap `base ± const`
/// (plus interval range edges against a virtual zero node) and look for a
/// negative cycle with Bellman–Ford. A negative cycle certifies the
/// conjunction unsatisfiable over the integers, hence unsatisfiable. This
/// catches transitive-chain contradictions (`x + 1 <= y`, `y + 1 <= x`)
/// that per-term intervals cannot see.
fn difference_infeasible(atoms: &[Atom], intervals: &IntervalMap) -> bool {
    // Edge (v, u, w) encodes `u - v <= w`. Node 0 is the virtual zero.
    let mut ids: HashMap<TermRef, usize> = HashMap::new();
    let mut edges: Vec<(usize, usize, i128)> = Vec::new();
    fn intern(
        t: &TermRef,
        ids: &mut HashMap<TermRef, usize>,
        edges: &mut Vec<(usize, usize, i128)>,
        intervals: &IntervalMap,
    ) -> usize {
        if let Some(&i) = ids.get(t) {
            return i;
        }
        let i = ids.len() + 1;
        ids.insert(t.clone(), i);
        let iv = intervals.bounds_bottom_up(t);
        edges.push((0, i, i128::from(iv.hi)));
        edges.push((i, 0, -i128::from(iv.lo)));
        i
    }
    let nonneg = |t: &TermRef| {
        let w = t.width();
        w > 0 && intervals.bounds_bottom_up(t).hi < top_bit(w)
    };
    let mut cmp_edges = 0usize;
    for atom in atoms {
        let op = match atom.op {
            Cmp::SLt | Cmp::SLe if nonneg(&atom.lhs) && nonneg(&atom.rhs) => {
                if atom.op == Cmp::SLt {
                    Cmp::ULt
                } else {
                    Cmp::ULe
                }
            }
            Cmp::Ne | Cmp::SLt | Cmp::SLe => continue,
            op => op,
        };
        let (bl, cl) = offset_view(&atom.lhs, intervals);
        let (br, cr) = offset_view(&atom.rhs, intervals);
        if op != Cmp::Eq && cl == 0 && cr == 0 && bl == br {
            continue;
        }
        let u = intern(&bl, &mut ids, &mut edges, intervals);
        let v = intern(&br, &mut ids, &mut edges, intervals);
        // lhs <= rhs  ⇔  bl + cl <= br + cr  ⇔  bl - br <= cr - cl.
        match op {
            Cmp::Eq => {
                edges.push((v, u, cr - cl));
                edges.push((u, v, cl - cr));
            }
            Cmp::ULe => edges.push((v, u, cr - cl)),
            Cmp::ULt => edges.push((v, u, cr - cl - 1)),
            _ => unreachable!(),
        }
        cmp_edges += 1;
    }
    if cmp_edges == 0 {
        return false;
    }
    // Bellman–Ford from an implicit all-zero source; a relaxation that still
    // fires after n rounds witnesses a negative cycle.
    let n = ids.len() + 1;
    let mut dist = vec![0i128; n];
    for round in 0..=n {
        let mut changed = false;
        for &(v, u, w) in &edges {
            if dist[v] + w < dist[u] {
                if round == n {
                    return true;
                }
                dist[u] = dist[v] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    false
}

/// The arithmetic pre-filter stage shared by [`interval_infeasible`] and
/// [`Solver::check`]: a known-bits/congruence pass over the mask, shift,
/// xor, and add/sub relations in the atoms (cross-checked against the
/// refined intervals), followed by a difference-bound negative-cycle pass
/// over the no-wrap `base ± const` fragment. `true` is sound (the
/// conjunction is unsatisfiable); both passes are budget-free and
/// deterministic, so the answer depends only on the constraints.
fn arithmetic_infeasible(atoms: &[Atom], intervals: &IntervalMap) -> bool {
    let mut known = KnownBitsMap::default();
    for a in atoms {
        known.compute(&a.lhs);
        known.compute(&a.rhs);
    }
    for _ in 0..4 {
        let mut changed = false;
        for a in atoms {
            changed |= known.refine(a);
        }
        if known.contradiction {
            return true;
        }
        if !changed {
            break;
        }
    }
    if known.contradiction {
        return true;
    }
    // Bit knowledge and interval knowledge must overlap on every atom side.
    for a in atoms {
        for side in [&a.lhs, &a.rhs] {
            let kb = known.compute(side);
            if let Some(iv) = intervals.get(side) {
                if kb.min_value() > iv.hi || kb.max_value(side.width()) < iv.lo {
                    return true;
                }
            }
        }
    }
    difference_infeasible(atoms, intervals)
}

/// The interval of one term node as a function of its children's intervals
/// (supplied by `children`, which may recurse with or without caching). Every
/// rule is conservative: the returned range always encloses every value the
/// node can take when each child stays within its reported range.
fn node_interval(t: &TermRef, children: &mut dyn FnMut(&TermRef) -> Interval) -> Interval {
    let width = t.width();
    let full = Interval::full(width);
    match t.as_ref() {
        Term::Const(v) => Interval::point(v.as_u64()),
        Term::PacketByte(_) | Term::PacketByteAt { .. } => Interval { lo: 0, hi: 255 },
        Term::PacketLen => Interval { lo: 0, hi: 65535 },
        Term::Var { .. } | Term::DsRead { .. } => full,
        Term::Unary { op, a } => {
            let x = children(a);
            match op {
                // Bitwise complement reverses the order of values.
                UnOp::Not => {
                    let mask = dataplane_ir::value::mask(width);
                    Interval {
                        lo: mask - x.hi.min(mask),
                        hi: mask - x.lo.min(mask),
                    }
                }
                UnOp::LogicalNot => Interval { lo: 0, hi: 1 },
                UnOp::Neg => full,
            }
        }
        Term::Cast { kind, width, a } => {
            let inner = children(a);
            match kind {
                dataplane_ir::CastKind::ZExt | dataplane_ir::CastKind::Resize
                    if *width >= a.width() =>
                {
                    inner
                }
                // A narrowing truncation (or resize) preserves the value
                // whenever the value provably fits in the target width.
                dataplane_ir::CastKind::Trunc | dataplane_ir::CastKind::Resize
                    if inner.hi <= dataplane_ir::value::mask(*width) =>
                {
                    inner
                }
                // Sign extension of a provably non-negative value is a zero
                // extension.
                dataplane_ir::CastKind::SExt
                    if *width >= a.width() && a.width() > 0 && inner.hi < top_bit(a.width()) =>
                {
                    inner
                }
                _ => full,
            }
        }
        Term::Select { t: tt, e, .. } => {
            let a = children(tt);
            let b = children(e);
            Interval {
                lo: a.lo.min(b.lo),
                hi: a.hi.max(b.hi),
            }
        }
        Term::Binary { op, a, b } => {
            let x = children(a);
            let y = children(b);
            let mask = dataplane_ir::value::mask(width);
            match op {
                BinOp::Add => match (x.hi.checked_add(y.hi), x.lo.checked_add(y.lo)) {
                    (Some(hi), Some(lo)) if hi <= mask => Interval { lo, hi },
                    _ => full,
                },
                BinOp::Sub => {
                    if x.lo >= y.hi {
                        Interval {
                            lo: x.lo - y.hi,
                            hi: x.hi - y.lo,
                        }
                    } else {
                        full
                    }
                }
                BinOp::Mul => match (x.hi.checked_mul(y.hi), x.lo.checked_mul(y.lo)) {
                    (Some(hi), Some(lo)) if hi <= mask => Interval { lo, hi },
                    _ => full,
                },
                BinOp::And => Interval {
                    lo: 0,
                    hi: x.hi.min(y.hi),
                },
                // Every set bit of `x | y` is bounded by the highest set bit
                // either side can contribute, and neither side can lower the
                // other's value.
                BinOp::Or => Interval {
                    lo: x.lo.max(y.lo),
                    hi: bit_ceiling(x.hi | y.hi).min(mask),
                },
                BinOp::Xor => Interval {
                    lo: 0,
                    hi: bit_ceiling(x.hi | y.hi).min(mask),
                },
                BinOp::Shl => {
                    // Only bounded when the largest shifted value provably
                    // stays in range (no bits shifted out for any operand
                    // values).
                    if y.hi < 64 {
                        match x.hi.checked_shl(y.hi as u32) {
                            Some(hi) if hi <= mask => Interval {
                                lo: x.lo << y.lo.min(63),
                                hi,
                            },
                            _ => full,
                        }
                    } else {
                        full
                    }
                }
                BinOp::UDiv => match x.hi.checked_div(y.lo) {
                    // y.lo > 0 bounds the quotient; a zero divisor may
                    // crash instead of producing a value, so no bound.
                    Some(hi) => Interval {
                        lo: x.lo / y.hi.max(1),
                        hi,
                    },
                    None => full,
                },
                BinOp::URem => {
                    if y.lo > 0 && x.hi < y.lo {
                        // The dividend is provably smaller than every
                        // possible divisor: the remainder is the dividend.
                        x
                    } else {
                        Interval {
                            lo: 0,
                            hi: if y.hi > 0 {
                                x.hi.min(y.hi - 1)
                            } else {
                                full.hi
                            },
                        }
                    }
                }
                // A shift of >= 64 produces 0 (not shift-by-63), so the
                // lower bound collapses once the amount can reach 64; the
                // upper bound may stay, as `x.hi >> 63` over-approximates 0.
                BinOp::LShr => Interval {
                    lo: if y.hi >= 64 { 0 } else { x.lo >> y.hi },
                    hi: x.hi >> y.lo.min(63),
                },
                // An arithmetic shift of a provably non-negative value is a
                // logical shift.
                BinOp::AShr if width > 0 && x.hi < top_bit(width) => Interval {
                    lo: if y.hi >= 64 { 0 } else { x.lo >> y.hi },
                    hi: x.hi >> y.lo.min(63),
                },
                _ if op.is_comparison() || op.is_boolean() => Interval { lo: 0, hi: 1 },
                _ => full,
            }
        }
    }
}

/// `2^(width-1)`, the value of the sign bit at `width`.
fn top_bit(width: u8) -> u64 {
    1u64 << (width - 1).min(63)
}

/// The smallest all-ones value `>= v` (`0b0110 -> 0b0111`): the tightest
/// power-of-two-minus-one upper bound for bitwise combinations.
fn bit_ceiling(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

// --- linear fragment / Fourier–Motzkin ---------------------------------------

/// A linear expression: `constant + Σ coeff·var`, where the "variables" are
/// opaque term nodes (leaves or non-linear sub-terms).
#[derive(Clone, Debug, Default)]
struct LinExpr {
    constant: i128,
    coeffs: BTreeMap<String, (TermRef, i128)>,
}

impl LinExpr {
    fn constant(v: i128) -> LinExpr {
        LinExpr {
            constant: v,
            coeffs: BTreeMap::new(),
        }
    }
    fn var(t: TermRef) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(format!("{t}"), (t, 1));
        LinExpr {
            constant: 0,
            coeffs,
        }
    }
    fn add(mut self, other: &LinExpr, sign: i128) -> LinExpr {
        self.constant += sign * other.constant;
        for (k, (t, c)) in &other.coeffs {
            let entry = self
                .coeffs
                .entry(k.clone())
                .or_insert_with(|| (t.clone(), 0));
            entry.1 += sign * c;
        }
        self.coeffs.retain(|_, (_, c)| *c != 0);
        self
    }
    fn scale(mut self, k: i128) -> LinExpr {
        self.constant *= k;
        for (_, (_, c)) in self.coeffs.iter_mut() {
            *c *= k;
        }
        self
    }
}

/// Linearise a term, treating non-linear nodes as opaque variables. Each
/// result carries mathematical bounds derived from the (refined) intervals of
/// its opaque variables; a node whose mathematical value could wrap at its
/// bit width is kept opaque instead, so the mathematical reading stays sound.
fn linearize(t: &TermRef, intervals: &IntervalMap) -> Option<LinExpr> {
    linearize_bounded(t, intervals).map(|(e, _, _)| e)
}

/// Linearise with bounds: returns `(expr, lo, hi)` where `lo..=hi` encloses
/// the mathematical value of `expr` given the interval of every opaque
/// variable in it.
fn linearize_bounded(t: &TermRef, intervals: &IntervalMap) -> Option<(LinExpr, i128, i128)> {
    // Bounds of an opaque node come from its (possibly refined) interval.
    let opaque = |t: &TermRef| -> (LinExpr, i128, i128) {
        let iv = intervals
            .get(t)
            .unwrap_or_else(|| Interval::full(t.width()));
        (LinExpr::var(t.clone()), iv.lo as i128, iv.hi as i128)
    };
    match t.as_ref() {
        Term::Const(v) => {
            let c = v.as_u64() as i128;
            Some((LinExpr::constant(c), c, c))
        }
        Term::Binary { op, a, b } => match op {
            // A left shift by a constant is multiplication by a power of two
            // — linear, provided the mathematical value cannot wrap (checked
            // below like every other arithmetic node). This is the shape
            // shifted header reads (`x << 2`-style scaling) take.
            BinOp::Shl => {
                // A variable shift amount is not linear, but the node is
                // still a bounded value — keep it opaque rather than
                // dropping every atom that mentions it from the fragment.
                let Some(k) = b.as_const().map(|v| v.as_u64()) else {
                    return Some(opaque(t));
                };
                if k >= 64 {
                    return Some(opaque(t));
                }
                let factor = 1i128 << k;
                let (la, alo, ahi) = linearize_bounded(a, intervals)?;
                let mask = dataplane_ir::value::mask(t.width()) as i128;
                let (lo, hi) = (alo * factor, ahi * factor);
                if lo < 0 || hi > mask {
                    return Some(opaque(t));
                }
                Some((la.scale(factor), lo, hi))
            }
            // Masking with a low bit mask (`x & 0x0f`, `x & 0xff`, …) is the
            // identity whenever the operand provably fits in the mask — the
            // masked header reads the router elements emit then join the
            // linear fragment instead of opacifying every constraint that
            // mentions them.
            BinOp::And => {
                let (value, mask_const) = if let Some(m) = b.as_const() {
                    (a, m.as_u64())
                } else if let Some(m) = a.as_const() {
                    (b, m.as_u64())
                } else {
                    return Some(opaque(t));
                };
                if mask_const.wrapping_add(1).is_power_of_two() || mask_const == u64::MAX {
                    let (lv, lo, hi) = linearize_bounded(value, intervals)?;
                    if lo >= 0 && hi <= mask_const as i128 {
                        // Tighten with any refinement recorded on the masked
                        // node itself, mirroring the cast pass-through.
                        let (mut lo, mut hi) = (lo, hi);
                        if let Some(iv) = intervals.get(t) {
                            lo = lo.max(iv.lo as i128);
                            hi = hi.min(iv.hi as i128);
                        }
                        return Some((lv, lo, hi));
                    }
                }
                Some(opaque(t))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let (la, alo, ahi) = linearize_bounded(a, intervals)?;
                let (lb, blo, bhi) = linearize_bounded(b, intervals)?;
                let mask = dataplane_ir::value::mask(t.width()) as i128;
                let (expr, lo, hi) = match op {
                    BinOp::Add => (la.add(&lb, 1), alo + blo, ahi + bhi),
                    BinOp::Sub => (la.add(&lb, -1), alo - bhi, ahi - blo),
                    BinOp::Mul => {
                        if lb.coeffs.is_empty() {
                            (la.scale(lb.constant), alo * blo, ahi * bhi)
                        } else if la.coeffs.is_empty() {
                            (lb.scale(la.constant), alo * blo, ahi * bhi)
                        } else {
                            // Product of two non-constant expressions: opaque.
                            return Some(opaque(t));
                        }
                    }
                    _ => unreachable!(),
                };
                // If the mathematical value can leave [0, mask], modular
                // wrap-around could occur and the linear reading is unsound;
                // fall back to an opaque variable for this node.
                if lo < 0 || hi > mask {
                    return Some(opaque(t));
                }
                Some((expr, lo, hi))
            }
            _ => Some(opaque(t)),
        },
        Term::Cast { kind, width, a } => match kind {
            dataplane_ir::CastKind::ZExt | dataplane_ir::CastKind::Resize
                if *width >= a.width() =>
            {
                // Value-preserving widening: pass through, but tighten the
                // bounds with any refinement recorded against the cast node
                // itself (atoms usually mention the widened form, e.g.
                // `zext32(v) >= 4`, and that knowledge must reach the bounds
                // used for wrap checking higher up).
                let (e, mut lo, mut hi) = linearize_bounded(a, intervals)?;
                if let Some(iv) = intervals.get(t) {
                    lo = lo.max(iv.lo as i128);
                    hi = hi.min(iv.hi as i128);
                }
                Some((e, lo, hi))
            }
            _ => Some(opaque(t)),
        },
        _ => Some(opaque(t)),
    }
}

/// One inequality `expr <= 0`.
#[derive(Clone, Debug)]
struct Inequality {
    expr: LinExpr,
}

/// What the Fourier–Motzkin stage established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FmOutcome {
    /// The linear fragment is infeasible (sound: the whole system is Unsat).
    Unsat,
    /// Elimination completed without deriving a contradiction.
    NoVerdict,
    /// Elimination aborted at `max_fm_constraints`; no verdict from this
    /// stage, and a larger budget might have decided the system.
    BudgetExhausted,
}

/// Decide unsatisfiability of the linear fragment by Fourier–Motzkin
/// elimination (sound for `Unsat` because rational infeasibility implies
/// integer infeasibility).
fn fourier_motzkin(atoms: &[Atom], intervals: &IntervalMap, max_constraints: usize) -> FmOutcome {
    let mut inequalities: Vec<Inequality> = Vec::new();
    let mut vars: HashSet<String> = HashSet::new();

    let push = |expr: LinExpr, inequalities: &mut Vec<Inequality>, vars: &mut HashSet<String>| {
        for k in expr.coeffs.keys() {
            vars.insert(k.clone());
        }
        inequalities.push(Inequality { expr });
    };

    for atom in atoms {
        // Signed atoms participate only when both sides are provably
        // non-negative (then they agree with the unsigned reading).
        if matches!(atom.op, Cmp::SLt | Cmp::SLe) {
            let w = atom.lhs.width();
            let top = 1u64 << (w - 1);
            let lok = intervals
                .get(&atom.lhs)
                .map(|iv| iv.hi < top)
                .unwrap_or(false);
            let rok = intervals
                .get(&atom.rhs)
                .map(|iv| iv.hi < top)
                .unwrap_or(false);
            if !lok || !rok {
                continue;
            }
        }
        if matches!(atom.op, Cmp::Ne) {
            continue;
        }
        let (Some(l), Some(r)) = (
            linearize(&atom.lhs, intervals),
            linearize(&atom.rhs, intervals),
        ) else {
            continue;
        };
        let diff = l.add(&r, -1); // lhs - rhs
        match atom.op {
            Cmp::ULe | Cmp::SLe => push(diff, &mut inequalities, &mut vars),
            Cmp::ULt | Cmp::SLt => {
                push(
                    diff.add(&LinExpr::constant(-1), -1),
                    &mut inequalities,
                    &mut vars,
                )
                // lhs - rhs + 1 <= 0
            }
            Cmp::Eq => {
                push(diff.clone(), &mut inequalities, &mut vars);
                push(diff.scale(-1), &mut inequalities, &mut vars);
            }
            Cmp::Ne => {}
        }
    }

    // Range constraints for every opaque variable: 0 <= v <= hi.
    let var_terms: Vec<TermRef> = {
        let mut seen: HashMap<String, TermRef> = HashMap::new();
        for ineq in &inequalities {
            for (k, (t, _)) in &ineq.expr.coeffs {
                seen.entry(k.clone()).or_insert_with(|| t.clone());
            }
        }
        seen.into_values().collect()
    };
    for t in var_terms {
        let hi = intervals
            .get(&t)
            .map(|iv| iv.hi)
            .unwrap_or_else(|| dataplane_ir::value::mask(t.width()));
        let lo = intervals.get(&t).map(|iv| iv.lo).unwrap_or(0);
        // -v + lo <= 0
        push(
            LinExpr::var(t.clone())
                .scale(-1)
                .add(&LinExpr::constant(lo as i128), 1),
            &mut inequalities,
            &mut vars,
        );
        // v - hi <= 0
        push(
            LinExpr::var(t).add(&LinExpr::constant(hi as i128), -1),
            &mut inequalities,
            &mut vars,
        );
    }

    // Eliminate variables one at a time.
    let mut var_list: Vec<String> = vars.into_iter().collect();
    var_list.sort();
    for var in var_list {
        if inequalities.len() > max_constraints {
            return FmOutcome::BudgetExhausted;
        }
        let (with_var, without): (Vec<Inequality>, Vec<Inequality>) = inequalities
            .into_iter()
            .partition(|i| i.expr.coeffs.contains_key(&var));
        let mut uppers = Vec::new(); // c*v <= rest  (c > 0)
        let mut lowers = Vec::new(); // rest <= c*v  (coefficient < 0 in <=0 form)
        for ineq in with_var {
            let coeff = ineq.expr.coeffs.get(&var).map(|(_, c)| *c).unwrap_or(0);
            if coeff > 0 {
                uppers.push((coeff, ineq));
            } else {
                lowers.push((-coeff, ineq));
            }
        }
        let mut next = without;
        for (cu, u) in &uppers {
            for (cl, l) in &lowers {
                // cu*v + U <= 0  and  -cl*v + L <= 0
                // => cl*U + cu*L <= 0 after eliminating v.
                let mut combined = u.expr.clone().scale(*cl).add(&l.expr.clone().scale(*cu), 1);
                combined.coeffs.remove(&var);
                if combined.coeffs.is_empty() {
                    if combined.constant > 0 {
                        return FmOutcome::Unsat; // 0 < constant <= 0 is impossible
                    }
                } else {
                    next.push(Inequality { expr: combined });
                }
            }
        }
        inequalities = next;
        // A pure-constant contradiction may also already be present.
        if inequalities
            .iter()
            .any(|i| i.expr.coeffs.is_empty() && i.expr.constant > 0)
        {
            return FmOutcome::Unsat;
        }
    }
    if inequalities
        .iter()
        .any(|i| i.expr.coeffs.is_empty() && i.expr.constant > 0)
    {
        FmOutcome::Unsat
    } else {
        FmOutcome::NoVerdict
    }
}

// --- deterministic RNG -------------------------------------------------------

/// A small xorshift generator so the model search is deterministic and does
/// not pull in `rand` for the library crate.
struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift { state: seed.max(1) }
    }
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{binary, cast, constant, negate, VarId};
    use dataplane_ir::{BitVec, CastKind};
    use std::sync::Arc;

    fn pkt_byte(i: i64) -> TermRef {
        Arc::new(Term::PacketByte(i))
    }

    #[test]
    fn oversized_shift_collapses_the_lower_bound() {
        // `x >> y` with x = 2^63 and an unconstrained 64-bit y: any y >= 64
        // yields 0, so the only sound lower bound is 0 (a clamp-to-63 model
        // would wrongly claim >= 1 — and an unsound store-offset lower bound
        // lets a clobber range exclude bytes a store can really reach).
        let x = constant(BitVec::new(64, 1u64 << 63));
        let y = Arc::new(Term::Var {
            id: VarId(0),
            width: 64,
        });
        let t = binary(BinOp::LShr, x, y.clone());
        let bounds = term_bounds(&[], &t);
        assert_eq!(bounds.lo, 0, "shift by >= 64 can produce 0");
        // With y provably small, the tight bound comes back.
        let small = binary(BinOp::ULe, y.clone(), constant(BitVec::new(64, 3)));
        let t = binary(BinOp::LShr, constant(BitVec::new(64, 1u64 << 63)), y);
        let bounds = term_bounds(&[small], &t);
        assert!(bounds.lo >= 1u64 << 60, "bounded shift keeps precision");
    }
    fn pkt_len() -> TermRef {
        Arc::new(Term::PacketLen)
    }
    fn c32(v: u32) -> TermRef {
        constant(BitVec::u32(v))
    }
    fn b32(i: i64) -> TermRef {
        cast(CastKind::ZExt, 32, pkt_byte(i))
    }

    #[test]
    fn empty_and_trivial_constraints() {
        let s = Solver::new();
        assert!(s.check(&[]).is_sat());
        assert!(s.check(&[crate::term::tt()]).is_sat());
        assert!(s.check(&[crate::term::ff()]).is_unsat());
    }

    #[test]
    fn simple_equality_is_sat_with_correct_model() {
        let s = Solver::new();
        // pkt[0] == 0x45
        let c = binary(BinOp::Eq, pkt_byte(0), constant(BitVec::u8(0x45)));
        match s.check(&[c]) {
            SolverResult::Sat(m) => assert_eq!(m.packet[0], 0x45),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_equalities_are_unsat() {
        let s = Solver::new();
        let a = binary(BinOp::Eq, pkt_byte(0), constant(BitVec::u8(1)));
        let b = binary(BinOp::Eq, pkt_byte(0), constant(BitVec::u8(2)));
        assert!(s.check(&[a, b]).is_unsat());
    }

    #[test]
    fn complementary_comparisons_are_unsat() {
        let s = Solver::new();
        let x = b32(0);
        let lt = binary(BinOp::ULt, x.clone(), c32(10));
        let ge = binary(BinOp::UGe, x.clone(), c32(10));
        assert!(s.check(&[lt.clone(), ge]).is_unsat());
        // x < 10 && x == 10 is also a contradiction.
        let eq = binary(BinOp::Eq, x.clone(), c32(10));
        assert!(s.check(&[lt, eq]).is_unsat());
    }

    #[test]
    fn negated_atom_contradiction() {
        let s = Solver::new();
        let x = b32(0);
        let lt = binary(BinOp::ULt, x.clone(), c32(10));
        assert!(s.check(&[lt.clone(), negate(lt)]).is_unsat());
    }

    #[test]
    fn interval_contradiction_detected() {
        let s = Solver::new();
        // A single byte cannot exceed 300.
        let gt = binary(BinOp::UGt, b32(0), c32(300));
        assert!(s.check(&[gt]).is_unsat());
        // But it can exceed 200.
        let gt = binary(BinOp::UGt, b32(0), c32(200));
        match s.check(&[gt]) {
            SolverResult::Sat(m) => assert!(m.packet[0] > 200),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn transitive_chain_is_unsat() {
        // The Figure-2-style composition check:
        //   hl <= total, total <= len, i < hl, len < i + 1  — impossible.
        let s = Solver::new();
        let hl = binary(
            BinOp::Mul,
            cast(
                CastKind::ZExt,
                32,
                binary(BinOp::And, pkt_byte(0), constant(BitVec::u8(0x0f))),
            ),
            c32(4),
        );
        let total = cast(
            CastKind::ZExt,
            32,
            Arc::new(Term::Var {
                id: VarId(1),
                width: 16,
            }),
        );
        let i = binary(
            BinOp::Add,
            c32(20),
            cast(
                CastKind::ZExt,
                32,
                Arc::new(Term::Var {
                    id: VarId(2),
                    width: 8,
                }),
            ),
        );
        let len = pkt_len();

        let cs = vec![
            binary(BinOp::ULe, hl.clone(), total.clone()),
            binary(BinOp::ULe, total, len.clone()),
            binary(BinOp::ULt, i.clone(), hl),
            binary(BinOp::ULt, len, binary(BinOp::Add, i, c32(1))),
        ];
        assert!(s.check(&cs).is_unsat());
    }

    #[test]
    fn monotone_sum_chain_is_unsat() {
        // ptr + 3 <= optlen, i + optlen <= hl, hl <= len, and the crash
        // condition i + ptr + 3 > len — the record-route write case.
        let s = Solver::new();
        let ptr = cast(
            CastKind::ZExt,
            32,
            Arc::new(Term::Var {
                id: VarId(1),
                width: 8,
            }),
        );
        let optlen = cast(
            CastKind::ZExt,
            32,
            Arc::new(Term::Var {
                id: VarId(2),
                width: 8,
            }),
        );
        let i = binary(
            BinOp::Add,
            c32(20),
            cast(
                CastKind::ZExt,
                32,
                Arc::new(Term::Var {
                    id: VarId(3),
                    width: 8,
                }),
            ),
        );
        let hl = binary(
            BinOp::Mul,
            cast(
                CastKind::ZExt,
                32,
                binary(BinOp::And, pkt_byte(0), constant(BitVec::u8(0x0f))),
            ),
            c32(4),
        );
        let len = pkt_len();
        let cs = vec![
            binary(
                BinOp::ULe,
                binary(BinOp::Add, ptr.clone(), c32(3)),
                optlen.clone(),
            ),
            binary(
                BinOp::ULe,
                binary(BinOp::Add, i.clone(), optlen),
                hl.clone(),
            ),
            binary(BinOp::ULe, hl, len.clone()),
            binary(
                BinOp::UGt,
                binary(BinOp::Add, binary(BinOp::Add, i, ptr), c32(3)),
                len,
            ),
        ];
        assert!(s.check(&cs).is_unsat());
    }

    #[test]
    fn satisfiable_chain_produces_model() {
        // i < hl with hl derived from packet byte 0: needs byte0's low nibble
        // large enough. The solver must find such a packet.
        let s = Solver::new();
        let hl = binary(
            BinOp::Mul,
            cast(
                CastKind::ZExt,
                32,
                binary(BinOp::And, pkt_byte(0), constant(BitVec::u8(0x0f))),
            ),
            c32(4),
        );
        let cs = vec![
            binary(BinOp::ULt, c32(20), hl.clone()),
            binary(BinOp::ULe, hl, pkt_len()),
        ];
        match s.check(&cs) {
            SolverResult::Sat(m) => {
                let ihl = (m.packet[0] & 0x0f) as u32;
                assert!(ihl * 4 > 20);
                assert!(m.packet_len >= ihl * 4);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn havocked_counter_chain_is_unsat() {
        // The shape produced by loop decomposition: a 32-bit havocked loop
        // counter bounded only by the loop condition. This is the
        // CheckIPHeader checksum-loop discharge:
        //   idx < ihl*2, hl = ihl*4 <= len, crash: 2*idx + 2 > len.
        let s = Solver::new();
        let idx: TermRef = Arc::new(Term::Var {
            id: VarId(9),
            width: 32,
        });
        let ihl = cast(
            CastKind::ZExt,
            32,
            binary(BinOp::And, pkt_byte(0), constant(BitVec::u8(0x0f))),
        );
        let len = pkt_len();
        let cs = vec![
            binary(
                BinOp::ULt,
                idx.clone(),
                binary(BinOp::Mul, ihl.clone(), c32(2)),
            ),
            binary(BinOp::ULe, binary(BinOp::Mul, ihl, c32(4)), len.clone()),
            binary(
                BinOp::UGt,
                binary(BinOp::Add, binary(BinOp::Mul, idx, c32(2)), c32(2)),
                len,
            ),
        ];
        assert!(s.check(&cs).is_unsat());
    }

    #[test]
    fn signed_contradiction_from_figure_one() {
        // in >= 0 (signed) && in < 0 (signed) over a 32-bit packet field.
        let s = Solver::new();
        let field = {
            // Build (pkt[0]<<24 | ... ) as the engine would; a single byte is
            // enough to exercise the signed logic here.
            cast(CastKind::ZExt, 32, pkt_byte(0))
        };
        let nonneg = binary(BinOp::SLe, c32(0), field.clone());
        let neg = binary(BinOp::SLt, field, c32(0));
        assert!(s.check(&[nonneg, neg]).is_unsat());
    }

    #[test]
    fn models_satisfy_packet_length_constraints() {
        let s = Solver::new();
        let cs = vec![
            binary(BinOp::UGe, pkt_len(), c32(34)),
            binary(BinOp::Eq, pkt_byte(12), constant(BitVec::u8(0x08))),
            binary(BinOp::Eq, pkt_byte(13), constant(BitVec::u8(0x00))),
        ];
        match s.check(&cs) {
            SolverResult::Sat(m) => {
                assert!(m.packet_len >= 34);
                assert_eq!(m.packet[12], 0x08);
                assert_eq!(m.packet[13], 0x00);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn ds_read_constraints_can_be_satisfied() {
        let s = Solver::new();
        let read = Arc::new(Term::DsRead {
            ds: dataplane_ir::DsId(0),
            key: c32(5),
            seq: 0,
            width: 8,
        });
        let c = binary(BinOp::Eq, read, constant(BitVec::u8(3)));
        match s.check(&[c]) {
            SolverResult::Sat(m) => assert_eq!(m.ds_reads.get(&(0, 0)), Some(&3)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_dominates_even_with_many_conjuncts() {
        let s = Solver::new();
        let mut cs = Vec::new();
        for i in 0..10 {
            cs.push(binary(BinOp::ULe, b32(i), c32(200)));
        }
        cs.push(binary(BinOp::Eq, pkt_byte(3), constant(BitVec::u8(7))));
        cs.push(binary(BinOp::Eq, pkt_byte(3), constant(BitVec::u8(8))));
        assert!(s.check(&cs).is_unsat());
    }

    #[test]
    fn sat_results_verify_under_evaluation() {
        // Whatever model the solver returns must make every constraint true.
        let s = Solver::new();
        let cs = vec![
            binary(BinOp::UGt, b32(8), c32(1)),
            binary(BinOp::ULt, b32(8), c32(5)),
            binary(BinOp::UGe, pkt_len(), c32(9)),
        ];
        match s.check(&cs) {
            SolverResult::Sat(m) => {
                for c in &cs {
                    assert!(eval(c, &m).unwrap().is_true());
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}

//! Soundness of the interval-only feasibility pre-filter.
//!
//! `interval_infeasible` runs only the cheap analytic prefix of the full
//! decision procedure, so its `true` verdicts must never contradict the
//! full solver: whenever the pre-filter declares a conjunction infeasible,
//! `Solver::check` must return `Unsat` on the same conjunction. The
//! property test below drives both through randomly built constraint
//! conjunctions over packet bytes.

use dataplane_ir::value::BitVec;
use dataplane_ir::BinOp;
use dataplane_symbex::term::{self, Term};
use dataplane_symbex::{interval_infeasible, Solver, TermRef};
use proptest::prelude::*;
use std::sync::Arc;

/// Build one comparison conjunct from 64 random bits: a packet-byte leaf
/// (possibly wrapped in an add or a mask) compared against a constant.
fn conjunct(p: u64) -> TermRef {
    let cmp = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::ULt,
        BinOp::ULe,
        BinOp::UGt,
        BinOp::UGe,
        BinOp::SLt,
        BinOp::SLe,
    ][(p % 8) as usize];
    let leaf: TermRef = Arc::new(Term::PacketByte(((p >> 3) % 3) as i64));
    let mixer = term::constant(BitVec::new(8, (p >> 8) & 0xff));
    let lhs = match (p >> 5) % 3 {
        0 => leaf,
        1 => term::binary(BinOp::Add, leaf, mixer),
        _ => term::binary(BinOp::And, leaf, mixer),
    };
    let rhs = term::constant(BitVec::new(8, (p >> 16) & 0xff));
    term::binary(cmp, lhs, rhs)
}

/// Build one conjunct biased towards the arithmetic pre-filter's domain:
/// mask/xor/shift/add-sub combinations compared against constants, and
/// offset comparisons between two leaves (`x + a <= y + b`) that feed the
/// difference-bound pass.
fn arith_conjunct(p: u64) -> TermRef {
    let cmp = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::ULt,
        BinOp::ULe,
        BinOp::UGt,
        BinOp::UGe,
    ][(p % 6) as usize];
    let x: TermRef = Arc::new(Term::PacketByte(((p >> 3) % 3) as i64));
    let y: TermRef = Arc::new(Term::PacketByte(((p >> 5) % 3) as i64));
    let c1 = term::constant(BitVec::new(8, (p >> 8) & 0xff));
    let c2 = term::constant(BitVec::new(8, (p >> 16) & 0xff));
    let shift = term::constant(BitVec::new(8, (p >> 24) & 0x7));
    let lhs = match (p >> 27) % 7 {
        0 => term::binary(BinOp::And, x, c1),
        1 => term::binary(BinOp::Or, x, c1),
        2 => term::binary(BinOp::Xor, x, c1),
        3 => term::binary(BinOp::Add, x, c1),
        4 => term::binary(BinOp::Sub, x, c1),
        5 => term::binary(BinOp::Shl, x, shift),
        _ => term::binary(BinOp::LShr, x, shift),
    };
    let rhs = match (p >> 30) % 3 {
        0 => c2,
        1 => y,
        _ => term::binary(BinOp::Add, y, c2),
    };
    term::binary(cmp, lhs, rhs)
}

proptest! {
    /// The pre-filter's `true` verdict always agrees with the full solver.
    #[test]
    fn prefilter_never_contradicts_full_solver(
        picks in proptest::collection::vec(any::<u64>(), 1..6)
    ) {
        let constraints: Vec<TermRef> = picks.iter().map(|&p| conjunct(p)).collect();
        if interval_infeasible(&constraints) {
            prop_assert!(
                Solver::new().check(&constraints).is_unsat(),
                "pre-filter declared a solver-satisfiable conjunction infeasible: {constraints:?}"
            );
        }
    }

    /// Same soundness property over the arithmetic fragment the
    /// known-bits/difference-bound passes were built for.
    #[test]
    fn arithmetic_prefilter_never_contradicts_full_solver(
        picks in proptest::collection::vec(any::<u64>(), 1..6)
    ) {
        let constraints: Vec<TermRef> = picks.iter().map(|&p| arith_conjunct(p)).collect();
        if interval_infeasible(&constraints) {
            prop_assert!(
                Solver::new().check(&constraints).is_unsat(),
                "pre-filter declared a solver-satisfiable conjunction infeasible: {constraints:?}"
            );
        }
    }
}

#[test]
fn prefilter_catches_disjoint_intervals() {
    let byte: TermRef = Arc::new(Term::PacketByte(0));
    let constraints = vec![
        term::binary(BinOp::ULt, byte.clone(), term::constant(BitVec::new(8, 3))),
        term::binary(BinOp::UGt, byte, term::constant(BitVec::new(8, 5))),
    ];
    assert!(interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_unsat());
}

#[test]
fn prefilter_catches_bitmask_congruence_conflict() {
    // (x & 1) == 0 forces bit 0 of x to 0; (x | 0xfe) == 0xff forces it to
    // 1. Neither intervals nor contradiction pairs see this — the
    // known-bits pass must.
    let x: TermRef = Arc::new(Term::PacketByte(0));
    let constraints = vec![
        term::binary(
            BinOp::Eq,
            term::binary(BinOp::And, x.clone(), term::constant(BitVec::new(8, 1))),
            term::constant(BitVec::new(8, 0)),
        ),
        term::binary(
            BinOp::Eq,
            term::binary(BinOp::Or, x, term::constant(BitVec::new(8, 0xfe))),
            term::constant(BitVec::new(8, 0xff)),
        ),
    ];
    assert!(interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_unsat());
}

#[test]
fn prefilter_catches_difference_bound_cycle() {
    // x + 1 <= y and y + 1 <= x cannot both hold; both terms stay
    // full-range individually, so only the difference-bound pass sees it.
    let x: TermRef = Arc::new(Term::PacketByte(0));
    let y: TermRef = Arc::new(Term::PacketByte(1));
    let lo =
        |t: &TermRef| term::binary(BinOp::ULe, t.clone(), term::constant(BitVec::new(8, 0x7f)));
    let constraints = vec![
        // Keep both bytes below 0x80 so the +1 offsets provably never wrap.
        lo(&x),
        lo(&y),
        term::binary(
            BinOp::ULe,
            term::binary(BinOp::Add, x.clone(), term::constant(BitVec::new(8, 1))),
            y.clone(),
        ),
        term::binary(
            BinOp::ULe,
            term::binary(BinOp::Add, y, term::constant(BitVec::new(8, 1))),
            x,
        ),
    ];
    assert!(interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_unsat());
}

#[test]
fn prefilter_passes_satisfiable_conjunctions() {
    let byte: TermRef = Arc::new(Term::PacketByte(0));
    let constraints = vec![
        term::binary(BinOp::UGe, byte.clone(), term::constant(BitVec::new(8, 3))),
        term::binary(BinOp::ULe, byte, term::constant(BitVec::new(8, 5))),
    ];
    assert!(!interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_sat());
}

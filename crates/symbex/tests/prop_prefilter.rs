//! Soundness of the interval-only feasibility pre-filter.
//!
//! `interval_infeasible` runs only the cheap analytic prefix of the full
//! decision procedure, so its `true` verdicts must never contradict the
//! full solver: whenever the pre-filter declares a conjunction infeasible,
//! `Solver::check` must return `Unsat` on the same conjunction. The
//! property test below drives both through randomly built constraint
//! conjunctions over packet bytes.

use dataplane_ir::value::BitVec;
use dataplane_ir::BinOp;
use dataplane_symbex::term::{self, Term};
use dataplane_symbex::{interval_infeasible, Solver, TermRef};
use proptest::prelude::*;
use std::sync::Arc;

/// Build one comparison conjunct from 64 random bits: a packet-byte leaf
/// (possibly wrapped in an add or a mask) compared against a constant.
fn conjunct(p: u64) -> TermRef {
    let cmp = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::ULt,
        BinOp::ULe,
        BinOp::UGt,
        BinOp::UGe,
        BinOp::SLt,
        BinOp::SLe,
    ][(p % 8) as usize];
    let leaf: TermRef = Arc::new(Term::PacketByte(((p >> 3) % 3) as i64));
    let mixer = term::constant(BitVec::new(8, (p >> 8) & 0xff));
    let lhs = match (p >> 5) % 3 {
        0 => leaf,
        1 => term::binary(BinOp::Add, leaf, mixer),
        _ => term::binary(BinOp::And, leaf, mixer),
    };
    let rhs = term::constant(BitVec::new(8, (p >> 16) & 0xff));
    term::binary(cmp, lhs, rhs)
}

proptest! {
    /// The pre-filter's `true` verdict always agrees with the full solver.
    #[test]
    fn prefilter_never_contradicts_full_solver(
        picks in proptest::collection::vec(any::<u64>(), 1..6)
    ) {
        let constraints: Vec<TermRef> = picks.iter().map(|&p| conjunct(p)).collect();
        if interval_infeasible(&constraints) {
            prop_assert!(
                Solver::new().check(&constraints).is_unsat(),
                "pre-filter declared a solver-satisfiable conjunction infeasible: {constraints:?}"
            );
        }
    }
}

#[test]
fn prefilter_catches_disjoint_intervals() {
    let byte: TermRef = Arc::new(Term::PacketByte(0));
    let constraints = vec![
        term::binary(BinOp::ULt, byte.clone(), term::constant(BitVec::new(8, 3))),
        term::binary(BinOp::UGt, byte, term::constant(BitVec::new(8, 5))),
    ];
    assert!(interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_unsat());
}

#[test]
fn prefilter_passes_satisfiable_conjunctions() {
    let byte: TermRef = Arc::new(Term::PacketByte(0));
    let constraints = vec![
        term::binary(BinOp::UGe, byte.clone(), term::constant(BitVec::new(8, 3))),
        term::binary(BinOp::ULe, byte, term::constant(BitVec::new(8, 5))),
    ];
    assert!(!interval_infeasible(&constraints));
    assert!(Solver::new().check(&constraints).is_sat());
}

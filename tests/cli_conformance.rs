//! Cross-process proof of the conformance subsystem, through the real
//! `vericlick` binary:
//!
//! * `vericlick run --matrix --det-json M` then `vericlick conform M`
//!   replays every preset counterexample from the saved report and exits
//!   0 (all of them reproduce concretely),
//! * `vericlick fuzz` with a fixed seed writes a byte-identical
//!   deterministic report whether the shards run on the in-process pool
//!   or sharded over a 2-worker stdio fleet.

use std::path::PathBuf;
use std::process::Command;

fn vericlick() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vericlick"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vericlick-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn saved_matrix_counterexamples_replay_through_conform() {
    let dir = temp_dir("conform");
    let matrix_path = dir.join("matrix.json");

    let status = vericlick()
        .args(["run", "--matrix", "--det-json"])
        .arg(&matrix_path)
        .status()
        .expect("spawn vericlick run");
    // The preset matrix contains violated scenarios, so `run` exits 1 —
    // that is its verdict, not a failure to produce the report.
    assert!(matrix_path.exists(), "matrix report written ({status})");

    let output = vericlick()
        .arg("conform")
        .arg(&matrix_path)
        .output()
        .expect("spawn vericlick conform");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "conform found mismatches:\n{stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("0 mismatches"),
        "summary line names the mismatch count:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_report_is_byte_identical_in_process_and_on_a_worker_fleet() {
    let dir = temp_dir("fuzz-fleet");
    let local_path = dir.join("local.json");
    let fleet_path = dir.join("fleet.json");
    let seed_args = ["--seed", "5", "--packets", "4000"];

    let status = vericlick()
        .arg("fuzz")
        .args(seed_args)
        .args(["--threads", "2", "--det-json"])
        .arg(&local_path)
        .status()
        .expect("spawn vericlick fuzz");
    assert!(status.success(), "in-process fuzz failed: {status}");

    let status = vericlick()
        .arg("fuzz")
        .args(seed_args)
        .args(["--workers", "2", "--det-json"])
        .arg(&fleet_path)
        .status()
        .expect("spawn vericlick fuzz --workers");
    assert!(status.success(), "fleet fuzz failed: {status}");

    let local = std::fs::read_to_string(&local_path).expect("local report");
    let fleet = std::fs::read_to_string(&fleet_path).expect("fleet report");
    assert_eq!(
        local, fleet,
        "sharding over subprocess workers must not change the report"
    );
    assert!(local.contains("\"seed\":5"), "seed recorded in the report");
    assert!(
        local.contains("\"contradictions\":0"),
        "no proven preset may be contradicted:\n{local}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Workspace-level integration tests: exercise the whole stack (packet
//! substrate → dataplane → symbolic engine → verifier) through the public
//! facade crate, the way a downstream user would.

use std::net::Ipv4Addr;
use vericlick::net::{PacketBuilder, WorkloadGen};
use vericlick::pipeline::presets::{
    firewall_pipeline, ip_router_pipeline, linear_router_pipeline, middlebox_pipeline,
    IP_ROUTER_CONFIG,
};
use vericlick::pipeline::{parse_config, run_parallel, run_single_threaded, ModelRuntime};
use vericlick::verifier::{Property, Verifier};

#[test]
fn config_text_and_programmatic_router_verify_identically() {
    let mut verifier = Verifier::new();
    let from_config = parse_config(IP_ROUTER_CONFIG).unwrap();
    let report_config = verifier.verify(&from_config, &Property::CrashFreedom);
    let report_code = verifier.verify(&ip_router_pipeline(), &Property::CrashFreedom);
    assert!(report_config.is_proven(), "{report_config}");
    assert!(report_code.is_proven(), "{report_code}");
    assert_eq!(
        report_config.stats.suspects, report_code.stats.suspects,
        "both routers must have the same Step-1 suspects"
    );
}

#[test]
fn proven_pipeline_survives_a_large_adversarial_replay() {
    // The proof says no packet can crash the router; hammer it with a large
    // adversarial workload as a sanity check of that claim.
    let mut router = ip_router_pipeline();
    for packet in WorkloadGen::adversarial(0xE2E).batch(20_000) {
        let outcome = router.push(packet);
        assert!(!outcome.is_crash(), "{outcome:?}");
    }
}

#[test]
fn native_and_model_execution_agree_across_the_workspace() {
    // Differential testing at the pipeline level: the native element
    // implementations and their IR models must process identical packets
    // identically (this is the trust argument for verifying the models).
    let mut native = ip_router_pipeline();
    let model_pipeline = ip_router_pipeline();
    let mut models = ModelRuntime::new(&model_pipeline);
    for packet in WorkloadGen::adversarial(0xD1FF).batch(2_000) {
        let n = native.push(packet.clone());
        let m = models.push(packet);
        assert_eq!(n.hops, m.hops);
        assert_eq!(
            n.is_crash(),
            matches!(
                m.disposition,
                vericlick::pipeline::Disposition::Crashed { .. }
            )
        );
    }
}

#[test]
fn parallel_and_serial_runtimes_count_the_same_packets() {
    let packets = WorkloadGen::clean(0xABC).batch(4_000);
    let mut serial_pipeline = ip_router_pipeline();
    let serial = run_single_threaded(&mut serial_pipeline, packets.clone());
    let parallel = run_parallel(ip_router_pipeline, packets, 4);
    assert_eq!(serial.stats.injected, parallel.stats.injected);
    assert_eq!(serial.stats.crashed, 0);
    assert_eq!(parallel.stats.crashed, 0);
    // Element-private state is replicated per thread, so forwarding counts
    // are identical for stateless paths.
    assert_eq!(serial.stats.dropped, parallel.stats.dropped);
}

#[test]
fn verifier_bound_is_respected_by_a_million_instruction_budget() {
    let mut verifier = Verifier::new();
    let bound = verifier.max_instructions(&linear_router_pipeline());
    assert!(bound.max_instructions > 100);
    assert!(bound.max_instructions < 1_000_000);
}

#[test]
fn middlebox_translation_behaviour_matches_its_proof() {
    // The middlebox is proven crash-free; concretely it must also translate
    // consistently (same flow, same external port).
    let mut verifier = Verifier::new();
    assert!(verifier
        .verify(&middlebox_pipeline(), &Property::CrashFreedom)
        .is_proven());

    let mut pipeline = middlebox_pipeline();
    let packet = || {
        PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            4444,
            53,
            b"q",
        )
        .build()
    };
    let a = pipeline.push(packet());
    let b = pipeline.push(packet());
    assert_eq!(a.hops, b.hops);
}

#[test]
fn reachability_verdicts_match_concrete_routing() {
    let property_for = |dst: Ipv4Addr| Property::Reachability {
        dst,
        dst_offset: 30,
        deliver_to: vec!["out0".to_string(), "out1".to_string()],
        may_drop: vec!["strip".to_string(), "chk".to_string(), "ttl".to_string()],
    };

    // Routed destination: proof, and the concrete packet is delivered.
    let mut verifier = Verifier::new();
    let report = verifier.verify(
        &firewall_pipeline(vec![]),
        &property_for(Ipv4Addr::new(10, 1, 2, 3)),
    );
    assert!(report.is_proven(), "{report}");
    let mut pipeline = firewall_pipeline(vec![]);
    let outcome = pipeline.push(
        PacketBuilder::udp(
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(10, 1, 2, 3),
            1000,
            53,
            b"x",
        )
        .build(),
    );
    let last = *outcome.hops.last().unwrap();
    assert_eq!(pipeline.node(last).name, "out0");

    // Unrouted destination: violation with a confirmed witness.
    let report = verifier.verify(
        &firewall_pipeline(vec![]),
        &property_for(Ipv4Addr::new(203, 0, 113, 50)),
    );
    assert!(report.is_violated(), "{report}");
}

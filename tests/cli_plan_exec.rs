//! Cross-process proof of the plan/execute split, through the real
//! `vericlick` binary:
//!
//! * process A (`vericlick plan`) serialises the preset-matrix job plan,
//! * process B (`vericlick exec-plan --workers 2`) reads the file and
//!   executes it, shipping the explore jobs to **worker subprocesses**
//!   over stdio,
//! * the deterministic report B writes is byte-identical to serving the
//!   same request in *this* process, with the preset verdict mix
//!   (15 proven / 5 violated / 0 unknown) preserved.
//!
//! This is the acceptance test for the remote-worker path: three distinct
//! processes (planner, executor, workers) cooperating through nothing but
//! the serialised artifacts.

use std::path::PathBuf;
use std::process::Command;
use vericlick::orchestrator::{preset_scenarios, VerifyRequest, VerifyService};

fn vericlick() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vericlick"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vericlick-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn plan_in_one_process_execute_in_another_byte_identical() {
    let dir = temp_dir("plan-exec");
    let plan_path = dir.join("plan.json");
    let det_path = dir.join("deterministic.json");

    // Process A: serialise the plan.
    let status = vericlick()
        .args(["plan", "--matrix", "-o"])
        .arg(&plan_path)
        .status()
        .expect("spawn vericlick plan");
    assert!(status.success(), "plan failed: {status}");
    let plan_text = std::fs::read_to_string(&plan_path).expect("plan file");
    assert!(
        plan_text.contains("\"schema\":2"),
        "plan is schema-versioned"
    );

    // Process B: execute it on subprocess workers (which are processes
    // C, D, ... speaking the stdio protocol).
    let status = vericlick()
        .arg("exec-plan")
        .arg(&plan_path)
        .args(["--workers", "2", "--det-json"])
        .arg(&det_path)
        .status()
        .expect("spawn vericlick exec-plan");
    assert!(status.success(), "exec-plan failed: {status}");

    // This process: serve the same request directly.
    let service = VerifyService::new().with_threads(4);
    let served = service
        .serve(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .expect("serve matrix");
    assert_eq!(
        served.verdict_counts(),
        (15, 5, 0),
        "preset verdict mix drifted"
    );

    let executed = std::fs::read_to_string(&det_path).expect("deterministic report");
    assert_eq!(
        executed,
        served.deterministic_json().to_text(),
        "cross-process execution must be byte-identical to in-process serving"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_pipes_into_exec_plan_in_process_mode() {
    use std::io::Write;
    use std::process::Stdio;

    // `vericlick plan --matrix | vericlick exec-plan - --in-process`,
    // spelled out: capture A's stdout, feed it to B's stdin.
    let plan = vericlick()
        .args(["plan", "--matrix"])
        .stderr(Stdio::null())
        .output()
        .expect("spawn vericlick plan");
    assert!(plan.status.success());

    let mut exec = vericlick()
        .args(["exec-plan", "-", "--in-process", "--threads", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vericlick exec-plan");
    exec.stdin
        .take()
        .expect("stdin piped")
        .write_all(&plan.stdout)
        .expect("pipe plan");
    let out = exec.wait_with_output().expect("exec-plan output");
    assert!(out.status.success(), "exec-plan failed: {}", out.status);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("20 scenarios (15 proven, 5 violated, 0 unknown)"),
        "unexpected exec-plan output:\n{text}"
    );
}

/// The loopback-TCP acceptance test: `vericlick worker --listen` processes
/// on OS-chosen ports, a planner process, and an executor process wired to
/// them with `--workers addr,addr` — the deterministic report must equal
/// in-process serving byte for byte, with both explorations and Step-2
/// compositions executed by the socket workers.
#[test]
fn exec_plan_over_loopback_tcp_workers_byte_identical() {
    use std::io::BufRead;
    use std::process::Stdio;

    // Start two socket workers; parse the announced address of each. The
    // stdout readers stay alive for the whole test so worker logging never
    // hits a closed pipe.
    let mut workers = Vec::new();
    let mut readers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let mut child = vericlick()
            .args(["worker", "--listen", "127.0.0.1:0", "--capacity", "2"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn vericlick worker --listen");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("worker announces its address")
                .expect("read worker stdout");
            if let Some(addr) = line.trim().strip_prefix("worker: listening on ") {
                break addr.to_string();
            }
        };
        addrs.push(addr);
        readers.push(lines);
        workers.push(child);
    }

    let dir = temp_dir("tcp-exec");
    let plan_path = dir.join("plan.json");
    let det_path = dir.join("deterministic.json");

    // Planner process.
    let status = vericlick()
        .args(["plan", "--matrix", "-o"])
        .arg(&plan_path)
        .status()
        .expect("spawn vericlick plan");
    assert!(status.success(), "plan failed: {status}");

    // Executor process, dispatching to the TCP workers.
    let status = vericlick()
        .arg("exec-plan")
        .arg(&plan_path)
        .args(["--workers", &addrs.join(","), "--det-json"])
        .arg(&det_path)
        .status()
        .expect("spawn vericlick exec-plan");
    assert!(status.success(), "exec-plan failed: {status}");

    // Reference: serve the same request in this process.
    let service = VerifyService::new().with_threads(4);
    let served = service
        .serve(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .expect("serve matrix");
    assert_eq!(served.verdict_counts(), (15, 5, 0));
    let executed = std::fs::read_to_string(&det_path).expect("deterministic report");
    assert_eq!(
        executed,
        served.deterministic_json().to_text(),
        "TCP-worker execution must be byte-identical to in-process serving"
    );

    for mut worker in workers {
        let _ = worker.kill();
        let _ = worker.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_exits_zero_and_no_args_exits_two() {
    let status = vericlick().arg("--help").status().expect("spawn");
    assert!(status.success(), "--help must exit 0, got {status}");
    let status = vericlick().status().expect("spawn");
    assert_eq!(status.code(), Some(2), "no subcommand must exit 2");
}

#[test]
fn watch_demo_smoke() {
    let status = vericlick()
        .args(["watch", "--demo", "--threads", "2"])
        .status()
        .expect("spawn vericlick watch");
    assert!(status.success(), "watch --demo failed: {status}");
}

//! Workspace-level property-based tests.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use vericlick::net::{Packet, PacketBuilder};
use vericlick::pipeline::presets::{ip_router_pipeline, middlebox_pipeline};
use vericlick::pipeline::{Disposition, ModelRuntime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The proven-crash-free router never crashes, whatever bytes arrive.
    #[test]
    fn router_never_crashes_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut router = ip_router_pipeline();
        let outcome = router.push(Packet::from_bytes(bytes));
        prop_assert!(!outcome.is_crash());
    }

    /// Native and model execution agree on arbitrary (mostly malformed)
    /// frames.
    #[test]
    fn native_and_model_agree_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut native = ip_router_pipeline();
        let pipeline = ip_router_pipeline();
        let mut model = ModelRuntime::new(&pipeline);
        let n = native.push(Packet::from_bytes(bytes.clone()));
        let m = model.push(Packet::from_bytes(bytes));
        prop_assert_eq!(n.hops, m.hops);
    }

    /// Well-formed UDP packets to routed destinations always traverse the
    /// full router pipeline (they are never dropped early), and the TTL is
    /// decremented by exactly one.
    #[test]
    fn valid_packets_are_forwarded_with_ttl_decremented(
        src in 1u8..255,
        dst in 1u8..255,
        sport in 1024u16..65000,
        ttl in 2u8..255,
    ) {
        let mut router = ip_router_pipeline();
        let packet = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, src),
            Ipv4Addr::new(192, 168, 0, dst),
            sport,
            53,
            b"payload",
        )
        .ttl(ttl)
        .build();
        let outcome = router.push(packet);
        prop_assert_eq!(outcome.hops.len(), 8, "full path expected");
        prop_assert!(!outcome.is_crash());
    }

    /// The stateful middlebox never crashes while its tables fill up.
    #[test]
    fn middlebox_is_stable_across_flow_churn(seeds in proptest::collection::vec(1u8..250, 1..40)) {
        let mut pipeline = middlebox_pipeline();
        for (i, s) in seeds.iter().enumerate() {
            let packet = PacketBuilder::udp(
                Ipv4Addr::new(10, 0, (i % 4) as u8, *s),
                Ipv4Addr::new(8, 8, 8, 8),
                1024 + i as u16,
                53,
                b"q",
            )
            .build();
            let outcome = pipeline.push(packet);
            let dropped_at_sink = matches!(outcome.disposition, Disposition::Dropped { .. });
            prop_assert!(dropped_at_sink);
            prop_assert!(!outcome.is_crash());
        }
    }
}

//! Workspace-level property-based tests.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;
use vericlick::ir::{BinOp, BitVec, CastKind};
use vericlick::net::{Packet, PacketBuilder};
use vericlick::pipeline::presets::{ip_router_pipeline, middlebox_pipeline};
use vericlick::pipeline::{Disposition, ModelRuntime};
use vericlick::symbex::term::{self, eval, Assignment, Term, TermRef, VarId};
use vericlick::symbex::{Solver, SolverResult};

// ---------------------------------------------------------------------------
// Solver soundness over random constraint systems
// ---------------------------------------------------------------------------

/// Number of 16-bit variables the random systems range over.
const VARS: u32 = 3;
/// Number of packet bytes the random systems may read.
const PACKET_BYTES: i64 = 4;

/// Decode one random 16-bit expression from a stream of raw words (the
/// words come from proptest, so every generated case is reproducible).
/// `depth` bounds the recursion.
fn decode_expr(words: &mut impl Iterator<Item = u64>, depth: u32) -> TermRef {
    let word = words.next().unwrap_or(0);
    let leaf_only = depth == 0;
    match word % if leaf_only { 3 } else { 5 } {
        0 => Arc::new(Term::Var {
            id: VarId((word >> 8) as u32 % VARS),
            width: 16,
        }),
        1 => term::cast(
            CastKind::ZExt,
            16,
            Arc::new(Term::PacketByte((word >> 8) as i64 % PACKET_BYTES)),
        ),
        2 => {
            // Mix small and full-range constants: contradictions near
            // interval bounds are the interesting cases.
            let value = if word & 0x80 == 0 {
                (word >> 8) & 0x3f
            } else {
                (word >> 8) & 0xffff
            };
            term::constant(BitVec::new(16, value))
        }
        3 => {
            // A general binary node over two sub-expressions.
            const OPS: [BinOp; 6] = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
            ];
            let op = OPS[(word >> 8) as usize % OPS.len()];
            let a = decode_expr(words, depth - 1);
            let b = decode_expr(words, depth - 1);
            term::binary(op, a, b)
        }
        _ => {
            // Shift/mask by a constant — the shapes the widened linear
            // fragment accepts (`x << k`, `x & mask`, `x >> k`).
            const OPS: [BinOp; 3] = [BinOp::Shl, BinOp::LShr, BinOp::And];
            let op = OPS[(word >> 8) as usize % OPS.len()];
            let k = (word >> 16) % 12;
            let rhs = match op {
                BinOp::And => BitVec::new(16, (1u64 << (k + 1)) - 1),
                _ => BitVec::new(16, k),
            };
            term::binary(op, decode_expr(words, depth - 1), term::constant(rhs))
        }
    }
}

/// Decode one comparison atom (the constraint shape the solver consumes).
fn decode_atom(words: &mut impl Iterator<Item = u64>) -> TermRef {
    const CMPS: [BinOp; 6] = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::ULt,
        BinOp::ULe,
        BinOp::UGt,
        BinOp::UGe,
    ];
    let op = CMPS[words.next().unwrap_or(0) as usize % CMPS.len()];
    let a = decode_expr(words, 2);
    let b = decode_expr(words, 2);
    term::binary(op, a, b)
}

/// A cheap deterministic RNG (splitmix-style) for the Unsat cross-check.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_assignment(state: &mut u64) -> Assignment {
    let mut a = Assignment {
        packet: (0..PACKET_BYTES).map(|_| next_rand(state) as u8).collect(),
        packet_len: PACKET_BYTES as u32,
        ..Assignment::default()
    };
    for i in 0..VARS {
        // Mix small and full-range values: constraints built from small
        // constants are satisfiable mostly near the bottom of the range.
        let raw = next_rand(state);
        let value = if raw & 1 == 0 { raw >> 48 } else { raw & 0x3f };
        a.vars.insert(VarId(i), value & 0xffff);
    }
    a
}

fn satisfies(constraints: &[TermRef], a: &Assignment) -> bool {
    constraints
        .iter()
        .all(|c| eval(c, a).map(|v| v.is_true()).unwrap_or(false))
}

/// Re-derive the atoms of case `case` of `solver_verdicts_are_sound`-style
/// systems from a seed, for the generator-quality test below.
fn seeded_atoms(seed: u64) -> Vec<TermRef> {
    let mut state = seed;
    let count = 1 + (next_rand(&mut state) as usize % 4);
    let words: Vec<u64> = (0..256).map(|_| next_rand(&mut state)).collect();
    let mut words = words.into_iter();
    (0..count).map(|_| decode_atom(&mut words)).collect()
}

/// The random systems must exercise every verdict: a generator drifting into
/// all-Sat (or all-Unsat) territory would silently gut the soundness
/// properties below.
#[test]
fn random_systems_cover_all_verdicts() {
    let solver = Solver::new();
    let (mut sat, mut unsat) = (0, 0);
    for seed in 0..200u64 {
        match solver.check(&seeded_atoms(seed * 0x9E37_79B9)) {
            SolverResult::Sat(_) => sat += 1,
            SolverResult::Unsat => unsat += 1,
            SolverResult::Unknown => {}
        }
    }
    assert!(sat >= 20, "generator too contradictory: {sat} Sat of 200");
    assert!(
        unsat >= 20,
        "generator too satisfiable: {unsat} Unsat of 200"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The proven-crash-free router never crashes, whatever bytes arrive.
    #[test]
    fn router_never_crashes_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut router = ip_router_pipeline();
        let outcome = router.push(Packet::from_bytes(bytes));
        prop_assert!(!outcome.is_crash());
    }

    /// Native and model execution agree on arbitrary (mostly malformed)
    /// frames.
    #[test]
    fn native_and_model_agree_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut native = ip_router_pipeline();
        let pipeline = ip_router_pipeline();
        let mut model = ModelRuntime::new(&pipeline);
        let n = native.push(Packet::from_bytes(bytes.clone()));
        let m = model.push(Packet::from_bytes(bytes));
        prop_assert_eq!(n.hops, m.hops);
    }

    /// Well-formed UDP packets to routed destinations always traverse the
    /// full router pipeline (they are never dropped early), and the TTL is
    /// decremented by exactly one.
    #[test]
    fn valid_packets_are_forwarded_with_ttl_decremented(
        src in 1u8..255,
        dst in 1u8..255,
        sport in 1024u16..65000,
        ttl in 2u8..255,
    ) {
        let mut router = ip_router_pipeline();
        let packet = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, src),
            Ipv4Addr::new(192, 168, 0, dst),
            sport,
            53,
            b"payload",
        )
        .ttl(ttl)
        .build();
        let outcome = router.push(packet);
        prop_assert_eq!(outcome.hops.len(), 8, "full path expected");
        prop_assert!(!outcome.is_crash());
    }

    /// Soundness of the analytic stages, both directions:
    /// * `Unsat` (decided by contradiction pairs, interval propagation, or
    ///   Fourier–Motzkin) is never contradicted by a randomized model
    ///   search over the same constraints;
    /// * every `Sat` model concretely evaluates every constraint to true
    ///   (the solver promises verified models, not heuristic guesses).
    #[test]
    fn solver_verdicts_are_sound(
        words in proptest::collection::vec(any::<u64>(), 4..60),
        atom_count in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut words = words.into_iter().cycle().take(256);
        let atoms: Vec<TermRef> = (0..atom_count).map(|_| decode_atom(&mut words)).collect();
        let solver = Solver::new();
        match solver.check(&atoms) {
            SolverResult::Sat(model) => {
                for c in &atoms {
                    let value = eval(c, &model);
                    prop_assert_eq!(
                        value.map(|v| v.is_true()), Some(true),
                        "Sat model does not satisfy {}", c
                    );
                }
            }
            SolverResult::Unsat => {
                let mut state = seed;
                for _ in 0..200 {
                    let candidate = random_assignment(&mut state);
                    prop_assert!(
                        !satisfies(&atoms, &candidate),
                        "solver declared Unsat, but {:?} satisfies the system",
                        candidate
                    );
                }
            }
            // Unknown makes no claim in either direction.
            SolverResult::Unknown => {}
        }
    }

    /// Equalities with a known solution must never be declared Unsat: pick
    /// a concrete witness first, then build constraints it satisfies.
    #[test]
    fn satisfiable_by_construction_is_never_unsat(
        words in proptest::collection::vec(any::<u64>(), 4..60),
        expr_count in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let witness = random_assignment(&mut state);
        let mut words = words.into_iter().cycle().take(256);
        let constraints: Vec<TermRef> = (0..expr_count)
            .filter_map(|_| {
                let lhs = decode_expr(&mut words, 2);
                let value = eval(&lhs, &witness)?;
                Some(term::binary(BinOp::Eq, lhs, term::constant(value)))
            })
            .collect();
        prop_assert!(!constraints.is_empty());
        let solver = Solver::new();
        prop_assert!(
            !solver.check(&constraints).is_unsat(),
            "solver declared a witnessed system Unsat"
        );
    }

    /// The stateful middlebox never crashes while its tables fill up.
    #[test]
    fn middlebox_is_stable_across_flow_churn(seeds in proptest::collection::vec(1u8..250, 1..40)) {
        let mut pipeline = middlebox_pipeline();
        for (i, s) in seeds.iter().enumerate() {
            let packet = PacketBuilder::udp(
                Ipv4Addr::new(10, 0, (i % 4) as u8, *s),
                Ipv4Addr::new(8, 8, 8, 8),
                1024 + i as u16,
                53,
                b"q",
            )
            .build();
            let outcome = pipeline.push(packet);
            let dropped_at_sink = matches!(outcome.disposition, Disposition::Dropped { .. });
            prop_assert!(dropped_at_sink);
            prop_assert!(!outcome.is_crash());
        }
    }
}

//! End-to-end daemon tests through the real `vericlick` binary:
//!
//! * `vericlick serve` as a separate process, `vericlick worker --join`
//!   announcing itself to the running daemon, `vericlick client` running
//!   the preset matrix twice — the second run plans **zero** element
//!   jobs and ships **zero** summaries (the daemon's store and the
//!   worker's held-set are both warm), and both deterministic reports
//!   are byte-identical to in-process serving.
//! * the fleet-health path with a real signal: `kill -STOP` a worker
//!   process mid-plan and the plan still completes on the survivor,
//!   byte-identical — a stopped process keeps its sockets open, which
//!   only the heartbeat deadline can see through.

use std::io::{BufRead, BufReader, Lines};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use vericlick::orchestrator::{preset_scenarios, VerifyRequest, VerifyService};

fn vericlick() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vericlick"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vericlick-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A child process killed (SIGKILL — works on stopped processes too) when
/// the test ends, pass or fail.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Read `lines` until one starts with `prefix`; returns its suffix.
fn await_line(lines: &mut Lines<BufReader<ChildStdout>>, prefix: &str) -> String {
    loop {
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("stdout closed before a '{prefix}' line"))
            .expect("read child stdout");
        if let Some(rest) = line.trim().strip_prefix(prefix) {
            return rest.to_string();
        }
    }
}

/// Start `vericlick serve` on an OS-chosen port; returns the process, its
/// stdout reader (kept alive so logging never hits a closed pipe), and
/// the bound address.
fn spawn_serve(extra: &[&str]) -> (KillOnDrop, Lines<BufReader<ChildStdout>>, String) {
    let mut child = vericlick()
        .args(["serve", "--listen", "127.0.0.1:0", "--threads", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn vericlick serve");
    let stdout = child.stdout.take().expect("serve stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = await_line(&mut lines, "serve: listening on ");
    (KillOnDrop(child), lines, addr)
}

/// Start `vericlick worker --listen --join <daemon>`; returns once the
/// worker has announced itself to the daemon's fleet.
fn spawn_joined_worker(daemon: &str) -> (KillOnDrop, Lines<BufReader<ChildStdout>>) {
    let mut child = vericlick()
        .args(["worker", "--listen", "127.0.0.1:0", "--capacity", "2"])
        .args(["--join", daemon])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn vericlick worker --join");
    let stdout = child.stdout.take().expect("worker stdout");
    let mut lines = BufReader::new(stdout).lines();
    await_line(&mut lines, "worker: joined ");
    (KillOnDrop(child), lines)
}

fn reference_det_json() -> String {
    VerifyService::new()
        .with_threads(4)
        .serve(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
        .expect("serve matrix")
        .deterministic_json()
        .to_text()
}

#[test]
fn daemon_serves_two_runs_second_ships_nothing() {
    let (_daemon, _daemon_log, addr) = spawn_serve(&[]);
    let (_worker, _worker_log) = spawn_joined_worker(&addr);
    let dir = temp_dir("daemon-serve");

    let mut runs = Vec::new();
    for tag in ["first", "second"] {
        let json = dir.join(format!("{tag}.json"));
        let det = dir.join(format!("{tag}-det.json"));
        let status = vericlick()
            .args(["client", "--connect", &addr, "--matrix", "--json"])
            .arg(&json)
            .arg("--det-json")
            .arg(&det)
            .status()
            .expect("spawn vericlick client");
        assert!(status.success(), "client ({tag} run) failed: {status}");
        runs.push((
            std::fs::read_to_string(&json).expect("operational report"),
            std::fs::read_to_string(&det).expect("deterministic report"),
        ));
    }

    let reference = reference_det_json();
    assert_eq!(
        runs[0].1, reference,
        "daemon-served report must equal in-process serving byte for byte"
    );
    assert_eq!(runs[1].1, reference, "cache temperature must not show");

    // The second run benefits from both warmths: the daemon's store
    // (zero element explorations planned) and the worker's summary
    // held-set (zero summary documents shipped).
    assert!(
        runs[0].0.contains("\"summaries_shipped\":") && !runs[0].0.contains("\"explore_jobs\":0,"),
        "the first run explores: {}",
        runs[0].0
    );
    assert!(
        runs[1].0.contains("\"explore_jobs\":0,"),
        "the second run plans zero element jobs: {}",
        runs[1].0
    );
    assert!(
        runs[1].0.contains("\"summaries_shipped\":0,"),
        "the second run ships zero summaries: {}",
        runs[1].0
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigstopped_worker_never_blocks_plan_completion() {
    // A tight heartbeat so the suspect deadline (4 x interval) is well
    // inside the test budget.
    let (_daemon, _daemon_log, addr) = spawn_serve(&["--heartbeat-ms", "100"]);
    let (victim, mut victim_log) = spawn_joined_worker(&addr);
    let (_survivor, _survivor_log) = spawn_joined_worker(&addr);
    let dir = temp_dir("daemon-sigstop");
    let det = dir.join("det.json");

    // Start the client, wait for the victim worker to begin serving the
    // plan, then stop it cold. SIGSTOP keeps every socket open — the
    // failure mode a disconnect test cannot reproduce — so only the
    // heartbeat deadline can unstick the dispatch.
    let mut client = vericlick()
        .args(["client", "--connect", &addr, "--matrix", "--det-json"])
        .arg(&det)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn vericlick client");
    await_line(&mut victim_log, "worker: session from ");
    let stop = Command::new("kill")
        .args(["-STOP", &victim.0.id().to_string()])
        .status()
        .expect("send SIGSTOP");
    assert!(stop.success(), "kill -STOP failed: {stop}");

    let status = client.wait().expect("client exit");
    assert!(
        status.success(),
        "the plan must complete on the survivor: {status}"
    );
    assert_eq!(
        std::fs::read_to_string(&det).expect("deterministic report"),
        reference_det_json(),
        "a stopped worker must not change the report"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

//! Integration test of `vericlick watch <config.click>` on real files: an
//! mtime-polling loop over the service's rolling-baseline `Watch` API.
//! The test writes a config into a tempdir, starts the watcher, edits the
//! file mid-run, and asserts from the output that tick 0 verified
//! everything and the edit tick re-verified only the changed config.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn vericlick() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vericlick"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vericlick-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const MINI: &str = "cnt :: Counter();\nttl :: DecTTL();\ns :: Sink();\ncnt -> ttl -> s;\n";
const FILTER: &str =
    "strip :: EthDecap();\nchk :: CheckIPHeader();\nout :: Sink();\nstrip -> chk -> out;\n";

#[test]
fn watch_reverifies_only_the_edited_file() {
    let dir = temp_dir("watch-files");
    let mini = dir.join("mini.click");
    let filter = dir.join("filter.click");
    std::fs::write(&mini, MINI).unwrap();
    std::fs::write(&filter, FILTER).unwrap();

    let mut child = vericlick()
        .arg("watch")
        .arg(&mini)
        .arg(&filter)
        .args(["--poll-ms", "100", "--max-polls", "600", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vericlick watch");

    let stdout = child.stdout.take().expect("watch stdout");
    let mut lines = BufReader::new(stdout).lines();

    // Tick 0: the first sight of both configs verifies everything
    // (2 configs × crash-freedom + bounded-instructions = 4 scenarios).
    let tick0 = loop {
        let line = lines.next().expect("watch emits tick 0").unwrap();
        if line.starts_with("watch tick 0:") {
            break line;
        }
    };
    assert!(
        tick0.contains("verified 4 scenarios"),
        "tick 0 verifies everything: {tick0}"
    );

    // Edit one file; ensure the change is visible to the mtime poll.
    std::thread::sleep(Duration::from_millis(50));
    std::fs::write(&mini, MINI.replace("DecTTL()", "Counter()")).unwrap();

    // The next tick re-verifies only the edited config's 2 scenarios.
    let tick1 = loop {
        let line = lines.next().expect("watch emits the edit tick").unwrap();
        if line.starts_with("watch tick 1:") {
            break line;
        }
    };
    assert!(
        tick1.contains("re-verified 2 scenarios (2 skipped)"),
        "the edit tick re-verifies only the edited config: {tick1}"
    );

    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_without_files_or_demo_is_a_usage_error() {
    let status = vericlick()
        .arg("watch")
        .stderr(Stdio::null())
        .status()
        .expect("spawn");
    assert_eq!(status.code(), Some(2));
}

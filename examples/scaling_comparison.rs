//! E3 of the paper: decomposed verification scales roughly linearly with
//! pipeline length, while monolithic whole-pipeline symbolic execution stops
//! completing as soon as the loop-heavy IP-options element joins the chain —
//! the "18 minutes vs. more than 12 hours" comparison reproduced as a shape.
//!
//! Run with `cargo run --release --example scaling_comparison`.

use std::time::{Duration, Instant};
use vericlick::pipeline::elements::*;
use vericlick::pipeline::{Element, PipelineBuilder};
use vericlick::verifier::{explore_monolithic, MonolithicConfig, Property, Verifier};

fn chain(k: usize) -> vericlick::pipeline::Pipeline {
    let makers: Vec<(&str, Box<dyn Element>)> = vec![
        ("cls", Box::new(Classifier::ipv4_only())),
        ("strip", Box::new(EthDecap::new())),
        ("chk", Box::new(CheckIPHeader::new())),
        (
            "opts",
            Box::new(IPOptions::new(std::net::Ipv4Addr::new(10, 255, 255, 254))),
        ),
        ("rt", Box::new(IPLookup::two_port_default())),
        ("ttl", Box::new(DecTTL::new())),
        ("enc", Box::new(EthEncap::ipv4_default())),
    ];
    let mut b = PipelineBuilder::new();
    let mut idxs = Vec::new();
    for (name, e) in makers.into_iter().take(k) {
        idxs.push(b.add(name, e));
    }
    idxs.push(b.add("sink", Box::new(Sink::new())));
    b.chain(&idxs);
    b.build().unwrap()
}

fn main() {
    println!("k | decomposed verdict | decomposed time | monolithic completed | monolithic paths | monolithic time");
    println!("--+--------------------+-----------------+----------------------+------------------+----------------");
    for k in 1..=7 {
        let start = Instant::now();
        let mut verifier = Verifier::new();
        let report = verifier.verify(&chain(k), &Property::CrashFreedom);
        let decomposed = start.elapsed();

        let mono = explore_monolithic(
            &chain(k),
            &MonolithicConfig {
                max_paths: 20_000,
                max_time: Duration::from_secs(10),
                max_segments_per_element: 20_000,
                check_feasibility: false,
            },
        );
        println!(
            "{k} | {:<18?} | {:>13.3}s | {:<20} | {:>16} | {:>13.3}s",
            report.verdict,
            decomposed.as_secs_f64(),
            mono.completed,
            mono.paths_explored,
            mono.elapsed.as_secs_f64()
        );
    }
    println!();
    println!("The decomposed column stays flat (per-element summaries are composed, k·2^n work);");
    println!("the monolithic column stops completing once the IP-options loops join the chain");
    println!(
        "(cross-product of unrolled paths, 2^(k·n) work) — the paper's 18-minutes-vs-12-hours gap."
    );
}

//! Failure injection: plant real dataplane defects (unchecked option walks,
//! division by the TTL, deep reads without length checks) into otherwise
//! correct pipelines, let the verifier find them, and replay every witness
//! packet to show it genuinely triggers the defect.
//!
//! Run with `cargo run --example counterexample_hunt`.

use vericlick::net::Packet;
use vericlick::orchestrator::{VerifyRequest, VerifyService};
use vericlick::pipeline::elements::*;
use vericlick::pipeline::{Element, Pipeline, PipelineBuilder};
use vericlick::verifier::Property;

fn build(named: Vec<(&str, Box<dyn Element>)>) -> Pipeline {
    let mut b = PipelineBuilder::new();
    let mut idxs = Vec::new();
    for (name, e) in named {
        idxs.push(b.add(name, e));
    }
    b.chain(&idxs);
    b.build().unwrap()
}

fn hunt(service: &VerifyService, label: &str, make: impl Fn() -> Pipeline) {
    println!("=== {label} ===");
    // One typed request through the front door per defective pipeline; the
    // service's shared store reuses the correct elements' summaries across
    // hunts.
    let response = service
        .serve(VerifyRequest::Single {
            name: label.to_string(),
            pipeline: make(),
            property: Property::CrashFreedom,
        })
        .expect("hunt request");
    let report = response.report().expect("single outcome");
    println!(
        "verdict: {:?} ({} suspects, {} discharged, {} counterexamples)",
        report.verdict,
        report.stats.suspects,
        report.stats.discharged,
        report.counterexamples.len()
    );
    for ce in &report.counterexamples {
        println!(
            "  witness: {} bytes, path [{}], {}",
            ce.packet.len(),
            ce.path.join(" -> "),
            ce.description
        );
        // Replay it on a fresh native pipeline.
        let mut pipeline = make();
        let outcome = pipeline.push(Packet::from_bytes(ce.packet.clone()));
        println!(
            "  replayed natively: crash = {}, hops = {}",
            outcome.is_crash(),
            outcome.hops.len()
        );
    }
    println!();
}

fn main() {
    let service = VerifyService::new();
    hunt(
        &service,
        "TTL division bug behind a correct header check",
        || {
            build(vec![
                ("strip", Box::new(EthDecap::new())),
                ("chk", Box::new(CheckIPHeader::new())),
                ("ttl", Box::new(BuggyDecTTL::new())),
                ("out", Box::new(Sink::new())),
            ])
        },
    );

    hunt(
        &service,
        "unchecked IP-options walker with no header check",
        || {
            build(vec![
                ("cls", Box::new(Classifier::ipv4_only())),
                ("strip", Box::new(EthDecap::new())),
                ("opts", Box::new(UncheckedOptions::new())),
                ("out", Box::new(Sink::new())),
            ])
        },
    );

    hunt(
        &service,
        "classifier that reads byte 60 unconditionally",
        || {
            build(vec![
                ("broken", Box::new(BrokenClassifier::new())),
                ("out", Box::new(Sink::new())),
            ])
        },
    );

    println!("=== the correct versions of the same pipelines, for contrast ===");
    let correct = build(vec![
        ("strip", Box::new(EthDecap::new())),
        ("chk", Box::new(CheckIPHeader::new())),
        ("ttl", Box::new(DecTTL::new())),
        ("opts", Box::new(IPOptions::with_default_addr())),
        ("out", Box::new(Sink::new())),
    ]);
    let report = service.verify(correct, Property::CrashFreedom);
    println!("correct pipeline verdict: {:?}", report.verdict);
}

//! E4 of the paper: the stateful middlebox (NetFlow statistics + NAT).
//! Runs real traffic through it to show the translations happening, then
//! proves crash freedom via the data-structure abstraction.
//!
//! Run with `cargo run --example nat_verification`.

use std::net::Ipv4Addr;
use vericlick::net::PacketBuilder;
use vericlick::orchestrator::VerifyService;
use vericlick::pipeline::presets::middlebox_pipeline;
use vericlick::pipeline::Disposition;
use vericlick::verifier::Property;

fn main() {
    // --- concrete behaviour -------------------------------------------------
    println!("=== NAT middlebox: concrete behaviour ===");
    let mut pipeline = middlebox_pipeline();
    for (host, port) in [(1u8, 5001u16), (2, 5002), (1, 5001), (3, 5003)] {
        let packet = PacketBuilder::udp(
            Ipv4Addr::new(10, 0, 0, host),
            Ipv4Addr::new(8, 8, 8, 8),
            port,
            53,
            b"query",
        )
        .build();
        let outcome = pipeline.push(packet);
        match &outcome.disposition {
            Disposition::Dropped { at } => {
                // The sink is the expected terminal element.
                println!(
                    "  10.0.0.{host}:{port} -> delivered through {} hops (terminated at '{}')",
                    outcome.hops.len(),
                    pipeline.node(*at).name
                );
            }
            other => println!("  unexpected disposition: {other:?}"),
        }
    }

    // --- verification --------------------------------------------------------
    println!("\n=== NAT middlebox: crash freedom for any packet sequence ===");
    let service = VerifyService::new();
    let report = service.verify(middlebox_pipeline(), Property::CrashFreedom);
    println!("{report}");
    assert!(
        report.is_proven(),
        "the middlebox must be proven crash-free"
    );
    println!("flow tables are modelled as key/value stores whose reads may return any value —");
    println!("the proof therefore holds for every reachable table state, not just the empty one.");
}

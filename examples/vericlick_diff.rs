//! `vericlick diff` — incremental re-verification on a config diff.
//!
//! A thin shim over the umbrella CLI: `vericlick_diff ARGS...` is
//! `vericlick diff ARGS...`.
//!
//! ```sh
//! # Compare two Click-style configs: verify the old one as the baseline,
//! # then re-verify only what the edit actually changed.
//! cargo run --release --example vericlick_diff -- old.click new.click
//!
//! # Self-checking demo (used by CI): three configs, one element edit, one
//! # wiring-only edit — asserts the diff re-verifies exactly the affected
//! # scenarios and plans zero element jobs for the wiring-only diff.
//! cargo run --release --example vericlick_diff -- --demo
//! ```
//!
//! Options: `--threads N` (worker pool size), `--cache DIR` (persistent
//! summary store, letting the baseline come from an earlier process).

fn main() {
    let mut args = vec!["diff".to_string()];
    args.extend(std::env::args().skip(1));
    std::process::exit(vericlick::cli::main(args));
}

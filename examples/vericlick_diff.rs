//! `vericlick diff` — incremental re-verification on a config diff.
//!
//! ```sh
//! # Compare two Click-style configs: verify the old one as the baseline,
//! # then re-verify only what the edit actually changed.
//! cargo run --release --example vericlick_diff -- old.click new.click
//!
//! # Self-checking demo (used by CI): three configs, one element edit, one
//! # wiring-only edit — asserts the diff re-verifies exactly the affected
//! # scenarios and plans zero element jobs for the wiring-only diff.
//! cargo run --release --example vericlick_diff -- --demo
//! ```
//!
//! Options: `--threads N` (worker pool size), `--cache DIR` (persistent
//! summary store, letting the baseline come from an earlier process).

use std::sync::Arc;
use vericlick::orchestrator::diff::{config_scenarios, default_properties, NamedConfig};
use vericlick::orchestrator::{Orchestrator, SummaryStore};

const DEMO_ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const DEMO_FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

const DEMO_MINI: &str = r#"
    cnt :: Counter();
    ttl :: DecTTL();
    s0 :: Sink();
    s1 :: Sink();
    cnt -> ttl -> s0;
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 0usize;
    let mut cache: Option<String> = None;
    let mut demo = false;
    let mut files: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--threads" => {
                threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--cache" => cache = Some(iter.next().unwrap_or_else(|| usage("--cache needs a dir"))),
            other if other.starts_with('-') => usage(&format!("unknown option '{other}'")),
            file => files.push(file.to_string()),
        }
    }

    let (old, new) = if demo {
        let old = vec![
            NamedConfig::new("router", DEMO_ROUTER),
            NamedConfig::new("filter", DEMO_FILTER),
            NamedConfig::new("mini", DEMO_MINI),
        ];
        let new = vec![
            // One element edit: the second route's prefix length changes.
            NamedConfig::new(
                "router",
                DEMO_ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1"),
            ),
            // Untouched.
            NamedConfig::new("filter", DEMO_FILTER),
            // Wiring-only: the packet now exits through the other sink.
            NamedConfig::new(
                "mini",
                DEMO_MINI.replace("cnt -> ttl -> s0;", "cnt -> ttl -> s1;"),
            ),
        ];
        (old, new)
    } else {
        if files.len() != 2 {
            usage("expected exactly two config files (or --demo)");
        }
        let read = |path: &str| -> NamedConfig {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            NamedConfig::new("pipeline", text)
        };
        (vec![read(&files[0])], vec![read(&files[1])])
    };

    let mut orchestrator = Orchestrator::new();
    if threads > 0 {
        orchestrator = orchestrator.with_threads(threads);
    }
    let used_cache = cache.is_some();
    if let Some(dir) = cache {
        let store = SummaryStore::persistent(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open cache dir: {e}");
            std::process::exit(2);
        });
        orchestrator = orchestrator.with_store(Arc::new(store));
    }

    // Baseline: verify the old configs, warming the summary store — which
    // is what makes the diff incremental. With a persistent --cache the
    // store already *is* the baseline (an earlier process verified the old
    // configs into it), so re-running it would throw away the savings.
    if used_cache {
        println!("=== baseline served by the persistent cache ===\n");
    } else {
        let baseline_scenarios = config_scenarios(&old, &default_properties).unwrap_or_else(|e| {
            eprintln!("old config: {e}");
            std::process::exit(2);
        });
        let baseline = orchestrator.run(baseline_scenarios);
        println!("=== baseline (old configs) ===\n{baseline}");
    }

    // The diff: re-verify only what changed.
    let report = orchestrator
        .verify_diff(&old, &new, &default_properties)
        .unwrap_or_else(|e| {
            eprintln!("new config: {e}");
            std::process::exit(2);
        });
    println!("=== incremental re-verification (new configs) ===\n{report}");
    println!(
        "element jobs: {} explored, {} served warm",
        report.matrix.explore_jobs, report.matrix.cached_jobs
    );

    let (_, _, unknown) = report.matrix.verdict_counts();
    if unknown > 0 {
        eprintln!("{unknown} re-verified scenario(s) ended Unknown");
        std::process::exit(1);
    }

    if demo {
        use vericlick::orchestrator::diff::DiffKind;
        let kind = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("no diff entry for {name}"))
        };
        assert_eq!(kind("router").kind, DiffKind::ElementsChanged);
        assert_eq!(kind("router").changed_elements, vec!["rt".to_string()]);
        assert_eq!(kind("filter").kind, DiffKind::Identical);
        assert_eq!(kind("mini").kind, DiffKind::WiringOnly);
        // Only the two changed configs' scenarios were re-verified; the
        // identical config's were skipped.
        assert_eq!(report.reverified_scenarios(), 4, "partial re-verification");
        assert_eq!(report.skipped_scenarios, 2);
        // Exactly one element behaviour was re-explored (the edited rt);
        // the wiring-only diff contributed a composition-only pass.
        assert_eq!(
            report.matrix.explore_jobs, 1,
            "expected exactly the edited element to be re-explored"
        );
        println!("\ndemo assertions passed: partial re-verification confirmed");
    }
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: vericlick_diff <old.click> <new.click> [--threads N] [--cache DIR]");
    eprintln!("       vericlick_diff --demo");
    std::process::exit(2);
}

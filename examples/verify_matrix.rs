//! The verification matrix: every preset pipeline verified against every
//! property class (crash freedom, bounded execution, reachability) on the
//! verification service, with content-addressed summary caching and
//! parallel Step-2 composition.
//!
//! This is a thin shim over the umbrella CLI — identical to running
//! `vericlick run --matrix --selftest`. The machine-readable report is
//! written to `target/verify_matrix.json`; the process exits non-zero if
//! any preset scenario ends `Unknown` (a solver-precision regression) or
//! if the warm-rerun/thread-bound selftest assertions fail. CI relies on
//! this.
//!
//! Run with `cargo run --release --example verify_matrix`.

fn main() {
    std::process::exit(vericlick::cli::main(vec![
        "run".into(),
        "--matrix".into(),
        "--selftest".into(),
    ]));
}

//! The verification matrix: every preset pipeline verified against every
//! property class (crash freedom, bounded execution, reachability) on the
//! parallel orchestrator, with content-addressed summary caching and
//! parallel Step-2 composition.
//!
//! Run with `cargo run --release --example verify_matrix`.
//! The machine-readable report is written to `target/verify_matrix.json`.
//! Exits non-zero if any preset scenario ends `Unknown` — every preset is
//! expected to be decided (proven, or violated with a counterexample), so
//! an `Unknown` is a solver-precision regression. CI relies on this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vericlick::orchestrator::{preset_scenarios, Orchestrator, ProgressEvent};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // One shared scheduler: scenario jobs and every composition's Step-2
    // walk workers draw from the same thread budget, so there is exactly
    // one knob and live solver threads never exceed it.
    println!("=== verification matrix on a {threads}-thread shared scheduler ===\n");

    let explored = Arc::new(AtomicUsize::new(0));
    let observer_count = explored.clone();
    let orchestrator = Orchestrator::new()
        .with_threads(threads)
        .with_progress(move |event| match event {
            ProgressEvent::Planned {
                explore_jobs,
                cached,
                scenarios,
            } => println!(
                "plan: {scenarios} scenarios -> {explore_jobs} element jobs ({cached} already cached)"
            ),
            ProgressEvent::ExploreFinished {
                type_name, elapsed, ..
            } => {
                observer_count.fetch_add(1, Ordering::Relaxed);
                println!("  explored {type_name} in {elapsed:?}");
            }
            ProgressEvent::ComposeFinished {
                scenario,
                verdict,
                elapsed,
            } => println!("  composed {scenario}: {verdict:?} in {elapsed:?}"),
            _ => {}
        });

    // Cold run: every distinct element behaviour is explored once, in
    // parallel, then the 15 compositions run concurrently.
    let cold = orchestrator.run(preset_scenarios());
    println!("\n{cold}");

    // Warm rerun: the content-addressed store already holds every summary —
    // zero element jobs, only composition.
    let warm = orchestrator.run(preset_scenarios());
    println!(
        "warm rerun: {} element jobs, {} served from cache, {:.3}s (cold was {:.3}s)",
        warm.explore_jobs,
        warm.cached_jobs,
        warm.elapsed.as_secs_f64(),
        cold.elapsed.as_secs_f64()
    );
    assert_eq!(warm.explore_jobs, 0, "warm run must skip all element jobs");
    assert_eq!(explored.load(Ordering::Relaxed), cold.explore_jobs);
    for (label, matrix) in [("cold", &cold), ("warm", &warm)] {
        assert!(
            matrix.peak_live_threads <= threads,
            "{label} run exceeded the pool bound: {} > {threads} live threads",
            matrix.peak_live_threads
        );
    }

    let (proven, violated, unknown) = cold.verdict_counts();
    println!(
        "\nverdicts: {proven} proven, {violated} violated (the planted bugs), {unknown} unknown"
    );

    let json_path = std::path::Path::new("target").join("verify_matrix.json");
    if std::fs::create_dir_all("target").is_ok() {
        match std::fs::write(&json_path, cold.to_json().to_text()) {
            Ok(()) => println!("machine-readable report: {}", json_path.display()),
            Err(e) => println!("could not write {}: {e}", json_path.display()),
        }
    }

    if unknown > 0 {
        for s in &cold.scenarios {
            for up in &s.report.unproven {
                eprintln!(
                    "UNKNOWN {}: {} via [{}]",
                    s.label(),
                    up.reason,
                    up.path.join(" -> ")
                );
            }
        }
        eprintln!("{unknown} scenario(s) ended Unknown — the matrix must decide every preset");
        std::process::exit(1);
    }
}

//! Quickstart: build a router pipeline from a Click-like configuration, push
//! traffic through it, and prove it crash-free.
//!
//! Run with `cargo run --example quickstart`.

use vericlick::net::WorkloadGen;
use vericlick::orchestrator::VerifyService;
use vericlick::pipeline::{parse_config, presets};
use vericlick::verifier::Property;

fn main() {
    // 1. Build the reference IP router from its textual configuration.
    let mut router = parse_config(presets::IP_ROUTER_CONFIG).expect("valid configuration");
    println!(
        "built a pipeline with {} elements (entry '{}')",
        router.len(),
        router.node(router.entry()).name
    );

    // 2. Push a mixed (partly adversarial) workload through it natively.
    let mut forwarded = 0;
    let mut dropped = 0;
    for packet in WorkloadGen::adversarial(42).batch(5_000) {
        let outcome = router.push(packet);
        assert!(!outcome.is_crash(), "the router must never crash");
        if outcome.hops.len() == 8 {
            forwarded += 1;
        } else {
            dropped += 1;
        }
    }
    println!("processed 5000 packets: {forwarded} delivered to a sink, {dropped} dropped early");

    // 3. Prove that no packet — not just the ones we tried — can crash it.
    //    The service is the one front door: it plans per-element jobs,
    //    runs them on a shared pool, and composes the summaries.
    let service = VerifyService::new();
    let report = service.verify(presets::ip_router_pipeline(), Property::CrashFreedom);
    println!("{report}");
    assert!(report.is_proven());
    println!("crash freedom proven for any input packet");
}

//! E1 + E2 of the paper: prove the IP-router pipeline crash-free for any
//! input and establish its per-packet instruction bound together with the
//! packet that drives it to the maximum.
//!
//! Run with `cargo run --example ip_router_verification`.

use vericlick::net::WorkloadGen;
use vericlick::orchestrator::VerifyService;
use vericlick::pipeline::presets::{ip_router_pipeline, linear_router_pipeline};
use vericlick::pipeline::ModelRuntime;
use vericlick::verifier::{Property, Verifier};

fn main() {
    // --- E1: crash freedom -------------------------------------------------
    println!("=== E1: crash freedom of the reference IP router ===");
    let service = VerifyService::new();
    let report = service.verify(ip_router_pipeline(), Property::CrashFreedom);
    println!("{report}");
    assert!(report.is_proven(), "the router must be proven crash-free");
    println!(
        "suspect segments found in isolation: {}, discharged after composition: {}",
        report.stats.suspects, report.stats.discharged
    );

    // --- E2: bounded instructions ------------------------------------------
    // The instruction-bound analysis is a verifier-level API (it has no
    // request shape yet); the proof of the bound goes through the service.
    println!("\n=== E2: per-packet instruction bound of the longest pipeline ===");
    let mut verifier = Verifier::new();
    let bound = verifier.max_instructions(&linear_router_pipeline());
    println!("{bound}");

    // Compare against the most expensive packet we can find concretely.
    let pipeline = linear_router_pipeline();
    let mut runtime = ModelRuntime::new(&pipeline);
    let mut max_concrete = 0;
    for packet in WorkloadGen::adversarial(7).batch(1_000) {
        max_concrete = max_concrete.max(runtime.push(packet).instructions);
    }
    println!("most expensive packet observed concretely: {max_concrete} instructions");
    assert!(bound.max_instructions >= max_concrete);

    // Prove the bound as a property.
    let report = service.verify(
        linear_router_pipeline(),
        Property::BoundedInstructions {
            max_instructions: bound.max_instructions,
        },
    );
    println!("{report}");
    assert!(report.is_proven());
}

//! The two figures of the paper, reproduced end to end:
//!
//! * Figure 1 — symbolic execution of a toy program enumerates its three
//!   feasible paths and pinpoints the crashing inputs (`in < 0`).
//! * Figure 2 — a two-element pipeline in which the downstream element's
//!   crash is infeasible once composed with the upstream element.
//!
//! Run with `cargo run --example toy_figures`.

use vericlick::ir::builder::{Block, ProgramBuilder};
use vericlick::ir::expr::dsl::*;
use vericlick::symbex::{explore, EngineConfig, Solver, SolverResult};
use vericlick::verifier::Property;

fn main() {
    figure1();
    figure2();
}

fn figure1() {
    println!("=== Figure 1: proof by execution on a toy program ===");
    let mut pb = ProgramBuilder::new("Figure1", 1);
    let input = pb.local("in", 32);
    let out = pb.local("out", 32);
    let mut b = Block::new();
    b.assign(input, pkt(0, 4));
    b.assert(sle(c(32, 0), l(input)), "in >= 0");
    b.if_else(
        slt(l(input), c(32, 10)),
        Block::with(|bb| {
            bb.assign(out, c(32, 10));
        }),
        Block::with(|bb| {
            bb.assign(out, l(input));
        }),
    );
    b.pkt_store(0, 4, l(out));
    b.emit(0);
    let program = pb.finish(b).unwrap();

    let exploration = explore(&program, &EngineConfig::default()).unwrap();
    let solver = Solver::new();
    for segment in &exploration.segments {
        let feasible = !solver.check(&segment.constraint).is_unsat();
        if !feasible {
            continue;
        }
        println!(
            "  path: outcome {:?}, {} instructions",
            segment.outcome, segment.instructions
        );
        if segment.outcome.is_crash() {
            if let SolverResult::Sat(model) = solver.check(&segment.constraint) {
                let word = u32::from_be_bytes([
                    model.packet.first().copied().unwrap_or(0),
                    model.packet.get(1).copied().unwrap_or(0),
                    model.packet.get(2).copied().unwrap_or(0),
                    model.packet.get(3).copied().unwrap_or(0),
                ]);
                println!(
                    "    crashing input example: in = {} (0x{word:08x})",
                    word as i32
                );
            }
        }
    }
    println!(
        "  every path executes at most {} instructions",
        exploration.max_instructions()
    );
}

fn figure2() {
    println!("=== Figure 2: composition discharges the suspect segment ===");
    let service = vericlick::orchestrator::VerifyService::new();
    let report = service.verify(
        dataplane_bench_free::figure2_pipeline(),
        Property::CrashFreedom,
    );
    println!("{report}");
    assert!(report.is_proven());
    println!("  E2's crash segment is suspect in isolation but infeasible after E1 — proven.");
}

/// A tiny local copy of the bench helper so the example only depends on the
/// published library crates.
mod dataplane_bench_free {
    use vericlick::ir::builder::{Block, ProgramBuilder};
    use vericlick::ir::expr::dsl::*;
    use vericlick::ir::{CrashReason, Program};
    use vericlick::net::Packet;
    use vericlick::pipeline::elements::{CheckLength, Sink};
    use vericlick::pipeline::{Action, Element, Pipeline};

    pub struct ToyE1;
    pub struct ToyE2;

    impl Element for ToyE1 {
        fn type_name(&self) -> &'static str {
            "ToyE1"
        }
        fn output_ports(&self) -> usize {
            1
        }
        fn process(&mut self, mut packet: Packet) -> Action {
            let v = packet.get_u32(0).unwrap_or(0) as i32;
            let out = if v < 0 { 0 } else { v as u32 };
            packet.set_u32(0, out);
            Action::Emit(0, packet)
        }
        fn model(&self) -> Program {
            let mut pb = ProgramBuilder::new("ToyE1", 1);
            let input = pb.local("in", 32);
            let out = pb.local("out", 32);
            let mut b = Block::new();
            b.assign(input, pkt(0, 4));
            b.if_else(
                slt(l(input), c(32, 0)),
                Block::with(|bb| {
                    bb.assign(out, c(32, 0));
                }),
                Block::with(|bb| {
                    bb.assign(out, l(input));
                }),
            );
            b.pkt_store(0, 4, l(out));
            b.emit(0);
            pb.finish(b).unwrap()
        }
    }

    impl Element for ToyE2 {
        fn type_name(&self) -> &'static str {
            "ToyE2"
        }
        fn output_ports(&self) -> usize {
            1
        }
        fn process(&mut self, mut packet: Packet) -> Action {
            let v = packet.get_u32(0).unwrap_or(0) as i32;
            if v < 0 {
                return Action::Crash(CrashReason::AssertionFailed {
                    message: "in >= 0".into(),
                });
            }
            let out = if v < 10 { 10 } else { v as u32 };
            packet.set_u32(0, out);
            Action::Emit(0, packet)
        }
        fn model(&self) -> Program {
            let mut pb = ProgramBuilder::new("ToyE2", 1);
            let input = pb.local("in", 32);
            let out = pb.local("out", 32);
            let mut b = Block::new();
            b.assign(input, pkt(0, 4));
            b.assert(sle(c(32, 0), l(input)), "in >= 0");
            b.if_else(
                slt(l(input), c(32, 10)),
                Block::with(|bb| {
                    bb.assign(out, c(32, 10));
                }),
                Block::with(|bb| {
                    bb.assign(out, l(input));
                }),
            );
            b.pkt_store(0, 4, l(out));
            b.emit(0);
            pb.finish(b).unwrap()
        }
    }

    pub fn figure2_pipeline() -> Pipeline {
        let mut b = Pipeline::builder();
        let pad = b.add("pad", Box::new(CheckLength::new(4, 4096)));
        let e1 = b.add("e1", Box::new(ToyE1));
        let e2 = b.add("e2", Box::new(ToyE2));
        let out = b.add("out", Box::new(Sink::new()));
        b.chain(&[pad, e1, e2, out]);
        b.build().unwrap()
    }
}

//! # vericlick — a verifiable software dataplane
//!
//! This is the umbrella crate of the workspace: it re-exports the five
//! library crates so that the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/` can use one coherent facade.
//!
//! * [`ir`] (`dataplane-ir`) — the element IR and its concrete interpreter.
//! * [`net`] (`dataplane-net`) — packets, protocol codecs, workloads.
//! * [`pipeline`] (`dataplane-pipeline`) — the Click-like dataplane and the
//!   element library.
//! * [`symbex`] (`dataplane-symbex`) — the symbolic execution engine and the
//!   constraint solver.
//! * [`verifier`] (`dataplane-verifier`) — the compositional verifier, the
//!   paper's contribution.
//! * [`orchestrator`] (`dataplane-orchestrator`) — the parallel verification
//!   service layer: per-element jobs on a work-stealing pool, a
//!   content-addressed summary cache, and the preset scenario matrix.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and experiment index, and `EXPERIMENTS.md` for the recorded
//! paper-versus-measured results.

#![forbid(unsafe_code)]

pub mod cli;

pub use dataplane_ir as ir;
pub use dataplane_net as net;
pub use dataplane_orchestrator as orchestrator;
pub use dataplane_pipeline as pipeline;
pub use dataplane_symbex as symbex;
pub use dataplane_verifier as verifier;

/// The version of the vericlick workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_all_layers() {
        // One symbol from each layer, to keep the re-exports honest.
        let _ = crate::ir::BitVec::u8(1);
        let _ = crate::net::Packet::from_bytes(vec![1, 2, 3]);
        let _ = crate::pipeline::presets::ip_router_pipeline();
        let _ = crate::symbex::Solver::new();
        let _ = crate::verifier::Verifier::new();
        let _ = crate::orchestrator::VerifyService::new();
        assert!(!crate::VERSION.is_empty());
    }
}

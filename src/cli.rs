//! The `vericlick` umbrella CLI: one binary over the whole verification
//! service (`run | diff | plan | exec-plan | watch | bound | conform |
//! fuzz | worker | serve | client`).
//!
//! Every subcommand is a thin shell over [`VerifyService`] — the examples
//! under `examples/` are in turn thin shells over this module, so the
//! scenario/flag/JSON plumbing lives exactly once.
//!
//! ```text
//! vericlick run --matrix [--selftest]      # the 20-scenario preset matrix
//! vericlick run cfg.click...               # crash+bounded for your configs
//! vericlick diff old.click new.click       # incremental re-verification
//! vericlick diff --demo                    # self-asserting demo (CI smoke)
//! vericlick plan --matrix -o plan.json     # serialise the job plan
//! vericlick exec-plan plan.json            # execute a plan (any process)
//! vericlick exec-plan - --workers 4        # ... on subprocess workers
//! vericlick watch --demo                   # rolling-baseline watch demo
//! vericlick conform report.json            # replay every counterexample
//!                                          #  of a saved deterministic
//!                                          #  matrix report concretely
//! vericlick fuzz --packets 100000          # differential-fuzz all Proven
//!                                          #  presets (seeded, sharded)
//! vericlick worker                         # stdio worker (spawned by
//!                                          #  exec-plan; speaks the
//!                                          #  line-JSON protocol)
//! vericlick serve --listen :0              # persistent daemon: warm
//!                                          #  summary store across
//!                                          #  requests, socket workers
//!                                          #  join at runtime
//! vericlick client --connect addr --matrix # submit a request to a
//!                                          #  running daemon
//! ```
//!
//! Exit codes: `0` success, `1` Unknown verdicts or failed demo assertions,
//! `2` usage or I/O errors.

use crate::orchestrator::json::Json;
use crate::orchestrator::wire::{plan_from_json, plan_to_json};
use crate::orchestrator::{
    join_fleet, preset_scenarios, serve_listener, worker_serve, ClientReply, ComposeShardMode,
    Daemon, DaemonClient, DaemonConfig, Executor, HeartbeatConfig, InProcessExecutor, NamedConfig,
    ProgressEvent, PropertySelect, Scenario, SummaryStore, VerifyOutcome, VerifyRequest,
    VerifyResponse, VerifyService, WorkerAddr, WorkerFleet,
};
use std::io::{Read, Write};
use std::sync::Arc;

/// Demo configs shared by `diff --demo` and `watch --demo`.
pub const DEMO_ROUTER: &str = r#"
    cls :: Classifier(12/0800);
    strip :: EthDecap();
    chk :: CheckIPHeader();
    rt :: IPLookup(10.0.0.0/8 0, 192.168.0.0/16 1);
    ttl0 :: DecTTL();
    ttl1 :: DecTTL();
    out0 :: Sink();
    out1 :: Sink();
    cls -> strip -> chk -> rt;
    rt[0] -> ttl0 -> out0;
    rt[1] -> ttl1 -> out1;
"#;

const DEMO_FILTER: &str = r#"
    strip :: EthDecap();
    chk :: CheckIPHeader();
    f :: SrcFilter(203.0.113.9);
    out :: Sink();
    strip -> chk -> f -> out;
"#;

const DEMO_MINI: &str = r#"
    cnt :: Counter();
    ttl :: DecTTL();
    s0 :: Sink();
    s1 :: Sink();
    cnt -> ttl -> s0;
"#;

/// A demo/selftest expectation: on failure, report and make the enclosing
/// subcommand return the documented exit code 1 — never a panic (exit 101),
/// so wrappers can tell a failed check from a crash.
macro_rules! expect {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            eprintln!("check failed: {}", format!($($msg)+));
            return 1;
        }
    };
}

/// Run the CLI on `args` (without the program name); returns the exit
/// code. `std::process::exit` is left to the caller so tests and example
/// shims can drive this in-process.
pub fn main(args: Vec<String>) -> i32 {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("run") => cmd_run(args.collect()),
        Some("diff") => cmd_diff(args.collect()),
        Some("plan") => cmd_plan(args.collect()),
        Some("exec-plan") => cmd_exec_plan(args.collect()),
        Some("watch") => cmd_watch(args.collect()),
        Some("bound") => cmd_bound(args.collect()),
        Some("conform") => cmd_conform(args.collect()),
        Some("fuzz") => cmd_fuzz(args.collect()),
        Some("worker") => cmd_worker(args.collect()),
        Some("serve") => cmd_serve(args.collect()),
        Some("client") => cmd_client(args.collect()),
        Some("--help" | "-h" | "help") => {
            eprintln!("{USAGE}");
            0
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
        Some(other) => {
            eprintln!("error: unknown subcommand '{other}'\n{USAGE}");
            2
        }
    }
}

const USAGE: &str = "usage: vericlick <subcommand> [options]
  run [--matrix] [cfg.click...] [--threads N] [--cache DIR] [--json PATH] [--selftest]
      [--compose-shard auto|off|N] [--connect addr] [--ltl SPEC]...
    (--ltl verifies a temporal (LTL) property instead of the default
     crash+bounded pair: repeatable, SPEC is a formula like
     'G (at(chk) -> F (forwarded | dropped))' or @FILE to read one from
     a file; with --matrix the spec(s) replace the presets' bundled
     temporal specs)
  diff <old.click> <new.click> | --demo   [--threads N] [--cache DIR] [--connect addr]
  plan [--matrix] [cfg.click...] [-o PATH] [--threads N] [--ltl SPEC]...
  exec-plan [PATH|-] [--workers N | --workers addr,addr,...] [--in-process]
            [--threads N] [--cache DIR] [--json PATH] [--det-json PATH]
            [--heartbeat-ms N] [--compose-shard auto|off|N]
    (--compose-shard splits each scenario's Step-2 check enumeration
     into wire shards the fleet load-balances and steals between;
     `auto` — the default — sizes the shards from live fleet capacity
     and calibrated solver costs; reports stay byte-identical to an
     unsharded run at any setting)
  watch <cfg.click...> [--poll-ms N] [--max-polls N] | --demo
            [--threads N] [--cache DIR] [--connect addr]
  bound <cfg.click...> [--threads N] [--cache DIR]
  conform <report.json>
    (replays every counterexample of a deterministic matrix report,
     e.g. `vericlick run --matrix --det-json report.json`)
  fuzz [--seed S] [--packets N] [--threads N] [--cache DIR]
       [--workers N | --workers addr,addr,...] [--json PATH] [--det-json PATH]
       [--heartbeat-ms N] [--connect addr]
    (differential conformance over the presets: replay Violated
     counterexamples, fuzz Proven scenarios with N seeded packets)
  worker [--listen addr] [--capacity N] [--once] [--join daemon-addr]
    (addr is host:port for TCP or a path / unix:PATH for a Unix socket;
     --join announces the bound address to a running daemon's fleet)
  serve --listen addr [--threads N] [--cache DIR] [--max-sessions N]
        [--max-queue N] [--workers addr,addr,...] [--heartbeat-ms N]
        [--compose-shard auto|off|N] [--once]
    (persistent daemon: a warm summary store shared across requests;
     clients connect with `client`/`--connect`, workers with `--join`)
  client --connect addr [--matrix] [cfg.click...] [--request PATH]
        [--json PATH] [--det-json PATH]
    (submit one request to a running daemon; --request sends a
     serialised VerifyRequest document instead of building a matrix)";

/// Common service flags: `--threads N`, `--cache DIR`.
struct ServiceFlags {
    threads: usize,
    cache: Option<String>,
}

impl ServiceFlags {
    fn build(&self, progress: bool) -> Result<VerifyService, i32> {
        let mut service = VerifyService::new();
        if self.threads > 0 {
            service = service.with_threads(self.threads);
        }
        if let Some(dir) = &self.cache {
            let store = SummaryStore::persistent(dir).map_err(|e| {
                eprintln!("error: cannot open cache dir {dir}: {e}");
                2
            })?;
            service = service.with_store(Arc::new(store));
        }
        if progress {
            service = service.with_progress(|event| match event {
                ProgressEvent::Planned {
                    explore_jobs,
                    cached,
                    scenarios,
                } => println!(
                    "plan: {scenarios} scenarios -> {explore_jobs} element jobs ({cached} already cached)"
                ),
                ProgressEvent::ExploreFinished {
                    type_name, elapsed, ..
                } => println!("  explored {type_name} in {elapsed:?}"),
                ProgressEvent::ComposeFinished {
                    scenario,
                    verdict,
                    elapsed,
                } => println!("  composed {scenario}: {verdict:?} in {elapsed:?}"),
                _ => {}
            });
        }
        Ok(service)
    }
}

fn usage_error(message: &str) -> i32 {
    eprintln!("error: {message}\n{USAGE}");
    2
}

fn read_file(path: &str) -> Result<String, i32> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        2
    })
}

fn write_file(path: &str, text: &str) -> i32 {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, text) {
        Ok(()) => {
            println!("wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("error: cannot write {path}: {e}");
            2
        }
    }
}

/// Turn config file paths into named configs (name = file stem).
fn load_configs(files: &[String]) -> Result<Vec<NamedConfig>, i32> {
    let mut configs = Vec::new();
    for file in files {
        let name = std::path::Path::new(file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("pipeline")
            .to_string();
        configs.push(NamedConfig::new(name, read_file(file)?));
    }
    Ok(configs)
}

/// The matrix request for `run`/`plan`: presets with `--matrix`, the given
/// config files otherwise.
fn build_request(matrix: bool, files: &[String]) -> Result<VerifyRequest, i32> {
    if matrix {
        if !files.is_empty() {
            return Err(usage_error("--matrix takes no config files"));
        }
        Ok(VerifyRequest::Matrix {
            scenarios: preset_scenarios(),
        })
    } else if files.is_empty() {
        Err(usage_error("expected --matrix or at least one config file"))
    } else {
        let configs = load_configs(files)?;
        let scenarios = crate::orchestrator::config_scenarios(&configs, &|name| {
            PropertySelect::Default.properties_for(name)
        })
        .map_err(|e| {
            eprintln!("error: {e}");
            2
        })?;
        Ok(VerifyRequest::Matrix { scenarios })
    }
}

/// Parse `--ltl` arguments — formula text, or `@FILE` to read one from a
/// file — into temporal properties. A malformed spec is a usage error
/// carrying the parser's span-ed message.
fn parse_ltl_specs(specs: &[String]) -> Result<Vec<crate::verifier::Property>, i32> {
    let mut properties = Vec::new();
    for raw in specs {
        let text = match raw.strip_prefix('@') {
            Some(path) => read_file(path)?,
            None => raw.clone(),
        };
        match crate::verifier::LtlSpec::parse(text.trim()) {
            Ok(spec) => properties.push(crate::verifier::Property::Temporal(spec)),
            Err(e) => {
                eprintln!("error: --ltl '{}': {e}", text.trim());
                return Err(2);
            }
        }
    }
    Ok(properties)
}

/// The `run` request: [`build_request`]'s default property sets, unless
/// `--ltl` specs narrow the run to exactly those temporal properties —
/// against the preset pipelines with `--matrix`, or the given configs.
fn build_run_request(matrix: bool, files: &[String], ltl: &[String]) -> Result<VerifyRequest, i32> {
    if ltl.is_empty() {
        return build_request(matrix, files);
    }
    let properties = parse_ltl_specs(ltl)?;
    if matrix {
        if !files.is_empty() {
            return Err(usage_error("--matrix takes no config files"));
        }
        let mut scenarios = Vec::new();
        for (name, make) in crate::orchestrator::preset_pipelines() {
            for property in &properties {
                scenarios.push(Scenario::new(name, make(), property.clone()));
            }
        }
        Ok(VerifyRequest::Matrix { scenarios })
    } else if files.is_empty() {
        Err(usage_error(
            "--ltl needs --matrix or at least one config file",
        ))
    } else {
        let configs = load_configs(files)?;
        let scenarios = crate::orchestrator::config_scenarios(&configs, &|_| properties.clone())
            .map_err(|e| {
                eprintln!("error: {e}");
                2
            })?;
        Ok(VerifyRequest::Matrix { scenarios })
    }
}

/// Report a response to stdout, optionally persisting the JSON forms;
/// returns the exit code (1 when any scenario ended Unknown).
fn finish(response: &VerifyResponse, json_path: Option<&str>, det_json_path: Option<&str>) -> i32 {
    println!("{response}");
    if let Some(path) = json_path {
        let code = write_file(path, &response.to_json().to_text());
        if code != 0 {
            return code;
        }
    }
    if let Some(path) = det_json_path {
        let code = write_file(path, &response.deterministic_json().to_text());
        if code != 0 {
            return code;
        }
    }
    let (_, _, unknown) = response.verdict_counts();
    if unknown > 0 {
        if let Some(matrix) = response.matrix() {
            for s in &matrix.scenarios {
                for up in &s.report.unproven {
                    eprintln!(
                        "UNKNOWN {}: {} via [{}]",
                        s.label(),
                        up.reason,
                        up.path.join(" -> ")
                    );
                }
            }
        }
        eprintln!("{unknown} scenario(s) ended Unknown");
        1
    } else {
        0
    }
}

/// Submit one request to the daemon at `addr` and report the reply like a
/// local run: server-rendered display text, optional JSON artifacts, a
/// dispatch summary when the daemon executed on socket workers.
fn client_request(
    addr: &str,
    request: &VerifyRequest,
    json_path: Option<&str>,
    det_json_path: Option<&str>,
) -> Result<ClientReply, i32> {
    let addr = WorkerAddr::parse(addr);
    let mut client = DaemonClient::connect(&addr, None).map_err(|e| {
        eprintln!("error: {e}");
        2
    })?;
    let reply = client.verify(request).map_err(|e| {
        eprintln!("error: {e}");
        2
    })?;
    println!("{}", reply.display.trim_end());
    if let Some(shipped) = reply.dispatch_stat("summaries_shipped") {
        println!(
            "daemon fleet: {shipped} summaries shipped, {} deduped",
            reply.dispatch_stat("summaries_deduped").unwrap_or(0)
        );
    }
    if let Some(path) = json_path {
        let code = write_file(path, &reply.report.to_text());
        if code != 0 {
            return Err(code);
        }
    }
    if let Some(path) = det_json_path {
        let code = write_file(path, &reply.det_report.to_text());
        if code != 0 {
            return Err(code);
        }
    }
    Ok(reply)
}

/// Exit code for a daemon reply, matching the local subcommands: `1` for
/// Unknown verdicts (or a failed conformance run), `0` otherwise.
fn reply_code(reply: &ClientReply) -> i32 {
    if reply.request == "conformance" {
        return if reply.ok { 0 } else { 1 };
    }
    if reply.unknown > 0 {
        eprintln!("{} scenario(s) ended Unknown", reply.unknown);
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

fn cmd_run(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut matrix = false;
    let mut selftest = false;
    let mut connect: Option<String> = None;
    let mut compose_shard = ComposeShardMode::default();
    let mut json_path: Option<String> = None;
    let mut det_json_path: Option<String> = None;
    let mut ltl_specs: Vec<String> = Vec::new();
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--matrix" => matrix = true,
            "--selftest" => selftest = true,
            "--ltl" => match iter.next() {
                Some(spec) => ltl_specs.push(spec),
                None => return usage_error("--ltl needs a spec (a formula, or @FILE)"),
            },
            "--connect" => match iter.next() {
                Some(addr) => connect = Some(addr),
                None => return usage_error("--connect needs a daemon address"),
            },
            "--compose-shard" => match iter.next().as_deref().and_then(ComposeShardMode::parse) {
                Some(mode) => compose_shard = mode,
                None => {
                    return usage_error("--compose-shard needs `auto`, `off`, or a shard count")
                }
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            "--json" => match iter.next() {
                Some(p) => json_path = Some(p),
                None => return usage_error("--json needs a path"),
            },
            "--det-json" => match iter.next() {
                Some(p) => det_json_path = Some(p),
                None => return usage_error("--det-json needs a path"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }

    let request = match build_run_request(matrix, &files, &ltl_specs) {
        Ok(r) => r,
        Err(code) => return code,
    };
    if let Some(addr) = connect {
        if selftest {
            return usage_error("--selftest runs in-process (not with --connect)");
        }
        if flags.threads != 0
            || flags.cache.is_some()
            || compose_shard != ComposeShardMode::default()
        {
            return usage_error(
                "--threads/--cache/--compose-shard are daemon-side (set them on `vericlick serve`)",
            );
        }
        return match client_request(
            &addr,
            &request,
            json_path.as_deref(),
            det_json_path.as_deref(),
        ) {
            Ok(reply) => reply_code(&reply),
            Err(code) => code,
        };
    }
    let service = match flags.build(true) {
        Ok(s) => s.with_compose_shard_mode(compose_shard),
        Err(code) => return code,
    };
    let threads = service.threads();
    println!("=== vericlick run on a {threads}-thread shared scheduler ===\n");
    let response = match service.serve(request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    if matrix && json_path.is_none() {
        // CI uploads this artifact; keep the pre-CLI path.
        json_path = Some("target/verify_matrix.json".to_string());
    }
    let code = finish(&response, json_path.as_deref(), det_json_path.as_deref());
    if code != 0 || !selftest {
        return code;
    }

    // --selftest: the warm rerun plans zero element jobs, the shared
    // scheduler respects its thread bound, and the preset verdict mix is
    // intact (the pre-CLI `verify_matrix` example's assertions).
    let matrix_report = match &response.outcome {
        VerifyOutcome::Matrix(m) => m,
        _ => unreachable!("run serves matrix requests"),
    };
    let warm =
        service.serve(build_run_request(matrix, &files, &ltl_specs).expect("request rebuilt")); // same request
    let warm = match warm {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let warm_matrix = warm.matrix().expect("matrix rerun");
    println!(
        "warm rerun: {} element jobs, {} served from cache, {:.3}s (cold was {:.3}s)",
        warm_matrix.explore_jobs,
        warm_matrix.cached_jobs,
        warm_matrix.elapsed.as_secs_f64(),
        matrix_report.elapsed.as_secs_f64()
    );
    expect!(
        warm_matrix.explore_jobs == 0,
        "warm run must skip all element jobs (ran {})",
        warm_matrix.explore_jobs
    );
    for (label, m) in [("cold", matrix_report), ("warm", warm_matrix)] {
        expect!(
            m.peak_live_threads <= m.threads,
            "{label} run exceeded the pool bound: {} > {} live threads",
            m.peak_live_threads,
            m.threads
        );
    }
    expect!(
        warm.deterministic_json().to_text() == response.deterministic_json().to_text(),
        "verdicts must not depend on cache temperature"
    );
    println!("selftest passed: warm rerun identical, thread bound respected");
    0
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

fn cmd_diff(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut demo = false;
    let mut connect: Option<String> = None;
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--connect" => match iter.next() {
                Some(addr) => connect = Some(addr),
                None => return usage_error("--connect needs a daemon address"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }
    if connect.is_some() && demo {
        // The demo asserts on the in-process DiffReport structure.
        return usage_error("diff --demo runs in-process (not with --connect)");
    }

    let (old, new) = if demo {
        let old = vec![
            NamedConfig::new("router", DEMO_ROUTER),
            NamedConfig::new("filter", DEMO_FILTER),
            NamedConfig::new("mini", DEMO_MINI),
        ];
        let new = vec![
            // One element edit: the second route's prefix length changes.
            NamedConfig::new(
                "router",
                DEMO_ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1"),
            ),
            // Untouched.
            NamedConfig::new("filter", DEMO_FILTER),
            // Wiring-only: the packet now exits through the other sink.
            NamedConfig::new(
                "mini",
                DEMO_MINI.replace("cnt -> ttl -> s0;", "cnt -> ttl -> s1;"),
            ),
        ];
        (old, new)
    } else {
        if files.len() != 2 {
            return usage_error("expected exactly two config files (or --demo)");
        }
        let read = |path: &str| -> Result<NamedConfig, i32> {
            Ok(NamedConfig::new("pipeline", read_file(path)?))
        };
        match (read(&files[0]), read(&files[1])) {
            (Ok(old), Ok(new)) => (vec![old], vec![new]),
            (Err(code), _) | (_, Err(code)) => return code,
        }
    };

    if let Some(addr) = connect {
        if flags.threads != 0 || flags.cache.is_some() {
            return usage_error(
                "--threads/--cache are daemon-side (set them on `vericlick serve`)",
            );
        }
        let request = VerifyRequest::Diff {
            old,
            new,
            properties: PropertySelect::Default,
        };
        return match client_request(&addr, &request, None, None) {
            Ok(reply) => reply_code(&reply),
            Err(code) => code,
        };
    }

    let service = match flags.build(false) {
        Ok(s) => s,
        Err(code) => return code,
    };

    // Baseline: verify the old configs, warming the summary store — which
    // is what makes the diff incremental. With a persistent --cache the
    // store already *is* the baseline (an earlier process verified the old
    // configs into it), so re-running it would throw away the savings.
    if flags.cache.is_some() {
        println!("=== baseline served by the persistent cache ===\n");
    } else {
        let baseline = service.serve(VerifyRequest::Watch {
            configs: old.clone(),
            properties: PropertySelect::Default,
        });
        match baseline {
            Ok(response) => println!("=== baseline (old configs) ===\n{response}"),
            Err(e) => {
                eprintln!("old config: {e}");
                return 2;
            }
        }
    }

    // The diff: re-verify only what changed.
    let response = match service.serve(VerifyRequest::Diff {
        old: old.clone(),
        new: new.clone(),
        properties: PropertySelect::Default,
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("new config: {e}");
            return 2;
        }
    };
    let VerifyOutcome::Diff(report) = &response.outcome else {
        unreachable!("diff requests produce diff outcomes");
    };
    println!("=== incremental re-verification (new configs) ===\n{report}");
    println!(
        "element jobs: {} explored, {} served warm",
        report.matrix.explore_jobs, report.matrix.cached_jobs
    );

    let (_, _, unknown) = report.matrix.verdict_counts();
    if unknown > 0 {
        eprintln!("{unknown} re-verified scenario(s) ended Unknown");
        return 1;
    }

    if demo {
        use crate::orchestrator::DiffKind;
        let kind = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.kind)
        };
        expect!(
            kind("router") == Some(DiffKind::ElementsChanged),
            "router must be elements-changed, got {:?}",
            kind("router")
        );
        let router_changed: Vec<String> = report
            .entries
            .iter()
            .find(|e| e.name == "router")
            .map(|e| e.changed_elements.clone())
            .unwrap_or_default();
        expect!(
            router_changed == vec!["rt".to_string()],
            "router's changed element must be rt, got {router_changed:?}"
        );
        expect!(
            kind("filter") == Some(DiffKind::Identical),
            "untouched filter must be identical, got {:?}",
            kind("filter")
        );
        expect!(
            kind("mini") == Some(DiffKind::WiringOnly),
            "rewired mini must be wiring-only, got {:?}",
            kind("mini")
        );
        // Only the two changed configs' scenarios were re-verified; the
        // identical config's were skipped.
        expect!(
            report.reverified_scenarios() == 4,
            "partial re-verification: expected 4 scenarios, got {}",
            report.reverified_scenarios()
        );
        expect!(
            report.skipped_scenarios == 2,
            "expected 2 skipped scenarios, got {}",
            report.skipped_scenarios
        );
        // At most one element behaviour re-explores (the edited rt; the
        // wiring-only diff contributes a composition-only pass) — exactly
        // one on a cold store, zero when a persistent --cache already
        // holds the edited behaviour from an earlier demo run.
        if flags.cache.is_none() {
            expect!(
                report.matrix.explore_jobs == 1,
                "expected exactly the edited element to be re-explored, got {}",
                report.matrix.explore_jobs
            );
        }
        // With --cache the store's temperature is whatever earlier
        // processes left (cold dir: everything explores; warm dir:
        // nothing does), so no explore-count expectation applies.
        println!("\ndemo assertions passed: partial re-verification confirmed");
    }
    0
}

// ---------------------------------------------------------------------------
// plan / exec-plan
// ---------------------------------------------------------------------------

fn cmd_plan(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut matrix = false;
    let mut out: Option<String> = None;
    let mut files = Vec::new();
    let mut ltl_specs: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--matrix" => matrix = true,
            "-o" | "--out" => match iter.next() {
                Some(p) => out = Some(p),
                None => return usage_error("-o needs a path"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--ltl" => match iter.next() {
                Some(spec) => ltl_specs.push(spec),
                None => return usage_error("--ltl needs a spec (a formula, or @FILE)"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }

    let request = match build_run_request(matrix, &files, &ltl_specs) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let service = match flags.build(false) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let plan = match service.plan_request(&request) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    eprintln!(
        "planned {} scenarios -> {} distinct element jobs",
        plan.scenarios.len(),
        plan.jobs.len()
    );
    let text = plan_to_json(&plan).to_text();
    match out {
        Some(path) => write_file(&path, &text),
        None => {
            println!("{text}");
            0
        }
    }
}

fn cmd_exec_plan(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut workers: Option<String> = None;
    let mut in_process = false;
    let mut heartbeat_ms: Option<u64> = None;
    let mut compose_shard = ComposeShardMode::default();
    let mut json_path: Option<String> = None;
    let mut det_json_path: Option<String> = None;
    let mut file: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--in-process" => in_process = true,
            "--workers" => match iter.next() {
                Some(spec) => workers = Some(spec),
                None => return usage_error("--workers needs a count or address list"),
            },
            "--compose-shard" => match iter.next().as_deref().and_then(ComposeShardMode::parse) {
                Some(mode) => compose_shard = mode,
                None => {
                    return usage_error("--compose-shard needs `auto`, `off`, or a shard count")
                }
            },
            "--heartbeat-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => heartbeat_ms = Some(ms),
                None => return usage_error("--heartbeat-ms needs a number of milliseconds"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            "--json" => match iter.next() {
                Some(p) => json_path = Some(p),
                None => return usage_error("--json needs a path"),
            },
            "--det-json" => match iter.next() {
                Some(p) => det_json_path = Some(p),
                None => return usage_error("--det-json needs a path"),
            },
            other if other.starts_with('-') && other != "-" => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            path => {
                if file.is_some() {
                    return usage_error("exec-plan takes one plan file (or '-')");
                }
                file = Some(path.to_string());
            }
        }
    }

    // Read the plan: a file path, or stdin for "-"/no argument (what
    // `vericlick plan | vericlick exec-plan` pipes).
    let text = match file.as_deref() {
        Some("-") | None => {
            let mut text = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut text) {
                eprintln!("error: cannot read plan from stdin: {e}");
                return 2;
            }
            text
        }
        Some(path) => match read_file(path) {
            Ok(text) => text,
            Err(code) => return code,
        },
    };
    let plan = match Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|j| plan_from_json(&j).map_err(|e| e.to_string()))
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: bad plan: {e}");
            return 2;
        }
    };

    let service = match flags.build(false) {
        Ok(s) => s.with_compose_shard_mode(compose_shard),
        Err(code) => return code,
    };
    // Default executor: subprocess workers (the remote path). A numeric
    // --workers spawns that many stdio workers; an address list dials
    // `vericlick worker --listen` peers over TCP / Unix sockets;
    // --in-process keeps everything in this process.
    let executor: Box<dyn Executor> = if in_process {
        Box::new(InProcessExecutor::new(flags.threads))
    } else {
        // Guard the numeric branch: a bare port typed where an address
        // belongs (`--workers 8080` for `--workers host:8080`) must not
        // fork thousands of worker processes.
        const MAX_SUBPROCESS_WORKERS: usize = 256;
        let fleet = match workers.as_deref() {
            None => WorkerFleet::current_exe(0),
            Some(spec) => match spec.parse::<usize>() {
                Ok(n) if n > MAX_SUBPROCESS_WORKERS => {
                    return usage_error(&format!(
                        "--workers {n} exceeds {MAX_SUBPROCESS_WORKERS} subprocess workers \
                         (for a TCP worker, use host:port, e.g. 127.0.0.1:{n})"
                    ));
                }
                Ok(n) => WorkerFleet::current_exe(n),
                Err(_) => Ok(WorkerFleet::sockets(
                    spec.split(',')
                        .filter(|a| !a.is_empty())
                        .map(WorkerAddr::parse)
                        .collect(),
                )),
            },
        };
        match fleet {
            // Heartbeat tuning only bites on socket transports (stdio
            // pipes cannot time out), so applying it unconditionally is
            // harmless for subprocess fleets.
            Ok(fleet) => Box::new(match heartbeat_ms {
                Some(ms) => fleet.with_heartbeat(HeartbeatConfig::from_interval_ms(ms)),
                None => fleet,
            }),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    };
    eprintln!(
        "executing {} scenarios via {}",
        plan.scenarios.len(),
        executor.describe()
    );
    let response = match service.execute_plan(&plan, executor.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    finish(&response, json_path.as_deref(), det_json_path.as_deref())
}

// ---------------------------------------------------------------------------
// watch
// ---------------------------------------------------------------------------

/// Watch real config files: a polling loop over the service's
/// rolling-baseline `Watch` request — tick 0 verifies everything, every
/// later tick re-verifies only what changed since the last good tick.
/// Each poll re-reads the files and compares *contents* (configs are
/// small; an mtime-only stamp would miss same-length edits within one
/// mtime granule on coarse filesystems). `max_polls` bounds the loop for
/// tests and scripting (0 = forever).
fn watch_files(service: &VerifyService, files: &[String], poll_ms: u64, max_polls: usize) -> i32 {
    println!(
        "=== vericlick watch: polling {} config file(s) every {poll_ms}ms ===",
        files.len()
    );
    let mut last_seen: Option<Vec<String>> = None;
    let mut tick = 0usize;
    let mut polls = 0usize;
    loop {
        match load_configs(files) {
            // Only the very first poll fails fast (startup typo); later
            // unreadable polls are an editor's atomic-save window and
            // must not kill the watcher — even before any tick verified.
            Err(code) if polls == 0 => return code,
            Err(_) => {
                eprintln!("watch: config files unreadable; retrying");
            }
            Ok(configs) => {
                let contents: Vec<String> = configs.iter().map(|c| c.config.clone()).collect();
                if last_seen.as_ref() != Some(&contents) {
                    match service.serve(VerifyRequest::Watch {
                        configs,
                        properties: PropertySelect::Default,
                    }) {
                        Ok(response) => {
                            match &response.outcome {
                                VerifyOutcome::Matrix(m) => println!(
                                    "watch tick {tick}: verified {} scenarios\n{m}",
                                    m.scenarios.len()
                                ),
                                VerifyOutcome::Diff(d) => println!(
                                    "watch tick {tick}: re-verified {} scenarios ({} skipped)\n{d}",
                                    d.reverified_scenarios(),
                                    d.skipped_scenarios
                                ),
                                _ => {}
                            }
                            let _ = std::io::stdout().flush();
                            tick += 1;
                        }
                        // A syntax error in a half-saved edit: report it,
                        // keep the baseline (the service does the same),
                        // re-verify when the file changes again.
                        Err(e) => eprintln!("watch: {e}"),
                    }
                    last_seen = Some(contents);
                }
            }
        }
        polls += 1;
        if max_polls > 0 && polls >= max_polls {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
    println!("watch: stopped after {polls} polls, {tick} ticks");
    0
}

/// The remote flavour of [`watch_files`]: the same polling loop, but each
/// tick is submitted to a daemon session — whose per-connection rolling
/// baseline makes tick 0 a full verification and every later tick an
/// incremental one, exactly like the in-process service.
fn watch_files_remote(
    client: &mut DaemonClient,
    files: &[String],
    poll_ms: u64,
    max_polls: usize,
) -> i32 {
    println!(
        "=== vericlick watch (daemon session): polling {} config file(s) every {poll_ms}ms ===",
        files.len()
    );
    let mut last_seen: Option<Vec<String>> = None;
    let mut tick = 0usize;
    let mut polls = 0usize;
    loop {
        match load_configs(files) {
            Err(code) if polls == 0 => return code,
            Err(_) => {
                eprintln!("watch: config files unreadable; retrying");
            }
            Ok(configs) => {
                let contents: Vec<String> = configs.iter().map(|c| c.config.clone()).collect();
                if last_seen.as_ref() != Some(&contents) {
                    match client.verify(&VerifyRequest::Watch {
                        configs,
                        properties: PropertySelect::Default,
                    }) {
                        Ok(reply) => {
                            println!(
                                "watch tick {tick} ({}):\n{}",
                                reply.request,
                                reply.display.trim_end()
                            );
                            let _ = std::io::stdout().flush();
                            tick += 1;
                        }
                        // A rejected tick (half-saved syntax error): the
                        // daemon keeps the session's baseline, so report
                        // and re-verify on the next change.
                        Err(e) => eprintln!("watch: {e}"),
                    }
                    last_seen = Some(contents);
                }
            }
        }
        polls += 1;
        if max_polls > 0 && polls >= max_polls {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
    println!("watch: stopped after {polls} polls, {tick} ticks");
    0
}

fn cmd_watch(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut demo = false;
    let mut connect: Option<String> = None;
    let mut poll_ms = 500u64;
    let mut max_polls = 0usize;
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--connect" => match iter.next() {
                Some(addr) => connect = Some(addr),
                None => return usage_error("--connect needs a daemon address"),
            },
            "--poll-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => poll_ms = n,
                None => return usage_error("--poll-ms needs a number"),
            },
            "--max-polls" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_polls = n,
                None => return usage_error("--max-polls needs a number"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }
    if let Some(addr) = connect {
        if demo {
            // The demo asserts on in-process DiffReport structure.
            return usage_error("watch --demo runs in-process (not with --connect)");
        }
        if flags.threads != 0 || flags.cache.is_some() {
            return usage_error(
                "--threads/--cache are daemon-side (set them on `vericlick serve`)",
            );
        }
        if files.is_empty() {
            return usage_error("watch needs config files (or --demo)");
        }
        let mut client = match DaemonClient::connect(&WorkerAddr::parse(&addr), None) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        return watch_files_remote(&mut client, &files, poll_ms, max_polls);
    }
    let service = match flags.build(false) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if !demo {
        if files.is_empty() {
            return usage_error("watch needs config files (or --demo)");
        }
        return watch_files(&service, &files, poll_ms, max_polls);
    }
    let watch = |router: String, mini: String| VerifyRequest::Watch {
        configs: vec![
            NamedConfig::new("router", router),
            NamedConfig::new("filter", DEMO_FILTER),
            NamedConfig::new("mini", mini),
        ],
        properties: PropertySelect::Default,
    };

    // The demo's "file system": a scripted sequence of config states, each
    // submitted to the same service — whose rolling baseline makes every
    // tick an incremental re-verification of exactly what changed.
    println!("=== vericlick watch --demo: rolling-baseline re-verification ===\n");

    // Tick 0: first sight of the configs — full verification.
    let response = match service.serve(watch(DEMO_ROUTER.into(), DEMO_MINI.into())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let VerifyOutcome::Matrix(matrix) = &response.outcome else {
        eprintln!("demo failed: first watch tick must verify everything");
        return 1;
    };
    println!(
        "tick 0 (baseline): {} scenarios verified\n{matrix}",
        matrix.scenarios.len()
    );
    let full_scenarios = matrix.scenarios.len();

    // Tick 1: nothing changed — everything skipped.
    let response = match service.serve(watch(DEMO_ROUTER.into(), DEMO_MINI.into())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let VerifyOutcome::Diff(diff) = &response.outcome else {
        eprintln!("demo failed: second tick must diff against the baseline");
        return 1;
    };
    println!("tick 1 (no edits): {diff}");
    expect!(
        diff.reverified_scenarios() == 0,
        "no-op tick re-verified {} scenarios",
        diff.reverified_scenarios()
    );
    expect!(
        diff.skipped_scenarios == full_scenarios,
        "no-op tick skipped {} of {full_scenarios} scenarios",
        diff.skipped_scenarios
    );

    // Tick 2: one element edit — only the router re-verifies, re-exploring
    // exactly the edited behaviour.
    let edited = DEMO_ROUTER.replace("192.168.0.0/16 1", "192.168.0.0/24 1");
    let response = match service.serve(watch(edited.clone(), DEMO_MINI.into())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let VerifyOutcome::Diff(diff) = &response.outcome else {
        eprintln!("demo failed: tick 2 must diff");
        return 1;
    };
    println!("tick 2 (route edit): {diff}");
    expect!(
        diff.reverified_scenarios() == 2,
        "only the router must re-verify, got {} scenarios",
        diff.reverified_scenarios()
    );
    // Exactly the edited IPLookup re-explores on a cold in-memory store;
    // with a persistent --cache the store's temperature is whatever
    // earlier processes left, so no explore-count expectation applies.
    if flags.cache.is_none() {
        expect!(
            diff.matrix.explore_jobs == 1,
            "only the edited IPLookup must re-explore, got {}",
            diff.matrix.explore_jobs
        );
    }

    // Tick 3: a wiring-only edit of mini — composition-only pass.
    let rewired = DEMO_MINI.replace("cnt -> ttl -> s0;", "cnt -> ttl -> s1;");
    let response = match service.serve(watch(edited, rewired)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let VerifyOutcome::Diff(diff) = &response.outcome else {
        eprintln!("demo failed: tick 3 must diff");
        return 1;
    };
    println!("tick 3 (rewire): {diff}");
    expect!(
        diff.reverified_scenarios() == 2,
        "only mini must re-verify, got {} scenarios",
        diff.reverified_scenarios()
    );
    expect!(
        diff.matrix.explore_jobs == 0,
        "wiring-only edits must be composition-only, got {} explore jobs",
        diff.matrix.explore_jobs
    );

    let (_, _, unknown) = diff.matrix.verdict_counts();
    if unknown > 0 {
        eprintln!("{unknown} scenario(s) ended Unknown");
        return 1;
    }
    println!("\nwatch demo passed: baseline rolls forward, each tick re-verifies only its edit");
    0
}

// ---------------------------------------------------------------------------
// bound
// ---------------------------------------------------------------------------

fn cmd_bound(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return usage_error("bound needs at least one config file");
    }
    let service = match flags.build(false) {
        Ok(s) => s,
        Err(code) => return code,
    };
    for config in match load_configs(&files) {
        Ok(c) => c,
        Err(code) => return code,
    } {
        let pipeline = match crate::pipeline::parse_config(&config.config) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {}: {e}", config.name);
                return 2;
            }
        };
        match service.serve(VerifyRequest::Bound {
            name: config.name,
            pipeline,
        }) {
            Ok(response) => println!("{response}"),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    }
    0
}

// ---------------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// conform / fuzz (differential conformance)
// ---------------------------------------------------------------------------

fn cmd_conform(args: Vec<String>) -> i32 {
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            path => {
                if file.is_some() {
                    return usage_error("conform takes one report file");
                }
                file = Some(path.to_string());
            }
        }
    }
    let Some(path) = file else {
        return usage_error(
            "conform needs a deterministic matrix report (run --matrix --det-json)",
        );
    };
    let text = match read_file(&path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {path} is not JSON: {e}");
            return 2;
        }
    };
    let outcomes = match crate::orchestrator::conformance::replay_matrix_json(&doc) {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let mut mismatches = 0usize;
    for outcome in &outcomes {
        println!(
            "replay {}/{}: {} — concrete run {} at {} ({} instructions, path [{}])",
            outcome.scenario,
            outcome.property,
            if outcome.reproduced {
                "reproduced"
            } else {
                "MISMATCH"
            },
            outcome.disposition,
            outcome.at,
            outcome.instructions,
            outcome.concrete_path.join(" -> "),
        );
        if !outcome.reproduced {
            mismatches += 1;
            eprintln!(
                "SOUNDNESS: symbolic violation '{}' via [{}] did not reproduce concretely",
                outcome.description,
                outcome.symbolic_path.join(" -> "),
            );
        }
    }
    println!(
        "conform: {} counterexamples replayed, {mismatches} mismatches",
        outcomes.len()
    );
    if mismatches > 0 {
        1
    } else {
        0
    }
}

/// Parse a seed: decimal or `0x`-prefixed hex.
fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        text.replace('_', "").parse().ok()
    }
}

fn cmd_fuzz(args: Vec<String>) -> i32 {
    let mut flags = ServiceFlags {
        threads: 0,
        cache: None,
    };
    let mut seed = crate::net::DEFAULT_SEED;
    let mut packets = 100_000u64;
    let mut workers: Option<String> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut connect: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut det_json_path: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--heartbeat-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => heartbeat_ms = Some(ms),
                None => return usage_error("--heartbeat-ms needs a number of milliseconds"),
            },
            "--connect" => match iter.next() {
                Some(addr) => connect = Some(addr),
                None => return usage_error("--connect needs a daemon address"),
            },
            "--seed" => match iter.next().as_deref().and_then(parse_seed) {
                Some(s) => seed = s,
                None => return usage_error("--seed needs a number (decimal or 0x-hex)"),
            },
            "--packets" => match iter.next().and_then(|v| v.replace('_', "").parse().ok()) {
                Some(n) => packets = n,
                None => return usage_error("--packets needs a number"),
            },
            "--workers" => match iter.next() {
                Some(spec) => workers = Some(spec),
                None => return usage_error("--workers needs a count or address list"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => flags.threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => flags.cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            "--json" => match iter.next() {
                Some(p) => json_path = Some(p),
                None => return usage_error("--json needs a path"),
            },
            "--det-json" => match iter.next() {
                Some(p) => det_json_path = Some(p),
                None => return usage_error("--det-json needs a path"),
            },
            other => return usage_error(&format!("unknown option '{other}'")),
        }
    }

    if let Some(addr) = connect {
        if workers.is_some() {
            return usage_error(
                "--workers is daemon-side with --connect (join workers to the daemon)",
            );
        }
        if flags.threads != 0 || flags.cache.is_some() {
            return usage_error(
                "--threads/--cache are daemon-side (set them on `vericlick serve`)",
            );
        }
        let request = VerifyRequest::Conformance {
            scenarios: preset_scenarios(),
            seed,
            packets,
        };
        println!("=== vericlick fuzz: {packets} packets, seed {seed:#x}, daemon {addr} ===\n");
        return match client_request(
            &addr,
            &request,
            json_path.as_deref(),
            det_json_path.as_deref(),
        ) {
            Ok(reply) => reply_code(&reply),
            Err(code) => code,
        };
    }

    // `--workers` dispatches the fuzz shards over a fleet (subprocess
    // stdio workers for a count, `vericlick worker --listen` peers for an
    // address list); without it the shards run on the in-process pool.
    // Same guard as exec-plan: a bare port typed where an address belongs
    // must not fork thousands of processes.
    const MAX_SUBPROCESS_WORKERS: usize = 256;
    let fleet: Option<WorkerFleet> = match workers.as_deref() {
        None => None,
        Some(spec) => {
            let fleet = match spec.parse::<usize>() {
                Ok(n) if n > MAX_SUBPROCESS_WORKERS => {
                    return usage_error(&format!(
                        "--workers {n} exceeds {MAX_SUBPROCESS_WORKERS} subprocess workers \
                         (for a TCP worker, use host:port, e.g. 127.0.0.1:{n})"
                    ));
                }
                Ok(n) => WorkerFleet::current_exe(n),
                Err(_) => Ok(WorkerFleet::sockets(
                    spec.split(',')
                        .filter(|a| !a.is_empty())
                        .map(WorkerAddr::parse)
                        .collect(),
                )),
            };
            match fleet {
                Ok(fleet) => Some(match heartbeat_ms {
                    Some(ms) => fleet.with_heartbeat(HeartbeatConfig::from_interval_ms(ms)),
                    None => fleet,
                }),
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            }
        }
    };

    let service = match flags.build(false) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!(
        "=== vericlick fuzz: {packets} packets, seed {seed:#x}, {} ===\n",
        match &fleet {
            Some(fleet) => fleet.describe(),
            None => format!("in-process pool ({} threads)", service.threads()),
        }
    );
    let report = match service.run_conformance(
        preset_scenarios(),
        seed,
        packets,
        fleet.as_ref().map(|f| f as &dyn Executor),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    print!("{report}");
    if let Some(path) = &json_path {
        let code = write_file(path, &report.to_json().to_text());
        if code != 0 {
            return code;
        }
    }
    if let Some(path) = &det_json_path {
        let code = write_file(path, &report.deterministic_json().to_text());
        if code != 0 {
            return code;
        }
    }
    if report.ok() {
        println!("conformance: OK");
        0
    } else {
        eprintln!(
            "conformance FAILED: {} replay mismatches, {} fuzz contradictions",
            report.replay_mismatches(),
            report.contradictions()
        );
        1
    }
}

fn cmd_worker(args: Vec<String>) -> i32 {
    let mut listen: Option<String> = None;
    let mut join: Option<String> = None;
    let mut capacity = 0usize;
    let mut once = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => match iter.next() {
                Some(addr) => listen = Some(addr),
                None => return usage_error("--listen needs an address"),
            },
            "--join" => match iter.next() {
                Some(addr) => join = Some(addr),
                None => return usage_error("--join needs a daemon address"),
            },
            "--capacity" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => capacity = n,
                None => return usage_error("--capacity needs a number"),
            },
            "--once" => once = true,
            other => return usage_error(&format!("unknown option '{other}'")),
        }
    }
    if join.is_some() && listen.is_none() {
        return usage_error("--join needs --listen (the daemon dials the worker back)");
    }
    match listen {
        // Socket worker: bind, announce the actual address (`:0` picks a
        // port), serve coordinator sessions.
        Some(addr) => {
            let addr = WorkerAddr::parse(&addr);
            let daemon = join.map(|d| WorkerAddr::parse(&d));
            // Logs are best-effort: a worker must keep serving even if
            // whoever spawned it stopped reading its stdout.
            let mut log = |line: &str| {
                let mut out = std::io::stdout();
                let _ = writeln!(out, "worker: {line}");
                let _ = out.flush();
                // The first log line carries the *actual* bound address
                // (`:0` picks a port) — the moment the worker is
                // dialable, announce it to the daemon's fleet.
                if let Some(daemon) = &daemon {
                    if let Some(bound) = line.strip_prefix("listening on ") {
                        match join_fleet(daemon, &WorkerAddr::parse(bound)) {
                            Ok(n) => {
                                let _ = writeln!(out, "worker: joined {daemon} (fleet of {n})");
                                let _ = out.flush();
                            }
                            Err(e) => {
                                eprintln!("worker: join {daemon} failed: {e}");
                            }
                        }
                    }
                }
            };
            match serve_listener(&addr, capacity, once, &mut log) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("worker: {e}");
                    2
                }
            }
        }
        // Stdio worker: one session over stdin/stdout (spawned by
        // `exec-plan --workers N`).
        None => {
            let stdin = std::io::stdin();
            match worker_serve(stdin.lock(), std::io::stdout(), capacity) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("worker: {e}");
                    2
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// serve / client (the persistent daemon)
// ---------------------------------------------------------------------------

fn cmd_serve(args: Vec<String>) -> i32 {
    let mut listen: Option<String> = None;
    let mut threads = 0usize;
    let mut cache: Option<String> = None;
    let mut max_sessions = 4usize;
    let mut max_queue = 4usize;
    let mut workers: Option<String> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut compose_shard = ComposeShardMode::default();
    let mut once = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => match iter.next() {
                Some(addr) => listen = Some(addr),
                None => return usage_error("--listen needs an address"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return usage_error("--threads needs a number"),
            },
            "--cache" => match iter.next() {
                Some(dir) => cache = Some(dir),
                None => return usage_error("--cache needs a directory"),
            },
            "--max-sessions" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_sessions = n,
                None => return usage_error("--max-sessions needs a number (0 = unlimited)"),
            },
            "--max-queue" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_queue = n,
                None => return usage_error("--max-queue needs a number (0 = refuse when full)"),
            },
            "--workers" => match iter.next() {
                Some(spec) => workers = Some(spec),
                None => return usage_error("--workers needs an address list"),
            },
            "--heartbeat-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => heartbeat_ms = Some(ms),
                None => return usage_error("--heartbeat-ms needs a number of milliseconds"),
            },
            "--compose-shard" => match iter.next().as_deref().and_then(ComposeShardMode::parse) {
                Some(mode) => compose_shard = mode,
                None => {
                    return usage_error("--compose-shard needs `auto`, `off`, or a shard count")
                }
            },
            "--once" => once = true,
            other => return usage_error(&format!("unknown option '{other}'")),
        }
    }
    let Some(listen) = listen else {
        return usage_error("serve needs --listen (host:port, a path, or unix:PATH)");
    };
    let store = match &cache {
        None => None,
        Some(dir) => match SummaryStore::persistent(dir) {
            Ok(store) => Some(Arc::new(store)),
            Err(e) => {
                eprintln!("error: cannot open cache dir {dir}: {e}");
                return 2;
            }
        },
    };
    let config = DaemonConfig {
        threads,
        store,
        max_sessions,
        max_queue,
        workers: workers
            .map(|spec| {
                spec.split(',')
                    .filter(|a| !a.is_empty())
                    .map(WorkerAddr::parse)
                    .collect()
            })
            .unwrap_or_default(),
        heartbeat: heartbeat_ms
            .map(HeartbeatConfig::from_interval_ms)
            .unwrap_or_default(),
        compose_shard,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::new(config);
    // Logs are best-effort, like the worker's: the daemon must keep
    // serving even if whoever spawned it stopped reading its stdout.
    let log: Arc<dyn Fn(&str) + Send + Sync> = Arc::new(|line: &str| {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "serve: {line}");
        let _ = out.flush();
    });
    match daemon.serve(&WorkerAddr::parse(&listen), once, log) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            2
        }
    }
}

fn cmd_client(args: Vec<String>) -> i32 {
    let mut connect: Option<String> = None;
    let mut matrix = false;
    let mut request_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut det_json_path: Option<String> = None;
    let mut files = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => match iter.next() {
                Some(addr) => connect = Some(addr),
                None => return usage_error("--connect needs a daemon address"),
            },
            "--matrix" => matrix = true,
            "--request" => match iter.next() {
                Some(p) => request_path = Some(p),
                None => return usage_error("--request needs a path"),
            },
            "--json" => match iter.next() {
                Some(p) => json_path = Some(p),
                None => return usage_error("--json needs a path"),
            },
            "--det-json" => match iter.next() {
                Some(p) => det_json_path = Some(p),
                None => return usage_error("--det-json needs a path"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option '{other}'"))
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(addr) = connect else {
        return usage_error("client needs --connect (the daemon's address)");
    };
    // The request: a serialised VerifyRequest document with --request,
    // the run-style matrix shape otherwise.
    let request = match request_path {
        Some(path) => {
            if matrix || !files.is_empty() {
                return usage_error("--request replaces --matrix/config files");
            }
            let text = match read_file(&path) {
                Ok(text) => text,
                Err(code) => return code,
            };
            match Json::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|doc| VerifyRequest::from_json(&doc).map_err(|e| e.to_string()))
            {
                Ok(request) => request,
                Err(e) => {
                    eprintln!("error: bad request: {e}");
                    return 2;
                }
            }
        }
        None => match build_request(matrix, &files) {
            Ok(r) => r,
            Err(code) => return code,
        },
    };
    match client_request(
        &addr,
        &request,
        json_path.as_deref(),
        det_json_path.as_deref(),
    ) {
        Ok(reply) => {
            println!(
                "daemon served a {} request: {} proven, {} violated, {} unknown",
                reply.request, reply.proven, reply.violated, reply.unknown
            );
            reply_code(&reply)
        }
        Err(code) => code,
    }
}

//! The `vericlick` binary — see [`vericlick::cli`] for the subcommands.

fn main() {
    std::process::exit(vericlick::cli::main(std::env::args().skip(1).collect()));
}
